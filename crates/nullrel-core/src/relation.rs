//! Relations with null values: representations, subsumption, x-membership,
//! minimal form and scope.
//!
//! A [`Relation`] is the paper's "relation" of Section 3 — a set of W-values
//! over a declared attribute list `W` — i.e. one concrete *representation* of
//! an x-relation. Section 4's notions are implemented here:
//!
//! * Definition 4.1 — [`Relation::subsumes`] (`R₁ ⪰ R₂`),
//! * Definition 4.2 — [`Relation::equivalent`] (information-wise `≅`),
//! * Definition 4.5 / Proposition 4.2 — [`Relation::x_contains`]
//!   (`t ∈̂ R` iff some `r ∈ R` has `r ≥ t`),
//! * Definition 4.6 — [`Relation::minimal`] (the minimal representation),
//! * Definition 4.7 — [`Relation::scope`].
//!
//! The equivalence-class view (the x-relation proper) lives in
//! [`crate::xrel::XRelation`], which always holds a minimal representation.

use std::collections::HashSet;
use std::fmt;

use crate::error::{CoreError, CoreResult};
use crate::tuple::Tuple;
use crate::universe::{AttrId, AttrSet};

/// One representation of an x-relation: a declared attribute list plus a set
/// of tuples over it.
///
/// Set semantics are maintained on insertion (duplicate tuples — which, given
/// the cell representation, are exactly information-wise equivalent tuples —
/// are ignored). Insertion order of distinct tuples is preserved for
/// deterministic display and iteration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relation {
    attrs: Vec<AttrId>,
    tuples: Vec<Tuple>,
}

impl Relation {
    /// Creates an empty relation over the given attribute list.
    pub fn new<I: IntoIterator<Item = AttrId>>(attrs: I) -> Self {
        let mut seen = HashSet::new();
        let attrs = attrs
            .into_iter()
            .filter(|a| seen.insert(*a))
            .collect::<Vec<_>>();
        Relation {
            attrs,
            tuples: Vec::new(),
        }
    }

    /// Creates a relation and inserts the given tuples, checking each against
    /// the declared attribute list.
    pub fn with_tuples<A, T>(attrs: A, tuples: T) -> CoreResult<Self>
    where
        A: IntoIterator<Item = AttrId>,
        T: IntoIterator<Item = Tuple>,
    {
        let mut rel = Relation::new(attrs);
        for t in tuples {
            rel.insert(t)?;
        }
        Ok(rel)
    }

    /// The declared attribute list `W` (column order for display).
    pub fn attrs(&self) -> &[AttrId] {
        &self.attrs
    }

    /// The declared attribute list as a set.
    pub fn attr_set(&self) -> AttrSet {
        self.attrs.iter().copied().collect()
    }

    /// Inserts a tuple. Rejects tuples with non-null cells outside the
    /// declared attribute list; ignores exact (equivalent) duplicates.
    pub fn insert(&mut self, tuple: Tuple) -> CoreResult<bool> {
        let declared = self.attr_set();
        if let Some((attr, _)) = tuple.cells().find(|(a, _)| !declared.contains(a)) {
            return Err(CoreError::UnknownAttribute(attr));
        }
        Ok(self.insert_unchecked(tuple))
    }

    /// Inserts a tuple without validating it against the declared attribute
    /// list. Returns `true` if the tuple was not already present.
    pub fn insert_unchecked(&mut self, tuple: Tuple) -> bool {
        if self.tuples.contains(&tuple) {
            false
        } else {
            self.tuples.push(tuple);
            true
        }
    }

    /// Removes a tuple that compares equal (equivalently: is information-wise
    /// equivalent) to the given one. Returns `true` if something was removed.
    pub fn remove(&mut self, tuple: &Tuple) -> bool {
        if let Some(pos) = self.tuples.iter().position(|t| t == tuple) {
            self.tuples.remove(pos);
            true
        } else {
            false
        }
    }

    /// The number of tuples in this representation.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True if the representation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Iterates over the tuples in insertion order.
    pub fn tuples(&self) -> impl Iterator<Item = &Tuple> + '_ {
        self.tuples.iter()
    }

    /// Consumes the relation and returns its tuples.
    pub fn into_tuples(self) -> Vec<Tuple> {
        self.tuples
    }

    /// Exact membership (up to `≅`, which coincides with tuple equality).
    pub fn contains(&self, tuple: &Tuple) -> bool {
        self.tuples.contains(tuple)
    }

    /// Definition 4.5 / Proposition 4.2: `t ∈̂ R` — the tuple x-belongs to
    /// the relation iff some stored tuple is more informative than it.
    pub fn x_contains(&self, tuple: &Tuple) -> bool {
        self.tuples.iter().any(|r| r.more_informative_than(tuple))
    }

    /// Definition 4.1: `self ⪰ other` — for each non-null tuple `r₂` of
    /// `other` there is a tuple `r₁` of `self` with `r₁ ≥ r₂`.
    pub fn subsumes(&self, other: &Relation) -> bool {
        other
            .tuples
            .iter()
            .filter(|t| !t.is_null_tuple())
            .all(|t| self.x_contains(t))
    }

    /// Definition 4.2: information-wise equivalence `≅`.
    pub fn equivalent(&self, other: &Relation) -> bool {
        self.subsumes(other) && other.subsumes(self)
    }

    /// Strict subsumption: `self ⪰ other` but not `other ⪰ self`.
    pub fn properly_subsumes(&self, other: &Relation) -> bool {
        self.subsumes(other) && !other.subsumes(self)
    }

    /// Definition 4.6: the **minimal representation** — drop the null tuple
    /// and every tuple less informative than some other tuple. The paper
    /// notes this generalises duplicate elimination; the result over the same
    /// declared attribute list is unique.
    pub fn minimal(&self) -> Relation {
        let mut keep: Vec<&Tuple> = Vec::with_capacity(self.tuples.len());
        'outer: for (i, t) in self.tuples.iter().enumerate() {
            if t.is_null_tuple() && self.tuples.iter().any(|o| !o.is_null_tuple()) {
                continue;
            }
            for (j, other) in self.tuples.iter().enumerate() {
                if i == j {
                    continue;
                }
                if other.more_informative_than(t) && !t.more_informative_than(other) {
                    // strictly less informative: drop.
                    continue 'outer;
                }
            }
            keep.push(t);
        }
        // A relation containing only the null tuple minimises to the empty
        // relation (the null tuple carries no information).
        let keep: Vec<Tuple> = keep
            .into_iter()
            .filter(|t| !t.is_null_tuple())
            .cloned()
            .collect();
        Relation {
            attrs: self.attrs.clone(),
            tuples: keep,
        }
    }

    /// True if this representation is already minimal.
    pub fn is_minimal(&self) -> bool {
        let min = self.minimal();
        min.len() == self.len() && self.tuples.iter().all(|t| min.contains(t))
    }

    /// Definition 4.7: the **scope** of the represented x-relation — the
    /// smallest attribute set over which it can be represented, i.e. the
    /// union of the non-null attributes of the minimal representation.
    pub fn scope(&self) -> AttrSet {
        let mut scope = AttrSet::new();
        for t in self.minimal().tuples() {
            scope.extend(t.defined_attrs());
        }
        scope
    }

    /// Returns a copy whose declared attribute list is extended with `extra`
    /// attributes (their cells read as `ni`), demonstrating that enlarging
    /// the schema does not change information content (Tables I/II).
    #[must_use]
    pub fn widened<I: IntoIterator<Item = AttrId>>(&self, extra: I) -> Relation {
        let mut attrs = self.attrs.clone();
        let present: HashSet<AttrId> = attrs.iter().copied().collect();
        for a in extra {
            if !present.contains(&a) {
                attrs.push(a);
            }
        }
        Relation {
            attrs,
            tuples: self.tuples.clone(),
        }
    }

    /// Returns the subset of tuples total on `attrs` (the paper's `R_Y`).
    pub fn total_on(&self, attrs: &AttrSet) -> Relation {
        Relation {
            attrs: self.attrs.clone(),
            tuples: self
                .tuples
                .iter()
                .filter(|t| t.is_total_on(attrs))
                .cloned()
                .collect(),
        }
    }

    /// True if every tuple is total on the declared attribute list — i.e.
    /// this is a classical Codd relation without nulls.
    pub fn is_total(&self) -> bool {
        let declared = self.attr_set();
        self.tuples.iter().all(|t| t.is_total_on(&declared))
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Relation[{} attrs, {} tuples]",
            self.attrs.len(),
            self.tuples.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::{attr_set, Universe};
    use crate::value::Value;

    struct Ps {
        s_no: AttrId,
        p_no: AttrId,
    }

    fn ps_universe() -> (Universe, Ps) {
        let mut u = Universe::new();
        let p_no = u.intern("P#");
        let s_no = u.intern("S#");
        (u, Ps { s_no, p_no })
    }

    fn t(ps: &Ps, p: Option<&str>, s: Option<&str>) -> Tuple {
        Tuple::new()
            .with_opt(ps.p_no, p.map(Value::str))
            .with_opt(ps.s_no, s.map(Value::str))
    }

    /// The PS′ / PS″ relations from display (1.1)/(1.2).
    fn ps_prime(ps: &Ps) -> Relation {
        Relation::with_tuples(
            [ps.p_no, ps.s_no],
            [t(ps, None, Some("s1")), t(ps, Some("p1"), Some("s2"))],
        )
        .unwrap()
    }

    fn ps_double_prime(ps: &Ps) -> Relation {
        Relation::with_tuples(
            [ps.p_no, ps.s_no],
            [
                t(ps, None, Some("s1")),
                t(ps, Some("p1"), Some("s2")),
                t(ps, Some("p2"), Some("s2")),
            ],
        )
        .unwrap()
    }

    #[test]
    fn insert_rejects_undeclared_attributes() {
        let (mut u, ps) = ps_universe();
        let other = u.intern("OTHER");
        let mut rel = Relation::new([ps.p_no, ps.s_no]);
        let bad = Tuple::new().with(other, Value::int(1));
        assert!(matches!(
            rel.insert(bad),
            Err(CoreError::UnknownAttribute(_))
        ));
    }

    #[test]
    fn insert_dedupes_equivalent_tuples() {
        let (_u, ps) = ps_universe();
        let mut rel = Relation::new([ps.p_no, ps.s_no]);
        assert!(rel.insert(t(&ps, Some("p1"), Some("s1"))).unwrap());
        assert!(!rel.insert(t(&ps, Some("p1"), Some("s1"))).unwrap());
        assert_eq!(rel.len(), 1);
    }

    #[test]
    fn duplicate_attrs_in_declaration_are_collapsed() {
        let (_u, ps) = ps_universe();
        let rel = Relation::new([ps.p_no, ps.s_no, ps.p_no]);
        assert_eq!(rel.attrs().len(), 2);
    }

    /// Under the x-relation semantics, PS″ (obtained from PS′ by adding a
    /// tuple) *does* subsume PS′ — the intuitive TRUE the paper argues for,
    /// in contrast with Codd's MAYBE.
    #[test]
    fn ps_double_prime_subsumes_ps_prime() {
        let (_u, ps) = ps_universe();
        let ps1 = ps_prime(&ps);
        let ps2 = ps_double_prime(&ps);
        assert!(ps2.subsumes(&ps1));
        assert!(!ps1.subsumes(&ps2));
        assert!(ps2.properly_subsumes(&ps1));
        assert!(!ps1.equivalent(&ps2));
        assert!(ps1.equivalent(&ps1));
    }

    #[test]
    fn x_containment_uses_more_informative() {
        let (_u, ps) = ps_universe();
        let rel = ps_prime(&ps);
        // (−, s1) x-belongs: it is literally there.
        assert!(rel.x_contains(&t(&ps, None, Some("s1"))));
        // (−, s2) x-belongs because (p1, s2) is more informative.
        assert!(rel.x_contains(&t(&ps, None, Some("s2"))));
        // (p1, s1) does not.
        assert!(!rel.x_contains(&t(&ps, Some("p1"), Some("s1"))));
        // The null tuple x-belongs to any non-empty relation.
        assert!(rel.x_contains(&Tuple::new()));
    }

    #[test]
    fn subsumption_ignores_null_tuples_in_the_subsumee() {
        let (_u, ps) = ps_universe();
        let mut with_null = Relation::new([ps.p_no, ps.s_no]);
        with_null.insert(Tuple::new()).unwrap();
        let empty = Relation::new([ps.p_no, ps.s_no]);
        // Definition 4.1 only quantifies over non-null tuples, so the empty
        // relation subsumes the relation holding just the null tuple.
        assert!(empty.subsumes(&with_null));
        assert!(with_null.subsumes(&empty));
        assert!(empty.equivalent(&with_null));
    }

    #[test]
    fn minimal_removes_less_informative_and_null_tuples() {
        let (_u, ps) = ps_universe();
        let rel = Relation::with_tuples(
            [ps.p_no, ps.s_no],
            [
                t(&ps, Some("p1"), Some("s1")),
                t(&ps, None, Some("s1")), // less informative than the first
                t(&ps, Some("p2"), None),
                Tuple::new(), // the null tuple
            ],
        )
        .unwrap();
        let min = rel.minimal();
        assert_eq!(min.len(), 2);
        assert!(min.contains(&t(&ps, Some("p1"), Some("s1"))));
        assert!(min.contains(&t(&ps, Some("p2"), None)));
        assert!(min.equivalent(&rel), "minimisation preserves ≅");
        assert!(min.is_minimal());
        assert!(!rel.is_minimal());
    }

    #[test]
    fn minimal_of_only_null_tuple_is_empty() {
        let (_u, ps) = ps_universe();
        let mut rel = Relation::new([ps.p_no, ps.s_no]);
        rel.insert(Tuple::new()).unwrap();
        assert!(rel.minimal().is_empty());
    }

    #[test]
    fn scope_is_union_of_defined_attrs_of_minimal_rep() {
        let (mut u, ps) = ps_universe();
        let tel = u.intern("TEL#");
        // Declared over three attributes but TEL# is always null, so the
        // scope is just {P#, S#} — exactly the Tables I/II argument.
        let rel = Relation::with_tuples(
            [ps.p_no, ps.s_no, tel],
            [t(&ps, Some("p1"), Some("s1")), t(&ps, None, Some("s2"))],
        )
        .unwrap();
        assert_eq!(rel.scope(), attr_set([ps.p_no, ps.s_no]));
    }

    #[test]
    fn widened_relation_is_equivalent() {
        let (mut u, ps) = ps_universe();
        let tel = u.intern("TEL#");
        let narrow = ps_prime(&ps);
        let wide = narrow.widened([tel]);
        assert_eq!(wide.attrs().len(), 3);
        assert!(wide.equivalent(&narrow));
        assert_eq!(wide.scope(), narrow.scope());
    }

    #[test]
    fn total_on_filters_y_total_tuples() {
        let (_u, ps) = ps_universe();
        let rel = ps_double_prime(&ps);
        let total = rel.total_on(&attr_set([ps.p_no]));
        assert_eq!(total.len(), 2);
        assert!(total.tuples().all(|t| !t.is_null(ps.p_no)));
    }

    #[test]
    fn is_total_detects_codd_relations() {
        let (_u, ps) = ps_universe();
        assert!(!ps_prime(&ps).is_total());
        let codd = Relation::with_tuples(
            [ps.p_no, ps.s_no],
            [
                t(&ps, Some("p1"), Some("s1")),
                t(&ps, Some("p2"), Some("s2")),
            ],
        )
        .unwrap();
        assert!(codd.is_total());
    }

    #[test]
    fn remove_deletes_matching_tuple() {
        let (_u, ps) = ps_universe();
        let mut rel = ps_prime(&ps);
        assert!(rel.remove(&t(&ps, None, Some("s1"))));
        assert!(!rel.remove(&t(&ps, None, Some("s1"))));
        assert_eq!(rel.len(), 1);
    }

    #[test]
    fn subsumption_is_reflexive_and_transitive() {
        let (_u, ps) = ps_universe();
        let a = ps_prime(&ps);
        let b = ps_double_prime(&ps);
        let mut c = b.clone();
        c.insert(t(&ps, Some("p3"), Some("s3"))).unwrap();
        assert!(a.subsumes(&a));
        assert!(b.subsumes(&a) && c.subsumes(&b));
        assert!(c.subsumes(&a), "transitivity");
    }
}
