//! The three-valued logic of Table III and the `ni` comparison semantics.
//!
//! Section 5: relational expressions `t.A θ m.B` and `t.A θ k` evaluate to
//! `ni` whenever a compared cell is null, and to TRUE/FALSE as usual
//! otherwise. Boolean combinations follow Table III (Kleene's strong
//! three-valued connectives, with `ni` in place of MAYBE/UNKNOWN). The lower
//! bound `‖Q‖∗` keeps only the tuples whose qualification evaluates to
//! [`Truth::True`]; FALSE and `ni` tuples are discarded alike.
//!
//! The same connective tables are shared by the Codd baseline crate — the
//! paper stresses that the *logic* is the same as Codd's TRUE-evaluation;
//! what differs is the interpretation of the third value and the treatment
//! of sets.

use std::cmp::Ordering;
use std::fmt;

use crate::error::CoreResult;
use crate::value::Value;

/// A truth value of the three-valued logic: TRUE, FALSE, or `ni`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Truth {
    /// Definitely false.
    False,
    /// The no-information truth value (Codd's MAYBE).
    Ni,
    /// Definitely true.
    True,
}

impl Truth {
    /// Lifts a two-valued boolean.
    pub fn from_bool(b: bool) -> Truth {
        if b {
            Truth::True
        } else {
            Truth::False
        }
    }

    /// Table III conjunction.
    #[must_use]
    pub fn and(self, other: Truth) -> Truth {
        match (self, other) {
            (Truth::False, _) | (_, Truth::False) => Truth::False,
            (Truth::True, Truth::True) => Truth::True,
            _ => Truth::Ni,
        }
    }

    /// Table III disjunction.
    #[must_use]
    pub fn or(self, other: Truth) -> Truth {
        match (self, other) {
            (Truth::True, _) | (_, Truth::True) => Truth::True,
            (Truth::False, Truth::False) => Truth::False,
            _ => Truth::Ni,
        }
    }

    /// Table III negation.
    #[must_use]
    #[allow(clippy::should_implement_trait)] // `std::ops::Not` is also implemented below
    pub fn not(self) -> Truth {
        match self {
            Truth::True => Truth::False,
            Truth::False => Truth::True,
            Truth::Ni => Truth::Ni,
        }
    }

    /// True iff the value is [`Truth::True`] — the acceptance test of the
    /// lower-bound evaluation `‖Q‖∗`.
    pub fn is_true(self) -> bool {
        self == Truth::True
    }

    /// True iff the value is [`Truth::False`].
    pub fn is_false(self) -> bool {
        self == Truth::False
    }

    /// True iff the value is the null truth value `ni`.
    pub fn is_ni(self) -> bool {
        self == Truth::Ni
    }

    /// Three-valued conjunction over an iterator (empty ⇒ TRUE).
    pub fn all<I: IntoIterator<Item = Truth>>(iter: I) -> Truth {
        iter.into_iter().fold(Truth::True, Truth::and)
    }

    /// Three-valued disjunction over an iterator (empty ⇒ FALSE).
    pub fn any<I: IntoIterator<Item = Truth>>(iter: I) -> Truth {
        iter.into_iter().fold(Truth::False, Truth::or)
    }
}

impl fmt::Display for Truth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Truth::True => write!(f, "TRUE"),
            Truth::False => write!(f, "FALSE"),
            Truth::Ni => write!(f, "ni"),
        }
    }
}

impl From<bool> for Truth {
    fn from(b: bool) -> Self {
        Truth::from_bool(b)
    }
}

impl std::ops::Not for Truth {
    type Output = Truth;

    fn not(self) -> Truth {
        Truth::not(self)
    }
}

impl std::ops::BitAnd for Truth {
    type Output = Truth;

    fn bitand(self, rhs: Truth) -> Truth {
        self.and(rhs)
    }
}

impl std::ops::BitOr for Truth {
    type Output = Truth;

    fn bitor(self, rhs: Truth) -> Truth {
        self.or(rhs)
    }
}

/// The comparison operators `θ` of the paper: `=, ≠, <, ≤, >, ≥`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompareOp {
    /// Equality `=`.
    Eq,
    /// Inequality `≠`.
    Ne,
    /// Strictly less `<`.
    Lt,
    /// Less or equal `≤`.
    Le,
    /// Strictly greater `>`.
    Gt,
    /// Greater or equal `≥`.
    Ge,
}

impl CompareOp {
    /// Applies the operator to a two-valued ordering result.
    pub fn test(self, ordering: Ordering) -> bool {
        match self {
            CompareOp::Eq => ordering == Ordering::Equal,
            CompareOp::Ne => ordering != Ordering::Equal,
            CompareOp::Lt => ordering == Ordering::Less,
            CompareOp::Le => ordering != Ordering::Greater,
            CompareOp::Gt => ordering == Ordering::Greater,
            CompareOp::Ge => ordering != Ordering::Less,
        }
    }

    /// The logical complement of the operator (`<` ↔ `≥`, etc.), used by the
    /// tautology analysis in the query crate.
    pub fn negated(self) -> CompareOp {
        match self {
            CompareOp::Eq => CompareOp::Ne,
            CompareOp::Ne => CompareOp::Eq,
            CompareOp::Lt => CompareOp::Ge,
            CompareOp::Le => CompareOp::Gt,
            CompareOp::Gt => CompareOp::Le,
            CompareOp::Ge => CompareOp::Lt,
        }
    }

    /// The operator with its operands swapped (`<` ↔ `>`, `≤` ↔ `≥`).
    pub fn flipped(self) -> CompareOp {
        match self {
            CompareOp::Eq => CompareOp::Eq,
            CompareOp::Ne => CompareOp::Ne,
            CompareOp::Lt => CompareOp::Gt,
            CompareOp::Le => CompareOp::Ge,
            CompareOp::Gt => CompareOp::Lt,
            CompareOp::Ge => CompareOp::Le,
        }
    }

    /// All six operators, for exhaustive tests and generators.
    pub const ALL: [CompareOp; 6] = [
        CompareOp::Eq,
        CompareOp::Ne,
        CompareOp::Lt,
        CompareOp::Le,
        CompareOp::Gt,
        CompareOp::Ge,
    ];
}

impl fmt::Display for CompareOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CompareOp::Eq => "=",
            CompareOp::Ne => "!=",
            CompareOp::Lt => "<",
            CompareOp::Le => "<=",
            CompareOp::Gt => ">",
            CompareOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// Compares two *cells* (possibly-null values) under the `ni` semantics:
/// if either side is null the result is `ni`; otherwise the domain values
/// are compared. A cross-domain comparison is a schema error.
pub fn compare_cells(
    left: Option<&Value>,
    op: CompareOp,
    right: Option<&Value>,
) -> CoreResult<Truth> {
    match (left, right) {
        (Some(l), Some(r)) => Ok(Truth::from_bool(op.test(l.compare(r)?))),
        _ => Ok(Truth::Ni),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: Truth = Truth::True;
    const F: Truth = Truth::False;
    const N: Truth = Truth::Ni;

    /// The complete AND table of Table III.
    #[test]
    fn table_iii_and() {
        let expected = [
            ((T, T), T),
            ((T, F), F),
            ((T, N), N),
            ((F, T), F),
            ((F, F), F),
            ((F, N), F),
            ((N, T), N),
            ((N, F), F),
            ((N, N), N),
        ];
        for ((a, b), want) in expected {
            assert_eq!(a.and(b), want, "{a} AND {b}");
        }
    }

    /// The complete OR table of Table III.
    #[test]
    fn table_iii_or() {
        let expected = [
            ((T, T), T),
            ((T, F), T),
            ((T, N), T),
            ((F, T), T),
            ((F, F), F),
            ((F, N), N),
            ((N, T), T),
            ((N, F), N),
            ((N, N), N),
        ];
        for ((a, b), want) in expected {
            assert_eq!(a.or(b), want, "{a} OR {b}");
        }
    }

    /// The NOT column of Table III.
    #[test]
    fn table_iii_not() {
        assert_eq!(T.not(), F);
        assert_eq!(F.not(), T);
        assert_eq!(N.not(), N);
    }

    #[test]
    fn connectives_are_commutative_and_monotone() {
        for a in [T, F, N] {
            for b in [T, F, N] {
                assert_eq!(a.and(b), b.and(a));
                assert_eq!(a.or(b), b.or(a));
                // De Morgan duality holds in Kleene logic.
                assert_eq!(a.and(b).not(), a.not().or(b.not()));
                assert_eq!(a.or(b).not(), a.not().and(b.not()));
            }
        }
    }

    #[test]
    fn the_classic_tautology_fails_in_three_values() {
        // p ∨ ¬p is not TRUE when p is ni — the root of the tautology
        // problem the Appendix discusses.
        assert_eq!(N.or(N.not()), N);
    }

    #[test]
    fn all_and_any_fold() {
        assert_eq!(Truth::all([T, T, T]), T);
        assert_eq!(Truth::all([T, N, T]), N);
        assert_eq!(Truth::all([T, N, F]), F);
        assert_eq!(Truth::all([]), T);
        assert_eq!(Truth::any([F, N, F]), N);
        assert_eq!(Truth::any([F, T]), T);
        assert_eq!(Truth::any([]), F);
    }

    #[test]
    fn predicates_and_conversions() {
        assert!(T.is_true() && !T.is_false() && !T.is_ni());
        assert!(F.is_false());
        assert!(N.is_ni());
        assert_eq!(Truth::from(true), T);
        assert_eq!(Truth::from(false), F);
        assert_eq!(T.to_string(), "TRUE");
        assert_eq!(N.to_string(), "ni");
    }

    #[test]
    fn compare_op_tests() {
        use std::cmp::Ordering::*;
        assert!(CompareOp::Eq.test(Equal) && !CompareOp::Eq.test(Less));
        assert!(CompareOp::Ne.test(Greater));
        assert!(CompareOp::Lt.test(Less) && !CompareOp::Lt.test(Equal));
        assert!(CompareOp::Le.test(Equal) && CompareOp::Le.test(Less));
        assert!(CompareOp::Gt.test(Greater));
        assert!(CompareOp::Ge.test(Equal) && !CompareOp::Ge.test(Less));
    }

    #[test]
    fn compare_op_negation_and_flip() {
        for op in CompareOp::ALL {
            for ord in [Ordering::Less, Ordering::Equal, Ordering::Greater] {
                assert_eq!(
                    op.test(ord),
                    !op.negated().test(ord),
                    "{op} negation at {ord:?}"
                );
                assert_eq!(
                    op.test(ord),
                    op.flipped().test(ord.reverse()),
                    "{op} flip at {ord:?}"
                );
            }
        }
    }

    #[test]
    fn cell_comparisons_follow_ni_semantics() {
        let five = Value::int(5);
        let nine = Value::int(9);
        assert_eq!(
            compare_cells(Some(&five), CompareOp::Lt, Some(&nine)).unwrap(),
            T
        );
        assert_eq!(
            compare_cells(Some(&nine), CompareOp::Lt, Some(&five)).unwrap(),
            F
        );
        assert_eq!(compare_cells(None, CompareOp::Lt, Some(&five)).unwrap(), N);
        assert_eq!(compare_cells(Some(&five), CompareOp::Eq, None).unwrap(), N);
        assert_eq!(compare_cells(None, CompareOp::Eq, None).unwrap(), N);
        // Cross-domain comparison is an error, not ni.
        assert!(compare_cells(Some(&five), CompareOp::Eq, Some(&Value::str("x"))).is_err());
    }

    #[test]
    fn truth_display_used_in_reports() {
        assert_eq!(format!("{} {} {}", T, F, N), "TRUE FALSE ni");
    }
}
