//! Non-null attribute values and their comparison semantics.
//!
//! The paper extends every attribute domain with the distinguished symbol
//! `ni`. In this library the null is **not** a [`Value`] variant: a tuple
//! cell is `Option<Value>` where `None` plays the role of `ni`. This mirrors
//! the paper exactly (the extended domain is `DOM(A) ∪ {ni}`) and lets the
//! type system prevent nulls from leaking into places the paper forbids them,
//! such as selection constants (`k` in `R[Aθk]` must come from `DOM(A)`).

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

use crate::error::{CoreError, CoreResult};

/// A 64-bit float with total ordering, equality and hashing.
///
/// Relational attribute values must be usable as set elements and hash-index
/// keys, so raw `f64` (which is neither `Eq` nor `Hash`) is wrapped. `NaN` is
/// normalised to a single canonical bit pattern and ordered greater than any
/// other value, and `-0.0` is normalised to `0.0`, so that equal-looking
/// values always collide in hash structures.
#[derive(Debug, Clone, Copy)]
pub struct F64Ord(f64);

impl F64Ord {
    /// Wraps a float, normalising `NaN` and negative zero.
    pub fn new(v: f64) -> Self {
        if v.is_nan() {
            F64Ord(f64::NAN)
        } else if v == 0.0 {
            F64Ord(0.0)
        } else {
            F64Ord(v)
        }
    }

    /// Returns the wrapped float.
    pub fn get(self) -> f64 {
        self.0
    }

    fn key(self) -> u64 {
        if self.0.is_nan() {
            f64::NAN.to_bits()
        } else {
            self.0.to_bits()
        }
    }
}

impl PartialEq for F64Ord {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for F64Ord {}

impl PartialOrd for F64Ord {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for F64Ord {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self.0.is_nan(), other.0.is_nan()) {
            (true, true) => Ordering::Equal,
            (true, false) => Ordering::Greater,
            (false, true) => Ordering::Less,
            (false, false) => self.0.partial_cmp(&other.0).unwrap_or(Ordering::Equal),
        }
    }
}

impl Hash for F64Ord {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.key().hash(state);
    }
}

impl fmt::Display for F64Ord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A non-null value drawn from an attribute domain.
///
/// Cross-type comparisons between the two numeric variants are permitted
/// (an `Int` compares with a `Float` numerically); every other cross-type
/// comparison is a [`CoreError::TypeMismatch`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// A 64-bit signed integer, e.g. an employee number.
    Int(i64),
    /// A totally-ordered 64-bit float.
    Float(F64Ord),
    /// An owned UTF-8 string, e.g. a name. Ordered lexicographically.
    Str(String),
    /// A boolean.
    Bool(bool),
}

impl Value {
    /// Convenience constructor for string values.
    pub fn str(s: impl Into<String>) -> Self {
        Value::Str(s.into())
    }

    /// Convenience constructor for integer values.
    pub fn int(v: i64) -> Self {
        Value::Int(v)
    }

    /// Convenience constructor for float values.
    pub fn float(v: f64) -> Self {
        Value::Float(F64Ord::new(v))
    }

    /// Convenience constructor for boolean values.
    pub fn bool(v: bool) -> Self {
        Value::Bool(v)
    }

    /// Returns a short name of the value's runtime type, used in error
    /// messages and schema displays.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "str",
            Value::Bool(_) => "bool",
        }
    }

    /// True if the two values belong to comparable domains: identical
    /// variants, or the `Int`/`Float` numeric pair.
    pub fn comparable_with(&self, other: &Value) -> bool {
        matches!(
            (self, other),
            (Value::Int(_), Value::Int(_))
                | (Value::Float(_), Value::Float(_))
                | (Value::Int(_), Value::Float(_))
                | (Value::Float(_), Value::Int(_))
                | (Value::Str(_), Value::Str(_))
                | (Value::Bool(_), Value::Bool(_))
        )
    }

    /// Compares two values drawn from the same (or numerically compatible)
    /// domain. Returns an error when the domains are incompatible; this is a
    /// schema violation, not a three-valued `ni` outcome.
    pub fn compare(&self, other: &Value) -> CoreResult<Ordering> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Ok(a.cmp(b)),
            (Value::Float(a), Value::Float(b)) => Ok(a.cmp(b)),
            (Value::Int(a), Value::Float(b)) => Ok(F64Ord::new(*a as f64).cmp(b)),
            (Value::Float(a), Value::Int(b)) => Ok(a.cmp(&F64Ord::new(*b as f64))),
            (Value::Str(a), Value::Str(b)) => Ok(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Ok(a.cmp(b)),
            _ => Err(CoreError::TypeMismatch {
                left: format!("{self:?}"),
                right: format!("{other:?}"),
            }),
        }
    }

    /// Domain-aware equality: `Int(2)` equals `Float(2.0)`, but comparing an
    /// `Int` with a `Str` is an error.
    pub fn equal(&self, other: &Value) -> CoreResult<bool> {
        Ok(self.compare(other)? == Ordering::Equal)
    }

    /// The canonical hash key of the value for domain-aware equality:
    /// integral floats that fit an `i64` normalize to [`Value::Int`], so
    /// that values equal under [`Value::compare`] (`Int(2)` = `Float(2.0)`)
    /// hash to the same key. Hash indexes and hash joins must key on this
    /// rather than on the raw value.
    ///
    /// (For magnitudes beyond 2⁵³, [`Value::compare`] itself rounds the
    /// integer to the nearest float, making its equality non-transitive;
    /// such collisions cannot be represented by any hash key and keep
    /// their raw exact-match behavior here.)
    #[must_use]
    pub fn join_key(&self) -> Value {
        match self {
            Value::Float(f) => {
                let x = f.get();
                if x.fract() == 0.0 && (i64::MIN as f64..=i64::MAX as f64).contains(&x) {
                    Value::Int(x as i64)
                } else {
                    self.clone()
                }
            }
            other => other.clone(),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(i64::from(v))
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// The contents of a tuple cell: either a domain value or the `ni` null.
///
/// This alias documents intent at API boundaries; it is plain `Option` so all
/// the usual combinators apply.
pub type Cell = Option<Value>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn int_ordering() {
        assert_eq!(
            Value::int(1).compare(&Value::int(2)).unwrap(),
            Ordering::Less
        );
        assert_eq!(
            Value::int(5).compare(&Value::int(5)).unwrap(),
            Ordering::Equal
        );
        assert_eq!(
            Value::int(9).compare(&Value::int(-3)).unwrap(),
            Ordering::Greater
        );
    }

    #[test]
    fn cross_numeric_comparison_is_allowed() {
        assert!(Value::int(2).equal(&Value::float(2.0)).unwrap());
        assert_eq!(
            Value::float(1.5).compare(&Value::int(2)).unwrap(),
            Ordering::Less
        );
    }

    #[test]
    fn string_ordering_is_lexicographic() {
        assert_eq!(
            Value::str("BROWN").compare(&Value::str("SMITH")).unwrap(),
            Ordering::Less
        );
    }

    #[test]
    fn incompatible_types_error() {
        let err = Value::int(1).compare(&Value::str("x")).unwrap_err();
        assert!(matches!(err, CoreError::TypeMismatch { .. }));
        let err = Value::bool(true).compare(&Value::int(1)).unwrap_err();
        assert!(matches!(err, CoreError::TypeMismatch { .. }));
    }

    #[test]
    fn float_total_order_handles_nan_and_zero() {
        let nan = F64Ord::new(f64::NAN);
        let other_nan = F64Ord::new(f64::NAN);
        assert_eq!(nan, other_nan, "all NaNs are identified");
        assert!(nan > F64Ord::new(f64::INFINITY));
        assert_eq!(F64Ord::new(-0.0), F64Ord::new(0.0));
    }

    #[test]
    fn float_hash_consistent_with_eq() {
        let mut set = HashSet::new();
        set.insert(Value::float(-0.0));
        assert!(set.contains(&Value::float(0.0)));
        set.insert(Value::float(f64::NAN));
        assert!(set.contains(&Value::float(f64::NAN)));
    }

    #[test]
    fn display_round_trips_simple_values() {
        assert_eq!(Value::int(42).to_string(), "42");
        assert_eq!(Value::str("SMITH").to_string(), "SMITH");
        assert_eq!(Value::bool(false).to_string(), "false");
        assert_eq!(Value::float(2.5).to_string(), "2.5");
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(3i64), Value::int(3));
        assert_eq!(Value::from(3i32), Value::int(3));
        assert_eq!(Value::from("x"), Value::str("x"));
        assert_eq!(Value::from(true), Value::bool(true));
        assert_eq!(Value::from(1.25f64), Value::float(1.25));
    }

    #[test]
    fn type_names() {
        assert_eq!(Value::int(0).type_name(), "int");
        assert_eq!(Value::float(0.0).type_name(), "float");
        assert_eq!(Value::str("").type_name(), "str");
        assert_eq!(Value::bool(true).type_name(), "bool");
    }

    #[test]
    fn comparable_with_matrix() {
        assert!(Value::int(1).comparable_with(&Value::float(1.0)));
        assert!(Value::str("a").comparable_with(&Value::str("b")));
        assert!(!Value::str("a").comparable_with(&Value::int(1)));
        assert!(!Value::bool(true).comparable_with(&Value::float(0.0)));
    }
}
