//! Tuples over the extended domains and the *more informative* ordering.
//!
//! Section 3 of the paper defines a tuple (an X-value) as an assignment of
//! values from extended domains to the attributes in `X ⊆ U`, with the
//! convention that `r[A] = ni` for every attribute `A` outside `X`. A
//! [`Tuple`] therefore stores **only its non-null cells**: the cell of any
//! attribute not present is `ni`. With this representation, two tuples are
//! information-wise equivalent (`r ≅ t`) exactly when their cell maps are
//! equal, so `PartialEq`/`Eq`/`Hash` on [`Tuple`] *are* the paper's `≅`.
//!
//! The module implements:
//!
//! * Definition 3.1 — [`Tuple::more_informative_than`] (`r ≥ t`),
//! * the tuple **meet** `r₁ ∧ r₂` ([`Tuple::meet`]),
//! * **joinability** and the tuple **join** `r₁ ∨ r₂` ([`Tuple::joinable`],
//!   [`Tuple::join`]),
//! * totality tests (`X`-total, total, the null tuple).

use std::collections::BTreeMap;
use std::fmt;

use crate::universe::{AttrId, AttrSet, Universe};
use crate::value::Value;

/// A tuple (X-value) with `ni` represented by cell absence.
///
/// # Example
///
/// ```
/// use nullrel_core::tuple::Tuple;
/// use nullrel_core::universe::Universe;
/// use nullrel_core::value::Value;
///
/// let mut u = Universe::new();
/// let e_no = u.intern("E#");
/// let name = u.intern("NAME");
/// let tel = u.intern("TEL#");
///
/// // (1120, SMITH, -) : the TEL# cell is ni, so it is simply not stored.
/// let smith = Tuple::new()
///     .with(e_no, Value::int(1120))
///     .with(name, Value::str("SMITH"));
///
/// assert_eq!(smith.get(tel), None, "absent attribute reads as ni");
/// assert!(smith.is_total_on(&[e_no, name].into_iter().collect()));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tuple {
    cells: BTreeMap<AttrId, Value>,
}

impl Tuple {
    /// Creates the null tuple: every attribute reads as `ni`.
    pub fn new() -> Self {
        Tuple::default()
    }

    /// Creates a tuple from `(attribute, value)` pairs. Later pairs overwrite
    /// earlier ones for the same attribute.
    pub fn from_pairs<I>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (AttrId, Value)>,
    {
        Tuple {
            cells: pairs.into_iter().collect(),
        }
    }

    /// Builder-style insertion of a non-null cell.
    #[must_use]
    pub fn with(mut self, attr: AttrId, value: Value) -> Self {
        self.cells.insert(attr, value);
        self
    }

    /// Builder-style insertion of an optional cell; `None` leaves the
    /// attribute null.
    #[must_use]
    pub fn with_opt(mut self, attr: AttrId, value: Option<Value>) -> Self {
        if let Some(v) = value {
            self.cells.insert(attr, v);
        }
        self
    }

    /// Sets a cell in place; `None` nulls the attribute out.
    pub fn set(&mut self, attr: AttrId, value: Option<Value>) {
        match value {
            Some(v) => {
                self.cells.insert(attr, v);
            }
            None => {
                self.cells.remove(&attr);
            }
        }
    }

    /// Reads the cell of an attribute: `None` means `ni`.
    pub fn get(&self, attr: AttrId) -> Option<&Value> {
        self.cells.get(&attr)
    }

    /// True if the attribute's cell is the null `ni`.
    pub fn is_null(&self, attr: AttrId) -> bool {
        !self.cells.contains_key(&attr)
    }

    /// The set of attributes with non-null cells.
    pub fn defined_attrs(&self) -> AttrSet {
        self.cells.keys().copied().collect()
    }

    /// The number of non-null cells.
    pub fn defined_len(&self) -> usize {
        self.cells.len()
    }

    /// Iterates over the non-null cells in attribute order.
    pub fn cells(&self) -> impl Iterator<Item = (AttrId, &Value)> + '_ {
        self.cells.iter().map(|(a, v)| (*a, v))
    }

    /// True for the null tuple (every attribute is `ni`). The paper notes all
    /// null tuples are equivalent; with this representation there is exactly
    /// one.
    pub fn is_null_tuple(&self) -> bool {
        self.cells.is_empty()
    }

    /// True if every attribute in `attrs` has a non-null cell (the paper's
    /// "X-total").
    pub fn is_total_on(&self, attrs: &AttrSet) -> bool {
        attrs.iter().all(|a| self.cells.contains_key(a))
    }

    /// True if the tuple is total on the given attribute list (convenience
    /// for slices).
    pub fn is_total_on_slice(&self, attrs: &[AttrId]) -> bool {
        attrs.iter().all(|a| self.cells.contains_key(a))
    }

    /// Definition 3.1: `self ≥ other` — `self` is **more informative** than
    /// `other` when every non-null cell of `other` appears in `self` with the
    /// same value.
    pub fn more_informative_than(&self, other: &Tuple) -> bool {
        if self.cells.len() < other.cells.len() {
            return false;
        }
        other
            .cells
            .iter()
            .all(|(attr, value)| self.cells.get(attr) == Some(value))
    }

    /// `self ≤ other`: `self` is less informative than `other`.
    pub fn less_informative_than(&self, other: &Tuple) -> bool {
        other.more_informative_than(self)
    }

    /// Information-wise equivalence `≅`. Because only non-null cells are
    /// stored, this coincides with structural equality.
    pub fn equivalent(&self, other: &Tuple) -> bool {
        self == other
    }

    /// The **meet** `self ∧ other`: the most informative tuple that is less
    /// informative than both. A cell survives only where the two tuples agree
    /// on a non-null value. The meet always exists (Section 3).
    pub fn meet(&self, other: &Tuple) -> Tuple {
        let cells = self
            .cells
            .iter()
            .filter(|(attr, value)| other.cells.get(attr) == Some(value))
            .map(|(attr, value)| (*attr, value.clone()))
            .collect();
        Tuple { cells }
    }

    /// True if the two tuples are **joinable**: wherever both are non-null
    /// they agree. (Section 3: if `r₁[A] ≠ r₂[A]` then one of them is `ni`.)
    pub fn joinable(&self, other: &Tuple) -> bool {
        // Iterate over the smaller map for speed.
        let (small, large) = if self.cells.len() <= other.cells.len() {
            (&self.cells, &other.cells)
        } else {
            (&other.cells, &self.cells)
        };
        small.iter().all(|(attr, value)| match large.get(attr) {
            None => true,
            Some(v) => v == value,
        })
    }

    /// The **join** `self ∨ other`: the least informative tuple that is more
    /// informative than both. Returns `None` when the tuples are not
    /// joinable.
    pub fn join(&self, other: &Tuple) -> Option<Tuple> {
        if !self.joinable(other) {
            return None;
        }
        let mut cells = self.cells.clone();
        for (attr, value) in &other.cells {
            cells.insert(*attr, value.clone());
        }
        Some(Tuple { cells })
    }

    /// The hash key of the tuple over an attribute list: the cell values of
    /// `attrs` in order, or `None` when any of them is `ni`. Under the `ni`
    /// semantics a null cell can never satisfy an equality with certainty,
    /// so hash-based operators (indexes, hash joins) must treat such tuples
    /// as unkeyable rather than hash the null.
    pub fn key_on(&self, attrs: &[AttrId]) -> Option<Vec<Value>> {
        let mut key = Vec::with_capacity(attrs.len());
        for attr in attrs {
            key.push(self.cells.get(attr)?.clone());
        }
        Some(key)
    }

    /// The projection `r[X]`: keep only the cells of attributes in `X`.
    pub fn project(&self, attrs: &AttrSet) -> Tuple {
        let cells = self
            .cells
            .iter()
            .filter(|(attr, _)| attrs.contains(attr))
            .map(|(attr, value)| (*attr, value.clone()))
            .collect();
        Tuple { cells }
    }

    /// The complement projection: drop the cells of attributes in `X`.
    pub fn project_away(&self, attrs: &AttrSet) -> Tuple {
        let cells = self
            .cells
            .iter()
            .filter(|(attr, _)| !attrs.contains(attr))
            .map(|(attr, value)| (*attr, value.clone()))
            .collect();
        Tuple { cells }
    }

    /// Renames attributes according to `mapping`; attributes not in the
    /// mapping keep their id. The caller is responsible for ensuring the
    /// mapping is injective on this tuple's attributes (the relation-level
    /// rename operator checks this).
    pub fn rename(&self, mapping: &BTreeMap<AttrId, AttrId>) -> Tuple {
        let cells = self
            .cells
            .iter()
            .map(|(attr, value)| (*mapping.get(attr).unwrap_or(attr), value.clone()))
            .collect();
        Tuple { cells }
    }

    /// Renders the tuple over an explicit attribute list, printing `-` for
    /// null cells, in the style of the paper's tables.
    pub fn render(&self, attrs: &[AttrId], _universe: &Universe) -> String {
        let mut parts = Vec::with_capacity(attrs.len());
        for attr in attrs {
            match self.get(*attr) {
                Some(v) => parts.push(v.to_string()),
                None => parts.push("-".to_owned()),
            }
        }
        format!("({})", parts.join(", "))
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (attr, value)) in self.cells.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "#{}={}", attr.index(), value)?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::attr_set;

    fn setup() -> (Universe, AttrId, AttrId, AttrId, AttrId, AttrId) {
        let mut u = Universe::new();
        let e_no = u.intern("E#");
        let name = u.intern("NAME");
        let sex = u.intern("SEX");
        let mgr = u.intern("MGR#");
        let tel = u.intern("TEL#");
        (u, e_no, name, sex, mgr, tel)
    }

    /// The r1..r4 example after Definition 3.1 in the paper.
    #[test]
    fn paper_more_informative_chain() {
        let (_u, e_no, name, sex, mgr, tel) = setup();
        let r1 = Tuple::new()
            .with(e_no, Value::int(5555))
            .with(name, Value::str("JONES"))
            .with(mgr, Value::int(2231));
        let r2 = r1.clone().with(sex, Value::str("F"));
        let r3 = r2.clone(); // enlarging with a null TEL# changes nothing
        let r4 = r3.clone().with(tel, Value::int(2_639_452));

        assert!(r2.more_informative_than(&r1));
        assert!(!r1.more_informative_than(&r2));
        assert!(r2.equivalent(&r3), "adding a null column preserves ≅");
        assert!(r4.more_informative_than(&r3));
        assert!(r1.less_informative_than(&r4), "≥ is transitive");
    }

    #[test]
    fn more_informative_is_reflexive_and_antisymmetric_up_to_equivalence() {
        let (_u, e_no, name, ..) = setup();
        let t = Tuple::new()
            .with(e_no, Value::int(1))
            .with(name, Value::str("A"));
        assert!(t.more_informative_than(&t));
        let s = Tuple::new()
            .with(name, Value::str("A"))
            .with(e_no, Value::int(1));
        assert!(t.more_informative_than(&s) && s.more_informative_than(&t));
        assert!(t.equivalent(&s));
    }

    #[test]
    fn differing_values_break_the_ordering() {
        let (_u, e_no, ..) = setup();
        let a = Tuple::new().with(e_no, Value::int(1));
        let b = Tuple::new().with(e_no, Value::int(2));
        assert!(!a.more_informative_than(&b));
        assert!(!b.more_informative_than(&a));
    }

    #[test]
    fn null_tuple_is_bottom() {
        let (_u, e_no, ..) = setup();
        let bottom = Tuple::new();
        let t = Tuple::new().with(e_no, Value::int(1));
        assert!(bottom.is_null_tuple());
        assert!(t.more_informative_than(&bottom));
        assert!(!bottom.more_informative_than(&t));
        assert!(bottom.more_informative_than(&Tuple::new()), "⊥ ≥ ⊥");
    }

    #[test]
    fn meet_keeps_agreeing_cells_only() {
        let (_u, e_no, name, sex, ..) = setup();
        let r1 = Tuple::new()
            .with(e_no, Value::int(1))
            .with(name, Value::str("SMITH"))
            .with(sex, Value::str("M"));
        let r2 = Tuple::new()
            .with(e_no, Value::int(1))
            .with(name, Value::str("JONES"))
            .with(sex, Value::str("M"));
        let m = r1.meet(&r2);
        assert_eq!(m.get(e_no), Some(&Value::int(1)));
        assert_eq!(m.get(name), None, "disagreeing cell becomes ni");
        assert_eq!(m.get(sex), Some(&Value::str("M")));
    }

    #[test]
    fn meet_is_commutative_and_a_lower_bound() {
        let (_u, e_no, name, sex, mgr, _tel) = setup();
        let r1 = Tuple::new()
            .with(e_no, Value::int(1))
            .with(name, Value::str("A"))
            .with(mgr, Value::int(9));
        let r2 = Tuple::new()
            .with(e_no, Value::int(1))
            .with(sex, Value::str("F"));
        let m12 = r1.meet(&r2);
        let m21 = r2.meet(&r1);
        assert_eq!(m12, m21);
        assert!(r1.more_informative_than(&m12));
        assert!(r2.more_informative_than(&m12));
    }

    #[test]
    fn joinable_and_join() {
        let (_u, e_no, name, sex, mgr, tel) = setup();
        let partial = Tuple::new()
            .with(e_no, Value::int(4335))
            .with(name, Value::str("BROWN"));
        let more = Tuple::new()
            .with(e_no, Value::int(4335))
            .with(sex, Value::str("F"))
            .with(mgr, Value::int(2235));
        assert!(partial.joinable(&more));
        let joined = partial.join(&more).expect("joinable tuples must join");
        assert_eq!(joined.defined_len(), 4);
        assert!(joined.more_informative_than(&partial));
        assert!(joined.more_informative_than(&more));
        assert!(joined.is_null(tel));

        let conflicting = Tuple::new().with(e_no, Value::int(9999));
        assert!(!partial.joinable(&conflicting));
        assert!(partial.join(&conflicting).is_none());
    }

    #[test]
    fn join_is_least_upper_bound() {
        let (_u, e_no, name, sex, ..) = setup();
        let r1 = Tuple::new().with(e_no, Value::int(1));
        let r2 = Tuple::new().with(name, Value::str("X"));
        let join = r1.join(&r2).unwrap();
        // Any common upper bound must be ≥ the join.
        let upper = Tuple::new()
            .with(e_no, Value::int(1))
            .with(name, Value::str("X"))
            .with(sex, Value::str("F"));
        assert!(upper.more_informative_than(&join));
        assert!(join.more_informative_than(&r1) && join.more_informative_than(&r2));
    }

    #[test]
    fn totality_checks() {
        let (_u, e_no, name, sex, mgr, tel) = setup();
        let brown = Tuple::new()
            .with(e_no, Value::int(4335))
            .with(name, Value::str("BROWN"))
            .with(sex, Value::str("F"))
            .with(mgr, Value::int(2235));
        assert!(brown.is_total_on(&attr_set([e_no, name, sex, mgr])));
        assert!(!brown.is_total_on(&attr_set([e_no, tel])));
        assert!(brown.is_total_on_slice(&[e_no]));
        assert!(brown.is_total_on(&AttrSet::new()), "vacuously total on ∅");
    }

    #[test]
    fn projection_and_complement() {
        let (_u, e_no, name, sex, ..) = setup();
        let t = Tuple::new()
            .with(e_no, Value::int(1))
            .with(name, Value::str("A"))
            .with(sex, Value::str("M"));
        let p = t.project(&attr_set([e_no, sex]));
        assert_eq!(p.defined_attrs(), attr_set([e_no, sex]));
        let away = t.project_away(&attr_set([e_no, sex]));
        assert_eq!(away.defined_attrs(), attr_set([name]));
        // Projecting onto attributes where the tuple is null yields the null tuple.
        let none = Tuple::new().project(&attr_set([e_no]));
        assert!(none.is_null_tuple());
    }

    #[test]
    fn rename_moves_cells() {
        let (_u, e_no, name, sex, ..) = setup();
        let t = Tuple::new()
            .with(e_no, Value::int(1))
            .with(name, Value::str("A"));
        let mapping: BTreeMap<AttrId, AttrId> = [(e_no, sex)].into_iter().collect();
        let renamed = t.rename(&mapping);
        assert_eq!(renamed.get(sex), Some(&Value::int(1)));
        assert!(renamed.is_null(e_no));
        assert_eq!(renamed.get(name), Some(&Value::str("A")));
    }

    #[test]
    fn set_and_null_out() {
        let (_u, e_no, ..) = setup();
        let mut t = Tuple::new();
        t.set(e_no, Some(Value::int(3)));
        assert_eq!(t.get(e_no), Some(&Value::int(3)));
        t.set(e_no, None);
        assert!(t.is_null(e_no));
        assert!(t.is_null_tuple());
    }

    #[test]
    fn render_uses_dash_for_nulls() {
        let (u, e_no, name, _sex, _mgr, tel) = setup();
        let t = Tuple::new()
            .with(e_no, Value::int(4335))
            .with(name, Value::str("BROWN"));
        assert_eq!(t.render(&[e_no, name, tel], &u), "(4335, BROWN, -)");
    }

    #[test]
    fn meet_with_null_tuple_is_null_tuple() {
        let (_u, e_no, ..) = setup();
        let t = Tuple::new().with(e_no, Value::int(1));
        assert!(t.meet(&Tuple::new()).is_null_tuple());
    }

    #[test]
    fn join_with_null_tuple_is_identity() {
        let (_u, e_no, ..) = setup();
        let t = Tuple::new().with(e_no, Value::int(1));
        assert_eq!(t.join(&Tuple::new()).unwrap(), t);
    }

    #[test]
    fn footnote4_meet_insensitive_to_ni_equality_convention() {
        // Footnote 4: whether ni = ni or ni ≠ ni is immaterial for the meet.
        // Cells where either side is ni never survive, so both conventions
        // produce the same result.
        let (_u, e_no, name, ..) = setup();
        let r1 = Tuple::new().with(e_no, Value::int(1)); // NAME is ni
        let r2 = Tuple::new().with(e_no, Value::int(1)); // NAME is ni
        let m = r1.meet(&r2);
        assert!(m.is_null(name));
        assert_eq!(m.get(e_no), Some(&Value::int(1)));
    }
}
