//! Error types for the core library.
//!
//! The library never panics on malformed input: every operation that can
//! observe a schema violation, a type mismatch, or a non-enumerable domain
//! returns a [`CoreError`] through [`CoreResult`].

use std::fmt;

use crate::universe::AttrId;

/// Result alias used throughout the crate.
pub type CoreResult<T> = Result<T, CoreError>;

/// All error conditions surfaced by the core library.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// Two values of incompatible types were compared (e.g. an integer and a
    /// string). The paper assumes attributes compared by `θ` share a domain;
    /// violating that is a schema error, not a `ni` outcome.
    TypeMismatch {
        /// Human readable description of the left operand.
        left: String,
        /// Human readable description of the right operand.
        right: String,
    },
    /// An attribute id was used with a universe that does not define it.
    UnknownAttribute(AttrId),
    /// An attribute name was looked up but never interned in the universe.
    UnknownAttributeName(String),
    /// A relation operation required disjoint scopes (Cartesian product,
    /// division with disjoint quotient scope) but the scopes overlapped.
    ScopeOverlap {
        /// Attributes common to both operands.
        shared: Vec<AttrId>,
    },
    /// An operation such as `TOP_U` or pseudo-complement needs every attribute
    /// domain to be finitely enumerable, and this attribute's domain is not.
    DomainNotEnumerable(AttrId),
    /// Constructing `TOP_U` (or a substitution space) would exceed the given
    /// cardinality budget.
    DomainTooLarge {
        /// The number of tuples/substitutions that would have been produced.
        required: u128,
        /// The configured limit.
        limit: u128,
    },
    /// A constant used in a selection was the null symbol. The paper requires
    /// selection constants to be drawn from `DOM(A)`, never `ni`.
    NullConstant,
    /// A renaming mapped two distinct attributes onto the same target.
    RenameCollision(AttrId),
    /// The operation requires a non-empty attribute list (e.g. an equijoin on
    /// an empty `X` degenerates to a Cartesian product and is rejected to keep
    /// intent explicit).
    EmptyAttributeList,
    /// An expression referenced a named relation the evaluation context does
    /// not provide.
    UnknownRelation(String),
    /// Free-form invariant violation with a description; used by internal
    /// consistency checks that should be unreachable through the public API.
    Invariant(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::TypeMismatch { left, right } => {
                write!(f, "type mismatch comparing {left} with {right}")
            }
            CoreError::UnknownAttribute(id) => {
                write!(
                    f,
                    "attribute id {} is not defined in this universe",
                    id.index()
                )
            }
            CoreError::UnknownAttributeName(name) => {
                write!(f, "attribute name {name:?} is not defined in this universe")
            }
            CoreError::ScopeOverlap { shared } => {
                write!(f, "operand scopes overlap on {} attribute(s)", shared.len())
            }
            CoreError::DomainNotEnumerable(id) => write!(
                f,
                "attribute id {} does not have a finitely enumerable domain",
                id.index()
            ),
            CoreError::DomainTooLarge { required, limit } => write!(
                f,
                "operation would enumerate {required} tuples, exceeding the limit of {limit}"
            ),
            CoreError::NullConstant => {
                write!(f, "selection constants must be non-null domain values")
            }
            CoreError::RenameCollision(id) => write!(
                f,
                "renaming maps more than one source attribute onto attribute id {}",
                id.index()
            ),
            CoreError::EmptyAttributeList => {
                write!(f, "operation requires a non-empty attribute list")
            }
            CoreError::UnknownRelation(name) => {
                write!(f, "expression references unknown relation {name:?}")
            }
            CoreError::Invariant(msg) => write!(f, "internal invariant violated: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = CoreError::TypeMismatch {
            left: "Int(1)".into(),
            right: "Str(\"a\")".into(),
        };
        let text = err.to_string();
        assert!(text.contains("Int(1)"));
        assert!(text.contains("Str(\"a\")"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(CoreError::NullConstant, CoreError::NullConstant);
        assert_ne!(
            CoreError::NullConstant,
            CoreError::EmptyAttributeList,
            "distinct variants must not compare equal"
        );
    }

    #[test]
    fn error_trait_object_works() {
        let err: Box<dyn std::error::Error> = Box::new(CoreError::EmptyAttributeList);
        assert!(err.to_string().contains("non-empty"));
    }
}
