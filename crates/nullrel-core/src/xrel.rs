//! Extended relations (x-relations): equivalence classes of relations under
//! information-wise equivalence.
//!
//! Definition 4.3 introduces the x-relation `R̂` as the class of relations
//! equivalent to `R`. An [`XRelation`] always stores the **canonical minimal
//! representation** of its class (Definition 4.6): no null tuple and no tuple
//! strictly less informative than another, with tuples kept in a canonical
//! sorted order. Because tuples store only their non-null cells, the minimal
//! representation is unique *independently of any attribute list*, matching
//! the paper's observation that "x-relations are not explicitly associated
//! with a set of attributes" (Section 6).
//!
//! Consequently `PartialEq`/`Eq`/`Hash` on [`XRelation`] implement the
//! paper's `R̂₁ = R̂₂ ⇔ R₁ ≅ R₂`, and [`XRelation::contains`] implements the
//! set-containment `⊒` of Definition 4.4.

use std::fmt;

use crate::relation::Relation;
use crate::tuple::Tuple;
use crate::universe::{AttrId, AttrSet};

/// An extended relation, held as its canonical minimal representation.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct XRelation {
    /// Minimal representation, sorted into canonical order.
    tuples: Vec<Tuple>,
}

impl XRelation {
    /// The empty x-relation `∅̂` — the bottom of the lattice.
    pub fn empty() -> Self {
        XRelation::default()
    }

    /// Builds an x-relation from any iterator of tuples; the input is reduced
    /// to minimal form (the paper's `⌈t₁, …, tₙ⌉` notation).
    pub fn from_tuples<I: IntoIterator<Item = Tuple>>(tuples: I) -> Self {
        let collected: Vec<Tuple> = tuples.into_iter().collect();
        let minimal = minimize(collected);
        XRelation { tuples: minimal }
    }

    /// Builds an x-relation from a [`Relation`] representation.
    pub fn from_relation(relation: &Relation) -> Self {
        XRelation::from_tuples(relation.tuples().cloned())
    }

    /// Builds an x-relation from tuples already known to be minimal and
    /// pairwise incomparable. Used by the lattice operators to avoid
    /// re-minimising; debug builds verify the claim.
    pub(crate) fn from_minimal_unchecked(mut tuples: Vec<Tuple>) -> Self {
        tuples.sort();
        tuples.dedup();
        debug_assert!(
            is_antichain(&tuples),
            "from_minimal_unchecked called with a non-minimal tuple set"
        );
        XRelation { tuples }
    }

    /// Builds an x-relation from tuples the caller guarantees to be an
    /// antichain (no null tuple, no tuple subsumed by another). Streaming
    /// operators that maintain minimality incrementally use this to avoid a
    /// quadratic re-minimisation at the end; debug builds verify the claim.
    pub fn from_antichain(tuples: Vec<Tuple>) -> Self {
        XRelation::from_minimal_unchecked(tuples)
    }

    /// The tuples of the canonical minimal representation.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Consumes the x-relation and returns its tuples.
    pub fn into_tuples(self) -> Vec<Tuple> {
        self.tuples
    }

    /// The number of tuples in the minimal representation.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True for the empty x-relation.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Adds a tuple, re-minimising. Returns a new x-relation.
    #[must_use]
    pub fn inserted(&self, tuple: Tuple) -> XRelation {
        let mut tuples = self.tuples.clone();
        tuples.push(tuple);
        XRelation::from_tuples(tuples)
    }

    /// Definition 4.5 / Proposition 4.2: `t ∈̂ R̂`.
    pub fn x_contains(&self, tuple: &Tuple) -> bool {
        self.tuples.iter().any(|r| r.more_informative_than(tuple))
    }

    /// Definition 4.4: `self ⊒ other` — x-relation containment, defined as
    /// subsumption of representations.
    pub fn contains(&self, other: &XRelation) -> bool {
        other.tuples.iter().all(|t| self.x_contains(t))
    }

    /// Proper containment `⊐`.
    pub fn properly_contains(&self, other: &XRelation) -> bool {
        self.contains(other) && self != other
    }

    /// Definition 4.7: the scope of the x-relation.
    pub fn scope(&self) -> AttrSet {
        let mut scope = AttrSet::new();
        for t in &self.tuples {
            scope.extend(t.defined_attrs());
        }
        scope
    }

    /// True if every tuple is total on the x-relation's scope — i.e. this is
    /// (the image of) a Codd relation (Section 7).
    pub fn is_total(&self) -> bool {
        let scope = self.scope();
        self.tuples.iter().all(|t| t.is_total_on(&scope))
    }

    /// Materialises a [`Relation`] representation over an explicit attribute
    /// order (useful for display; the attribute list must cover the scope for
    /// the representation to be faithful, which is not enforced here).
    pub fn to_relation<I: IntoIterator<Item = AttrId>>(&self, attrs: I) -> Relation {
        let mut rel = Relation::new(attrs);
        for t in &self.tuples {
            rel.insert_unchecked(t.clone());
        }
        rel
    }

    /// Materialises a [`Relation`] over the x-relation's own scope.
    pub fn to_relation_over_scope(&self) -> Relation {
        self.to_relation(self.scope())
    }

    /// Builds an inverted-cell [`TupleIndex`](crate::lattice::hashed::TupleIndex)
    /// over the minimal representation, for callers that issue repeated
    /// subsumption queries (`x_contains`, dominator lookups) against the
    /// same x-relation: one build amortises the per-query cost the way the
    /// streaming difference/division operators do with `TupleIndex::build`
    /// over their drained inputs.
    pub fn to_index(&self) -> crate::lattice::hashed::TupleIndex {
        crate::lattice::hashed::TupleIndex::build(&self.tuples)
    }
}

impl fmt::Display for XRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XRelation[{} tuples]", self.tuples.len())
    }
}

impl FromIterator<Tuple> for XRelation {
    fn from_iter<I: IntoIterator<Item = Tuple>>(iter: I) -> Self {
        XRelation::from_tuples(iter)
    }
}

/// Reduces a set of tuples to minimal form: removes null tuples and tuples
/// strictly less informative than another tuple, then sorts canonically.
///
/// This is the quadratic reference implementation; the hash-accelerated
/// variant lives in [`crate::lattice::hashed`].
pub fn minimize(tuples: Vec<Tuple>) -> Vec<Tuple> {
    let mut deduped: Vec<Tuple> = Vec::with_capacity(tuples.len());
    for t in tuples {
        if t.is_null_tuple() {
            continue;
        }
        if !deduped.contains(&t) {
            deduped.push(t);
        }
    }
    let mut keep = Vec::with_capacity(deduped.len());
    'outer: for (i, t) in deduped.iter().enumerate() {
        for (j, other) in deduped.iter().enumerate() {
            if i != j && other.more_informative_than(t) {
                // `deduped` holds no duplicates, so `other ≥ t` here means
                // strictly more informative.
                continue 'outer;
            }
        }
        keep.push(t.clone());
    }
    keep.sort();
    keep
}

/// True if no tuple in the slice is more informative than another (and the
/// null tuple is absent) — i.e. the slice is a minimal representation.
pub fn is_antichain(tuples: &[Tuple]) -> bool {
    for (i, t) in tuples.iter().enumerate() {
        if t.is_null_tuple() {
            return false;
        }
        for (j, other) in tuples.iter().enumerate() {
            if i != j && other.more_informative_than(t) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::{attr_set, Universe};
    use crate::value::Value;

    fn setup() -> (Universe, AttrId, AttrId) {
        let mut u = Universe::new();
        let p_no = u.intern("P#");
        let s_no = u.intern("S#");
        (u, s_no, p_no)
    }

    fn st(s_no: AttrId, p_no: AttrId, s: Option<&str>, p: Option<&str>) -> Tuple {
        Tuple::new()
            .with_opt(s_no, s.map(Value::str))
            .with_opt(p_no, p.map(Value::str))
    }

    #[test]
    fn construction_minimises() {
        let (_u, s_no, p_no) = setup();
        let x = XRelation::from_tuples([
            st(s_no, p_no, Some("s1"), Some("p1")),
            st(s_no, p_no, Some("s1"), None),       // dominated
            Tuple::new(),                           // null tuple
            st(s_no, p_no, Some("s1"), Some("p1")), // duplicate
        ]);
        assert_eq!(x.len(), 1);
        assert!(x.x_contains(&st(s_no, p_no, Some("s1"), None)));
    }

    #[test]
    fn equality_is_information_wise_equivalence() {
        let (_u, s_no, p_no) = setup();
        let a = XRelation::from_tuples([
            st(s_no, p_no, Some("s1"), Some("p1")),
            st(s_no, p_no, Some("s1"), None),
        ]);
        let b = XRelation::from_tuples([st(s_no, p_no, Some("s1"), Some("p1"))]);
        assert_eq!(a, b);
        let c = XRelation::from_tuples([st(s_no, p_no, Some("s2"), Some("p1"))]);
        assert_ne!(a, c);
    }

    #[test]
    fn equality_ignores_tuple_order() {
        let (_u, s_no, p_no) = setup();
        let a = XRelation::from_tuples([
            st(s_no, p_no, Some("s1"), Some("p1")),
            st(s_no, p_no, Some("s2"), Some("p2")),
        ]);
        let b = XRelation::from_tuples([
            st(s_no, p_no, Some("s2"), Some("p2")),
            st(s_no, p_no, Some("s1"), Some("p1")),
        ]);
        assert_eq!(a, b);
    }

    #[test]
    fn containment_matches_subsumption() {
        let (_u, s_no, p_no) = setup();
        let ps1 = XRelation::from_tuples([
            st(s_no, p_no, Some("s1"), None),
            st(s_no, p_no, Some("s2"), Some("p1")),
        ]);
        let ps2 = ps1.inserted(st(s_no, p_no, Some("s2"), Some("p2")));
        assert!(ps2.contains(&ps1));
        assert!(!ps1.contains(&ps2));
        assert!(ps2.properly_contains(&ps1));
        assert!(!ps1.properly_contains(&ps1));
    }

    #[test]
    fn proposition_4_1_mutual_containment_is_equality() {
        let (_u, s_no, p_no) = setup();
        let a = XRelation::from_tuples([
            st(s_no, p_no, Some("s1"), Some("p1")),
            st(s_no, p_no, Some("s2"), None),
        ]);
        let b = XRelation::from_tuples([
            st(s_no, p_no, Some("s2"), None),
            st(s_no, p_no, Some("s1"), Some("p1")),
            st(s_no, p_no, None, Some("p1")), // dominated by (s1,p1)
        ]);
        assert!(a.contains(&b) && b.contains(&a));
        assert_eq!(a, b);
    }

    #[test]
    fn empty_is_bottom_for_containment() {
        let (_u, s_no, p_no) = setup();
        let any = XRelation::from_tuples([st(s_no, p_no, Some("s1"), None)]);
        assert!(any.contains(&XRelation::empty()));
        assert!(!XRelation::empty().contains(&any));
        assert!(XRelation::empty().contains(&XRelation::empty()));
        assert!(XRelation::empty().is_empty());
    }

    #[test]
    fn scope_and_totality() {
        let (_u, s_no, p_no) = setup();
        let partial = XRelation::from_tuples([
            st(s_no, p_no, Some("s1"), Some("p1")),
            st(s_no, p_no, Some("s2"), None),
        ]);
        assert_eq!(partial.scope(), attr_set([s_no, p_no]));
        assert!(!partial.is_total());

        let total = XRelation::from_tuples([
            st(s_no, p_no, Some("s1"), Some("p1")),
            st(s_no, p_no, Some("s2"), Some("p2")),
        ]);
        assert!(total.is_total());
    }

    #[test]
    fn to_relation_round_trip() {
        let (_u, s_no, p_no) = setup();
        let x = XRelation::from_tuples([
            st(s_no, p_no, Some("s1"), Some("p1")),
            st(s_no, p_no, Some("s2"), None),
        ]);
        let rel = x.to_relation([s_no, p_no]);
        assert_eq!(rel.len(), 2);
        assert_eq!(XRelation::from_relation(&rel), x);
        let rel2 = x.to_relation_over_scope();
        assert_eq!(XRelation::from_relation(&rel2), x);
    }

    #[test]
    fn minimize_helper_and_antichain() {
        let (_u, s_no, p_no) = setup();
        let tuples = vec![
            st(s_no, p_no, Some("s1"), Some("p1")),
            st(s_no, p_no, Some("s1"), None),
            st(s_no, p_no, None, Some("p2")),
            Tuple::new(),
        ];
        let min = minimize(tuples);
        assert_eq!(min.len(), 2);
        assert!(is_antichain(&min));
        assert!(!is_antichain(&[Tuple::new()]));
        let comparable = vec![
            st(s_no, p_no, Some("s1"), Some("p1")),
            st(s_no, p_no, Some("s1"), None),
        ];
        assert!(!is_antichain(&comparable));
    }

    #[test]
    fn from_iterator_collects() {
        let (_u, s_no, p_no) = setup();
        let x: XRelation = vec![
            st(s_no, p_no, Some("s1"), Some("p1")),
            st(s_no, p_no, Some("s1"), None),
        ]
        .into_iter()
        .collect();
        assert_eq!(x.len(), 1);
    }

    #[test]
    fn display_mentions_cardinality() {
        let (_u, s_no, p_no) = setup();
        let x = XRelation::from_tuples([st(s_no, p_no, Some("s1"), None)]);
        assert_eq!(x.to_string(), "XRelation[1 tuples]");
    }

    #[test]
    fn to_index_answers_subsumption_queries() {
        let (_u, s_no, p_no) = setup();
        let x = XRelation::from_tuples([
            st(s_no, p_no, Some("s1"), Some("p1")),
            st(s_no, p_no, Some("s2"), None),
        ]);
        let index = x.to_index();
        assert!(index.x_contains(&st(s_no, p_no, Some("s1"), None)));
        assert!(!index.x_contains(&st(s_no, p_no, Some("s9"), None)));
        assert_eq!(index.len(), x.len());
    }

    #[test]
    fn x_relation_with_only_null_tuple_equals_empty() {
        let x = XRelation::from_tuples([Tuple::new()]);
        assert_eq!(x, XRelation::empty());
    }
}
