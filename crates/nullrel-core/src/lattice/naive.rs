//! Reference implementations of the lattice operations — direct
//! transcriptions of the paper's formulas (4.6)–(4.8).
//!
//! These run in `O(|R₁| · |R₂|)` tuple comparisons (`O(|R₁| + |R₂|)` tuples
//! examined for union, as the paper notes, but minimisation of the result is
//! quadratic). They serve as the executable specification against which the
//! hash-accelerated versions in [`super::hashed`] are property-tested, and as
//! the baseline of benchmark **E9**.

use crate::tuple::Tuple;
use crate::xrel::{minimize, XRelation};

/// Union per (4.6): concatenate the representations and reduce to minimal
/// form.
pub fn union(a: &XRelation, b: &XRelation) -> XRelation {
    let mut tuples: Vec<Tuple> = Vec::with_capacity(a.len() + b.len());
    tuples.extend(a.tuples().iter().cloned());
    tuples.extend(b.tuples().iter().cloned());
    XRelation::from_tuples(tuples)
}

/// X-intersection per (4.7): all pairwise meets, reduced to minimal form.
pub fn x_intersection(a: &XRelation, b: &XRelation) -> XRelation {
    let mut meets: Vec<Tuple> = Vec::with_capacity(a.len() * b.len());
    for r1 in a.tuples() {
        for r2 in b.tuples() {
            let m = r1.meet(r2);
            if !m.is_null_tuple() {
                meets.push(m);
            }
        }
    }
    XRelation::from_tuples(meets)
}

/// Difference per (4.8): keep the tuples of `a` that no tuple of `b`
/// dominates. Because `a` is already minimal, the survivors form a minimal
/// representation (a subset of a minimal representation is minimal).
pub fn difference(a: &XRelation, b: &XRelation) -> XRelation {
    let survivors: Vec<Tuple> = a
        .tuples()
        .iter()
        .filter(|r| !b.tuples().iter().any(|t| t.more_informative_than(r)))
        .cloned()
        .collect();
    XRelation::from_minimal_unchecked(survivors)
}

/// Subsumption check `a ⊒ b` by pairwise scan (Definition 4.1 / 4.4).
pub fn contains(a: &XRelation, b: &XRelation) -> bool {
    b.tuples()
        .iter()
        .all(|t| a.tuples().iter().any(|r| r.more_informative_than(t)))
}

/// Reduction to minimal form by pairwise comparison (Definition 4.6).
pub fn minimal(tuples: Vec<Tuple>) -> Vec<Tuple> {
    minimize(tuples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::{AttrId, Universe};
    use crate::value::Value;

    fn setup() -> (Universe, AttrId, AttrId) {
        let mut u = Universe::new();
        let s = u.intern("S#");
        let p = u.intern("P#");
        (u, s, p)
    }

    fn sp(s_attr: AttrId, p_attr: AttrId, s: Option<&str>, p: Option<&str>) -> Tuple {
        Tuple::new()
            .with_opt(s_attr, s.map(Value::str))
            .with_opt(p_attr, p.map(Value::str))
    }

    fn ps_prime(s_attr: AttrId, p_attr: AttrId) -> XRelation {
        XRelation::from_tuples([
            sp(s_attr, p_attr, Some("s1"), None),
            sp(s_attr, p_attr, Some("s2"), Some("p1")),
        ])
    }

    fn ps_double(s_attr: AttrId, p_attr: AttrId) -> XRelation {
        XRelation::from_tuples([
            sp(s_attr, p_attr, Some("s1"), None),
            sp(s_attr, p_attr, Some("s2"), Some("p1")),
            sp(s_attr, p_attr, Some("s2"), Some("p2")),
        ])
    }

    /// Section 1: under the x-relation semantics, the set algebraic laws that
    /// fail in Codd's three-valued treatment hold as plain facts.
    #[test]
    fn section1_laws_hold_for_x_relations() {
        let (_u, s, p) = setup();
        let ps1 = ps_prime(s, p);
        let ps2 = ps_double(s, p);
        assert!(contains(&union(&ps1, &ps2), &ps1), "PS′ ∪ PS″ ⊒ PS′");
        assert!(
            contains(&ps1, &x_intersection(&ps1, &ps2)),
            "PS′ ∩̂ PS″ ⊑ PS′"
        );
        assert!(contains(&ps2, &ps1) && !contains(&ps1, &ps2), "PS″ ⊐ PS′");
        assert_eq!(ps1, ps1.clone(), "PS′ = PS′");
        assert_ne!(ps1, ps2, "PS′ ≠ PS″");
    }

    #[test]
    fn union_is_commutative_associative_idempotent() {
        let (_u, s, p) = setup();
        let a = ps_prime(s, p);
        let b = ps_double(s, p);
        let c = XRelation::from_tuples([sp(s, p, Some("s3"), Some("p3"))]);
        assert_eq!(union(&a, &b), union(&b, &a));
        assert_eq!(union(&union(&a, &b), &c), union(&a, &union(&b, &c)));
        assert_eq!(union(&a, &a), a);
    }

    #[test]
    fn x_intersection_is_commutative_associative_idempotent() {
        let (_u, s, p) = setup();
        let a = ps_prime(s, p);
        let b = ps_double(s, p);
        let c = XRelation::from_tuples([sp(s, p, Some("s2"), None)]);
        assert_eq!(x_intersection(&a, &b), x_intersection(&b, &a));
        assert_eq!(
            x_intersection(&x_intersection(&a, &b), &c),
            x_intersection(&a, &x_intersection(&b, &c))
        );
        assert_eq!(x_intersection(&a, &a), a);
    }

    #[test]
    fn difference_prop_4_6() {
        // (R1 − R2) ∪ R2 = R1 whenever R1 ⊒ R2.
        let (_u, s, p) = setup();
        let r1 = ps_double(s, p);
        let r2 = ps_prime(s, p);
        assert!(contains(&r1, &r2));
        assert_eq!(union(&difference(&r1, &r2), &r2), r1);
    }

    #[test]
    fn difference_prop_4_7() {
        // If R ∪ R2 = R1 then R ⊒ R1 − R2: the difference is the smallest
        // x-relation whose union with R2 restores R1.
        let (_u, s, p) = setup();
        let r2 = ps_prime(s, p);
        let r1 = ps_double(s, p);
        let r = XRelation::from_tuples([sp(s, p, Some("s2"), Some("p2"))]);
        assert_eq!(union(&r, &r2), r1);
        assert!(contains(&r, &difference(&r1, &r2)));
    }

    #[test]
    fn difference_with_self_is_empty() {
        let (_u, s, p) = setup();
        let r = ps_double(s, p);
        assert!(difference(&r, &r).is_empty());
    }

    #[test]
    fn difference_keeps_tuples_not_dominated() {
        let (_u, s, p) = setup();
        let r1 = ps_double(s, p);
        let r2 = XRelation::from_tuples([sp(s, p, Some("s2"), Some("p1"))]);
        let d = difference(&r1, &r2);
        // (s2,p1) removed; (s1,−) kept (nothing in r2 dominates it);
        // (s2,p2) kept.
        assert_eq!(d.len(), 2);
        assert!(d.x_contains(&sp(s, p, Some("s1"), None)));
        assert!(d.x_contains(&sp(s, p, Some("s2"), Some("p2"))));
        assert!(!d.x_contains(&sp(s, p, Some("s2"), Some("p1"))));
    }

    #[test]
    fn x_intersection_of_disjoint_total_relations_keeps_common_projection() {
        let (_u, s, p) = setup();
        let r1 = XRelation::from_tuples([sp(s, p, Some("s1"), Some("p1"))]);
        let r2 = XRelation::from_tuples([sp(s, p, Some("s1"), Some("p2"))]);
        let meet = x_intersection(&r1, &r2);
        assert_eq!(meet.len(), 1);
        assert!(meet.x_contains(&sp(s, p, Some("s1"), None)));
    }

    #[test]
    fn distributivity_4_4_and_4_5() {
        let (_u, s, p) = setup();
        let r1 = XRelation::from_tuples([sp(s, p, Some("s1"), Some("p1"))]);
        let r2 =
            XRelation::from_tuples([sp(s, p, Some("s1"), Some("p2")), sp(s, p, Some("s2"), None)]);
        let r3 =
            XRelation::from_tuples([sp(s, p, None, Some("p1")), sp(s, p, Some("s3"), Some("p3"))]);
        let lhs = x_intersection(&r1, &union(&r2, &r3));
        let rhs = union(&x_intersection(&r1, &r2), &x_intersection(&r1, &r3));
        assert_eq!(lhs, rhs);
        let lhs2 = union(&r1, &x_intersection(&r2, &r3));
        let rhs2 = x_intersection(&union(&r1, &r2), &union(&r1, &r3));
        assert_eq!(lhs2, rhs2);
    }

    #[test]
    fn union_scope_and_intersection_scope_follow_the_paper() {
        // "the scope of a union is the union of the scopes of its operands;
        // the scope of an x-intersection is not larger than the intersection
        // of the scopes of its operands".
        let (mut u, s, p) = setup();
        let q = u.intern("QTY");
        let r1 = XRelation::from_tuples([sp(s, p, Some("s1"), Some("p1"))]);
        let r2 = XRelation::from_tuples([Tuple::new()
            .with(s, Value::str("s1"))
            .with(q, Value::int(10))]);
        let un = union(&r1, &r2);
        let mut expected = r1.scope();
        expected.extend(r2.scope());
        assert_eq!(un.scope(), expected);

        let meet = x_intersection(&r1, &r2);
        let inter: std::collections::BTreeSet<_> =
            r1.scope().intersection(&r2.scope()).copied().collect();
        assert!(meet.scope().is_subset(&inter));
    }
}
