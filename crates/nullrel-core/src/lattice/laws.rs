//! Executable statements of the lattice laws proved or asserted in the paper
//! (Propositions 4.1, 4.3–4.7, distributivity (4.4)/(4.5), and the
//! Brouwerian-lattice facts of Section 7).
//!
//! Each function returns `true` when the law holds for the supplied operands.
//! They are used by unit tests, by the `tests/lattice_laws.rs` property suite
//! (driven by proptest-generated x-relations), and by the lattice example
//! binary. Keeping them in the library (rather than test-only code) lets
//! downstream users sanity-check their own data.

use super::{difference, union, x_intersection};
use crate::xrel::XRelation;

/// Proposition 4.1: `R̂₁ = R̂₂` iff `R̂₁ ⊒ R̂₂` and `R̂₂ ⊒ R̂₁`.
pub fn mutual_containment_is_equality(a: &XRelation, b: &XRelation) -> bool {
    (a.contains(b) && b.contains(a)) == (a == b)
}

/// Proposition 4.3 (substitution property): replacing operands by equal
/// x-relations does not change union, x-intersection, or difference. Because
/// [`XRelation`] is canonical, equality of inputs trivially gives equality of
/// outputs; this law is checked by recomputing through different
/// representations of the same class.
pub fn substitution_property(a: &XRelation, a_again: &XRelation, b: &XRelation) -> bool {
    if a != a_again {
        return true; // vacuously true: precondition not met
    }
    union(a, b) == union(a_again, b)
        && x_intersection(a, b) == x_intersection(a_again, b)
        && difference(a, b) == difference(a_again, b)
        && difference(b, a) == difference(b, a_again)
}

/// Proposition 4.4: the union is the **least** upper bound: any `R̂` that
/// contains both operands contains their union.
pub fn union_is_least_upper_bound(upper: &XRelation, a: &XRelation, b: &XRelation) -> bool {
    if upper.contains(a) && upper.contains(b) {
        upper.contains(&union(a, b))
    } else {
        true
    }
}

/// The union is an upper bound of both operands.
pub fn union_is_upper_bound(a: &XRelation, b: &XRelation) -> bool {
    let u = union(a, b);
    u.contains(a) && u.contains(b)
}

/// Proposition 4.5: the x-intersection is the **greatest** lower bound: any
/// `R̂` contained in both operands is contained in their x-intersection.
pub fn intersection_is_greatest_lower_bound(
    lower: &XRelation,
    a: &XRelation,
    b: &XRelation,
) -> bool {
    if a.contains(lower) && b.contains(lower) {
        x_intersection(a, b).contains(lower)
    } else {
        true
    }
}

/// The x-intersection is a lower bound of both operands.
pub fn intersection_is_lower_bound(a: &XRelation, b: &XRelation) -> bool {
    let m = x_intersection(a, b);
    a.contains(&m) && b.contains(&m)
}

/// Distributivity (4.4): `R̂₁ ∩̂ (R̂₂ ∪ R̂₃) = (R̂₁ ∩̂ R̂₂) ∪ (R̂₁ ∩̂ R̂₃)`.
pub fn distributive_meet_over_join(a: &XRelation, b: &XRelation, c: &XRelation) -> bool {
    x_intersection(a, &union(b, c)) == union(&x_intersection(a, b), &x_intersection(a, c))
}

/// Distributivity (4.5): `R̂₁ ∪ (R̂₂ ∩̂ R̂₃) = (R̂₁ ∪ R̂₂) ∩̂ (R̂₁ ∪ R̂₃)`.
pub fn distributive_join_over_meet(a: &XRelation, b: &XRelation, c: &XRelation) -> bool {
    union(a, &x_intersection(b, c)) == x_intersection(&union(a, b), &union(a, c))
}

/// Absorption laws, which hold in any lattice:
/// `a ∪ (a ∩̂ b) = a` and `a ∩̂ (a ∪ b) = a`.
pub fn absorption(a: &XRelation, b: &XRelation) -> bool {
    union(a, &x_intersection(a, b)) == *a && x_intersection(a, &union(a, b)) == *a
}

/// Idempotence, commutativity, and associativity of both operations.
pub fn semilattice_laws(a: &XRelation, b: &XRelation, c: &XRelation) -> bool {
    union(a, a) == *a
        && x_intersection(a, a) == *a
        && union(a, b) == union(b, a)
        && x_intersection(a, b) == x_intersection(b, a)
        && union(&union(a, b), c) == union(a, &union(b, c))
        && x_intersection(&x_intersection(a, b), c) == x_intersection(a, &x_intersection(b, c))
}

/// Proposition 4.6: for `R̂₁ ⊒ R̂₂`, `(R̂₁ − R̂₂) ∪ R̂₂ = R̂₁`.
pub fn difference_restores_under_containment(a: &XRelation, b: &XRelation) -> bool {
    if a.contains(b) {
        union(&difference(a, b), b) == *a
    } else {
        true
    }
}

/// Proposition 4.7: if `R̂ ∪ R̂₂ = R̂₁` then `R̂ ⊒ R̂₁ − R̂₂` — the difference
/// is the smallest x-relation whose union with `R̂₂` gives `R̂₁`.
pub fn difference_is_smallest_restorer(r: &XRelation, r1: &XRelation, r2: &XRelation) -> bool {
    if union(r, r2) == *r1 {
        r.contains(&difference(r1, r2))
    } else {
        true
    }
}

/// Containment is a partial order on canonical x-relations: reflexive,
/// transitive, and antisymmetric.
pub fn containment_is_partial_order(a: &XRelation, b: &XRelation, c: &XRelation) -> bool {
    let reflexive = a.contains(a);
    let transitive = !(a.contains(b) && b.contains(c)) || a.contains(c);
    let antisymmetric = !(a.contains(b) && b.contains(a)) || a == b;
    reflexive && transitive && antisymmetric
}

/// Monotonicity of the operations with respect to containment.
pub fn operations_are_monotone(a: &XRelation, a2: &XRelation, b: &XRelation) -> bool {
    if !a2.contains(a) {
        return true;
    }
    union(a2, b).contains(&union(a, b))
        && x_intersection(a2, b).contains(&x_intersection(a, b))
        && difference(a2, b).contains(&difference(a, b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Tuple;
    use crate::universe::Universe;
    use crate::value::Value;

    fn trio() -> (XRelation, XRelation, XRelation) {
        let mut u = Universe::new();
        let a = u.intern("A");
        let b = u.intern("B");
        let c = u.intern("C");
        let t = |av: Option<i64>, bv: Option<i64>, cv: Option<i64>| {
            Tuple::new()
                .with_opt(a, av.map(Value::int))
                .with_opt(b, bv.map(Value::int))
                .with_opt(c, cv.map(Value::int))
        };
        let r1 = XRelation::from_tuples([t(Some(1), Some(1), None), t(Some(2), None, Some(3))]);
        let r2 = XRelation::from_tuples([t(Some(1), None, None), t(None, Some(4), Some(5))]);
        let r3 = XRelation::from_tuples([t(Some(1), Some(1), Some(1)), t(Some(2), Some(2), None)]);
        (r1, r2, r3)
    }

    #[test]
    fn all_laws_hold_on_sample_relations() {
        let (r1, r2, r3) = trio();
        assert!(mutual_containment_is_equality(&r1, &r2));
        assert!(mutual_containment_is_equality(&r1, &r1));
        assert!(substitution_property(&r1, &r1.clone(), &r2));
        assert!(union_is_upper_bound(&r1, &r2));
        assert!(union_is_least_upper_bound(&union(&r1, &r2), &r1, &r2));
        assert!(intersection_is_lower_bound(&r1, &r2));
        assert!(intersection_is_greatest_lower_bound(
            &x_intersection(&r1, &r2),
            &r1,
            &r2
        ));
        assert!(distributive_meet_over_join(&r1, &r2, &r3));
        assert!(distributive_join_over_meet(&r1, &r2, &r3));
        assert!(absorption(&r1, &r2));
        assert!(semilattice_laws(&r1, &r2, &r3));
        assert!(difference_restores_under_containment(&union(&r1, &r2), &r1));
        assert!(difference_is_smallest_restorer(&r1, &union(&r1, &r2), &r2));
        assert!(containment_is_partial_order(&r1, &r2, &r3));
        assert!(operations_are_monotone(&r1, &union(&r1, &r3), &r2));
    }

    #[test]
    fn laws_hold_with_empty_operands() {
        let (r1, _r2, _r3) = trio();
        let empty = XRelation::empty();
        assert!(absorption(&empty, &r1));
        assert!(absorption(&r1, &empty));
        assert!(semilattice_laws(&empty, &r1, &empty));
        assert!(difference_restores_under_containment(&r1, &empty));
        assert!(union_is_upper_bound(&empty, &empty));
        assert!(intersection_is_lower_bound(&empty, &r1));
    }

    #[test]
    fn conditional_laws_are_vacuously_true_when_preconditions_fail() {
        let (r1, r2, r3) = trio();
        // r1 does not contain r2, so Proposition 4.6's precondition fails.
        assert!(!r1.contains(&r2));
        assert!(difference_restores_under_containment(&r1, &r2));
        // union(r3, r2) != r1, so Proposition 4.7's precondition fails.
        assert!(union(&r3, &r2) != r1);
        assert!(difference_is_smallest_restorer(&r3, &r1, &r2));
        // Non-equal inputs make the substitution property vacuous.
        assert!(substitution_property(&r1, &r2, &r3));
    }
}
