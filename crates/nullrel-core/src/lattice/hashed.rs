//! Hash-accelerated lattice operations using an inverted cell index.
//!
//! Section 4 observes that a simple-minded implementation of the difference
//! and x-intersection has an `O(|R₁| · |R₂|)` upper bound, and points to
//! "more sophisticated techniques, such as combinatorial hashing", both for
//! the set operations and for reducing relations to minimal form. The
//! [`TupleIndex`] here is such a technique: an inverted index from non-null
//! cells `(attribute, value)` to the tuples containing them. A tuple `t` is
//! dominated by some indexed tuple iff the intersection of the posting lists
//! of all of `t`'s cells is non-empty, which touches only tuples sharing at
//! least one cell with `t` instead of the whole relation.
//!
//! Benchmark **E9** compares these implementations against the
//! [`super::naive`] reference on synthetic workloads.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::collections::HashSet;

use crate::tuple::Tuple;
use crate::universe::AttrId;
use crate::value::Value;
use crate::xrel::XRelation;

/// An inverted index from non-null cells to the tuples that contain them.
///
/// The index also remembers the full tuple list so dominance candidates can
/// be verified and so `dominates`-style queries can answer "which tuples are
/// more informative than `t`" without rescanning the relation.
#[derive(Debug, Clone)]
pub struct TupleIndex {
    tuples: Vec<Tuple>,
    postings: HashMap<(AttrId, Value), Vec<usize>>,
}

impl TupleIndex {
    /// Builds an index over the given tuples.
    pub fn build(tuples: &[Tuple]) -> Self {
        let mut postings: HashMap<(AttrId, Value), Vec<usize>> = HashMap::new();
        for (i, t) in tuples.iter().enumerate() {
            for (attr, value) in t.cells() {
                postings.entry((attr, value.clone())).or_default().push(i);
            }
        }
        TupleIndex {
            tuples: tuples.to_vec(),
            postings,
        }
    }

    /// The number of indexed tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True if the index holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// The indexed tuples, in build order.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Returns the indices of indexed tuples that are **more informative
    /// than** `t` (i.e. dominate it, `r ≥ t`), computed as the intersection
    /// of the posting lists of `t`'s cells. For the null tuple every indexed
    /// tuple dominates it.
    pub fn dominators(&self, t: &Tuple) -> Vec<usize> {
        let mut cells = t.cells();
        let first = match cells.next() {
            // The null tuple is dominated by every tuple.
            None => return (0..self.tuples.len()).collect(),
            Some(cell) => cell,
        };
        let mut candidates: Vec<usize> = match self.postings.get(&(first.0, first.1.clone())) {
            Some(list) => list.clone(),
            None => return Vec::new(),
        };
        for (attr, value) in cells {
            if candidates.is_empty() {
                return candidates;
            }
            match self.postings.get(&(attr, value.clone())) {
                None => return Vec::new(),
                Some(list) => {
                    let set: HashSet<usize> = list.iter().copied().collect();
                    candidates.retain(|i| set.contains(i));
                }
            }
        }
        candidates
    }

    /// True if some indexed tuple is more informative than `t`
    /// (x-membership, Proposition 4.2).
    pub fn x_contains(&self, t: &Tuple) -> bool {
        !self.dominators(t).is_empty()
    }

    /// True if some indexed tuple **other than the occurrence at
    /// `excluding`** is more informative than `t`. Used during minimisation,
    /// where a tuple must not count as its own dominator.
    pub fn dominated_excluding(&self, t: &Tuple, excluding: usize) -> bool {
        self.dominators(t).into_iter().any(|i| i != excluding)
    }
}

/// Reduces tuples to minimal form using the cell index.
pub fn minimal(tuples: Vec<Tuple>) -> Vec<Tuple> {
    // Set-dedupe first so that equal tuples do not knock each other out.
    let mut seen: HashSet<Tuple> = HashSet::with_capacity(tuples.len());
    let mut deduped: Vec<Tuple> = Vec::with_capacity(tuples.len());
    for t in tuples {
        if t.is_null_tuple() {
            continue;
        }
        if seen.insert(t.clone()) {
            deduped.push(t);
        }
    }
    let index = TupleIndex::build(&deduped);
    let mut keep = Vec::with_capacity(deduped.len());
    for (i, t) in deduped.iter().enumerate() {
        if !index.dominated_excluding(t, i) {
            keep.push(t.clone());
        }
    }
    keep.sort();
    keep
}

/// Merges per-partition antichains into the single global antichain their
/// union minimises to — the reduction step of a partitioned `Minimize`.
///
/// Each input part must itself be an antichain (no null tuple, no tuple
/// dominated by another tuple *of the same part*); debug builds verify the
/// claim. Parallel runtimes produce exactly this shape: every worker
/// reduces its morsel locally, and only tuples from *different* parts can
/// still dominate one another. The merge is therefore a cross-partition
/// subsumption sweep: deduplicate across parts, build one inverted cell
/// index over the survivors, and keep every tuple with no dominator other
/// than itself.
///
/// **Correctness.** Minimisation is determined by the *set* of input
/// tuples, not by any partitioning of it: `⌈R⌉` keeps exactly the tuples of
/// `R` that no other tuple of `R` strictly dominates. A local reduction
/// can only drop tuples that are dominated by another input tuple — tuples
/// the global reduction drops as well — and domination is transitive, so
/// the local survivor that witnessed the drop either survives globally or
/// is itself dominated by a global survivor. Hence
/// `merge_antichains(partition(R)) = minimal(R)` for **every** partitioning
/// of `R`, including the trivial one (`k = 1`, where the sweep finds
/// nothing to drop). The parallel-runtime proptests exercise this equality
/// over arbitrary partitionings in both truth bands.
pub fn merge_antichains(parts: Vec<Vec<Tuple>>) -> Vec<Tuple> {
    debug_assert!(
        parts.iter().all(|p| crate::xrel::is_antichain(p)),
        "merge_antichains called with a non-antichain part"
    );
    let mut parts = parts;
    // Fast path: one part is already globally minimal.
    if parts.len() == 1 {
        let mut only = parts.pop().expect("checked length");
        only.sort();
        return only;
    }
    // Cross-part deduplication (a tuple may appear in several parts).
    let total: usize = parts.iter().map(Vec::len).sum();
    let mut seen: HashSet<Tuple> = HashSet::with_capacity(total);
    let mut deduped: Vec<Tuple> = Vec::with_capacity(total);
    for part in parts {
        for t in part {
            if seen.insert(t.clone()) {
                deduped.push(t);
            }
        }
    }
    // The cross-partition subsumption sweep proper.
    let index = TupleIndex::build(&deduped);
    let mut keep = Vec::with_capacity(deduped.len());
    for (i, t) in deduped.iter().enumerate() {
        if !index.dominated_excluding(t, i) {
            keep.push(t.clone());
        }
    }
    keep.sort();
    keep
}

/// Union per (4.6), hash-accelerated.
pub fn union(a: &XRelation, b: &XRelation) -> XRelation {
    let mut tuples: Vec<Tuple> = Vec::with_capacity(a.len() + b.len());
    tuples.extend(a.tuples().iter().cloned());
    tuples.extend(b.tuples().iter().cloned());
    XRelation::from_minimal_unchecked(minimal(tuples))
}

/// X-intersection per (4.7). The pairwise meet computation is inherently
/// `O(|R₁| · |R₂|)`, but duplicate meets are collapsed eagerly through a hash
/// set and the final minimisation uses the cell index.
pub fn x_intersection(a: &XRelation, b: &XRelation) -> XRelation {
    let mut seen: HashMap<Tuple, ()> = HashMap::new();
    for r1 in a.tuples() {
        for r2 in b.tuples() {
            let m = r1.meet(r2);
            if m.is_null_tuple() {
                continue;
            }
            if let Entry::Vacant(e) = seen.entry(m) {
                e.insert(());
            }
        }
    }
    let meets: Vec<Tuple> = seen.into_keys().collect();
    XRelation::from_minimal_unchecked(minimal(meets))
}

/// Difference per (4.8), using an index over the subtrahend.
pub fn difference(a: &XRelation, b: &XRelation) -> XRelation {
    let index = TupleIndex::build(b.tuples());
    let survivors: Vec<Tuple> = a
        .tuples()
        .iter()
        .filter(|r| !index.x_contains(r))
        .cloned()
        .collect();
    XRelation::from_minimal_unchecked(survivors)
}

/// Containment `a ⊒ b` using an index over the container.
pub fn contains(a: &XRelation, b: &XRelation) -> bool {
    let index = TupleIndex::build(a.tuples());
    b.tuples().iter().all(|t| index.x_contains(t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::naive;
    use crate::universe::{AttrId, Universe};
    use crate::value::Value;

    fn setup() -> (Universe, AttrId, AttrId, AttrId) {
        let mut u = Universe::new();
        let s = u.intern("S#");
        let p = u.intern("P#");
        let q = u.intern("QTY");
        (u, s, p, q)
    }

    fn sp(s_attr: AttrId, p_attr: AttrId, s: Option<&str>, p: Option<&str>) -> Tuple {
        Tuple::new()
            .with_opt(s_attr, s.map(Value::str))
            .with_opt(p_attr, p.map(Value::str))
    }

    #[test]
    fn index_finds_dominators() {
        let (_u, s, p, _q) = setup();
        let tuples = vec![
            sp(s, p, Some("s1"), Some("p1")),
            sp(s, p, Some("s2"), Some("p1")),
            sp(s, p, Some("s1"), None),
        ];
        let index = TupleIndex::build(&tuples);
        assert_eq!(index.len(), 3);
        assert!(!index.is_empty());
        // (s1, −) is dominated by tuple 0 and by itself (tuple 2).
        let doms = index.dominators(&sp(s, p, Some("s1"), None));
        assert_eq!(doms.len(), 2);
        // (−, p1) is dominated by tuples 0 and 1.
        assert_eq!(index.dominators(&sp(s, p, None, Some("p1"))).len(), 2);
        // (s3, −) has no dominator.
        assert!(index.dominators(&sp(s, p, Some("s3"), None)).is_empty());
        // The null tuple is dominated by everything.
        assert_eq!(index.dominators(&Tuple::new()).len(), 3);
        // x_contains mirrors dominators.
        assert!(index.x_contains(&sp(s, p, None, Some("p1"))));
        assert!(!index.x_contains(&sp(s, p, Some("s9"), None)));
    }

    #[test]
    fn dominated_excluding_ignores_self() {
        let (_u, s, p, _q) = setup();
        let tuples = vec![sp(s, p, Some("s1"), None), sp(s, p, Some("s2"), Some("p2"))];
        let index = TupleIndex::build(&tuples);
        assert!(!index.dominated_excluding(&tuples[0], 0));
        assert!(index.dominated_excluding(&sp(s, p, Some("s2"), None), 5));
    }

    #[test]
    fn hashed_minimal_matches_naive() {
        let (_u, s, p, q) = setup();
        let tuples = vec![
            sp(s, p, Some("s1"), Some("p1")),
            sp(s, p, Some("s1"), None),
            sp(s, p, None, Some("p1")),
            sp(s, p, Some("s2"), None),
            Tuple::new(),
            Tuple::new().with(q, Value::int(5)),
            sp(s, p, Some("s1"), Some("p1")).with(q, Value::int(5)),
        ];
        let mut a = minimal(tuples.clone());
        let mut b = naive::minimal(tuples);
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn hashed_ops_match_naive_on_ps_example() {
        let (_u, s, p, _q) = setup();
        let ps1 =
            XRelation::from_tuples([sp(s, p, Some("s1"), None), sp(s, p, Some("s2"), Some("p1"))]);
        let ps2 = XRelation::from_tuples([
            sp(s, p, Some("s1"), None),
            sp(s, p, Some("s2"), Some("p1")),
            sp(s, p, Some("s2"), Some("p2")),
        ]);
        assert_eq!(union(&ps1, &ps2), naive::union(&ps1, &ps2));
        assert_eq!(
            x_intersection(&ps1, &ps2),
            naive::x_intersection(&ps1, &ps2)
        );
        assert_eq!(difference(&ps2, &ps1), naive::difference(&ps2, &ps1));
        assert_eq!(difference(&ps1, &ps2), naive::difference(&ps1, &ps2));
        assert_eq!(contains(&ps2, &ps1), naive::contains(&ps2, &ps1));
        assert_eq!(contains(&ps1, &ps2), naive::contains(&ps1, &ps2));
    }

    #[test]
    fn merge_antichains_equals_serial_minimal() {
        let (_u, s, p, q) = setup();
        let tuples = vec![
            sp(s, p, Some("s1"), Some("p1")),
            sp(s, p, Some("s1"), None),
            sp(s, p, None, Some("p1")),
            sp(s, p, Some("s2"), None),
            Tuple::new().with(q, Value::int(5)),
            sp(s, p, Some("s1"), Some("p1")).with(q, Value::int(5)),
            sp(s, p, Some("s3"), Some("p2")),
        ];
        let serial = minimal(tuples.clone());
        // Every contiguous 2-way split, locally reduced then merged.
        for cut in 0..=tuples.len() {
            let parts = vec![
                minimal(tuples[..cut].to_vec()),
                minimal(tuples[cut..].to_vec()),
            ];
            assert_eq!(merge_antichains(parts), serial, "cut at {cut}");
        }
        // Round-robin k-way splits.
        for k in 1..=4 {
            let mut parts: Vec<Vec<Tuple>> = vec![Vec::new(); k];
            for (i, t) in tuples.iter().enumerate() {
                parts[i % k].push(t.clone());
            }
            let parts: Vec<Vec<Tuple>> = parts.into_iter().map(minimal).collect();
            assert_eq!(merge_antichains(parts), serial, "{k}-way split");
        }
    }

    #[test]
    fn merge_antichains_collapses_cross_part_duplicates_and_domination() {
        let (_u, s, p, _q) = setup();
        let dominating = sp(s, p, Some("s1"), Some("p1"));
        let dominated = sp(s, p, Some("s1"), None);
        // Each part is an antichain on its own; only the merge can see that
        // part 1's tuple subsumes part 0's, and that the duplicate in part 2
        // must collapse.
        let merged = merge_antichains(vec![
            vec![dominated.clone()],
            vec![dominating.clone()],
            vec![dominating.clone()],
        ]);
        assert_eq!(merged, vec![dominating]);
        // Degenerate shapes.
        assert_eq!(merge_antichains(Vec::new()), Vec::<Tuple>::new());
        assert_eq!(
            merge_antichains(vec![vec![dominated.clone()]]),
            vec![dominated]
        );
    }

    #[test]
    fn duplicate_tuples_survive_minimisation_once() {
        let (_u, s, p, _q) = setup();
        let t = sp(s, p, Some("s1"), Some("p1"));
        let min = minimal(vec![t.clone(), t.clone(), t.clone()]);
        assert_eq!(min.len(), 1);
    }

    #[test]
    fn difference_against_empty_is_identity() {
        let (_u, s, p, _q) = setup();
        let r = XRelation::from_tuples([sp(s, p, Some("s1"), None)]);
        assert_eq!(difference(&r, &XRelation::empty()), r);
        assert!(difference(&XRelation::empty(), &r).is_empty());
    }

    #[test]
    fn contains_on_empty_relations() {
        let (_u, s, p, _q) = setup();
        let r = XRelation::from_tuples([sp(s, p, Some("s1"), None)]);
        assert!(contains(&r, &XRelation::empty()));
        assert!(!contains(&XRelation::empty(), &r));
        assert!(contains(&XRelation::empty(), &XRelation::empty()));
    }
}
