//! The lattice of x-relations: union, x-intersection, difference, `TOP_U`,
//! and pseudo-complement.
//!
//! Section 4 defines the generalised set operations (4.1)–(4.3) and derives
//! the implementable forms (4.6)–(4.8):
//!
//! * union — `R̂₁ ∪ R̂₂ = ⌈r | r ∈ R₁ or r ∈ R₂⌉` (4.6),
//! * x-intersection — `R̂₁ ∩̂ R̂₂ = ⌈r₁ ∧ r₂ | r₁ ∈ R₁, r₂ ∈ R₂⌉` (4.7),
//! * difference — `R̂₁ − R̂₂ = ⌈r | r ∈ R₁ and ∀t ∈ R₂ ¬(t ≥ r)⌉` (4.8).
//!
//! Union and x-intersection are the least upper bound and greatest lower
//! bound of the containment ordering `⊒` (Propositions 4.4/4.5); the result
//! is a distributive, pseudo-complemented (Brouwerian) lattice with bottom
//! `∅̂` and top `TOP_U = DOM(A₁) × ⋯ × DOM(Aₚ)` (Section 7). The
//! pseudo-complement is `R* = TOP_U − R̂` (7.1).
//!
//! Each operation has two implementations: the quadratic reference one in
//! [`naive`] (a direct transcription of the paper's definitions) and a
//! hash-accelerated one in [`hashed`] using an inverted cell index (the
//! "combinatorial hashing" the paper points to for efficiency). The free
//! functions in this module dispatch to the hashed implementations, which
//! are the production defaults; experiment **E9** benchmarks both.

pub mod hashed;
pub mod laws;
pub mod naive;

use crate::error::{CoreError, CoreResult};
use crate::tuple::Tuple;
use crate::universe::{AttrSet, Universe};
use crate::xrel::XRelation;

/// Default cap on the number of tuples that [`top`] (and therefore
/// [`pseudo_complement`]) may enumerate.
pub const DEFAULT_TOP_LIMIT: u128 = 1_000_000;

/// Union of two x-relations (4.6). Least upper bound of `⊒`.
pub fn union(a: &XRelation, b: &XRelation) -> XRelation {
    hashed::union(a, b)
}

/// X-intersection of two x-relations (4.7). Greatest lower bound of `⊒`.
pub fn x_intersection(a: &XRelation, b: &XRelation) -> XRelation {
    hashed::x_intersection(a, b)
}

/// Difference of two x-relations (4.8).
pub fn difference(a: &XRelation, b: &XRelation) -> XRelation {
    hashed::difference(a, b)
}

/// Merges per-partition antichains into the global antichain their union
/// minimises to (see [`hashed::merge_antichains`]) — the reduction step a
/// partitioned `Minimize` sink needs.
pub fn merge_antichains(parts: Vec<Vec<Tuple>>) -> Vec<Tuple> {
    hashed::merge_antichains(parts)
}

/// `TOP_U` restricted to an attribute set: the Cartesian product of the
/// attributes' domains (Section 4). Every domain must be finitely
/// enumerable, and the total cardinality must not exceed `limit`.
pub fn top(universe: &Universe, attrs: &AttrSet, limit: u128) -> CoreResult<XRelation> {
    let mut columns: Vec<(crate::universe::AttrId, Vec<crate::value::Value>)> =
        Vec::with_capacity(attrs.len());
    let mut cardinality: u128 = 1;
    for attr in attrs {
        let values = universe.enumerable_domain(*attr)?;
        cardinality = cardinality.saturating_mul(values.len() as u128);
        if cardinality > limit {
            return Err(CoreError::DomainTooLarge {
                required: cardinality,
                limit,
            });
        }
        columns.push((*attr, values));
    }
    // An empty attribute set gives the x-relation containing only the null
    // tuple, which minimises to the empty x-relation.
    let mut tuples: Vec<Tuple> = vec![Tuple::new()];
    for (attr, values) in &columns {
        if values.is_empty() {
            return Ok(XRelation::empty());
        }
        let mut next = Vec::with_capacity(tuples.len() * values.len());
        for t in &tuples {
            for v in values {
                next.push(t.clone().with(*attr, v.clone()));
            }
        }
        tuples = next;
    }
    Ok(XRelation::from_tuples(tuples))
}

/// The pseudo-complement `R* = TOP_U − R̂` (7.1), computed over the given
/// attribute set (normally the universe of discourse `U`).
///
/// `R*` is the *largest* x-relation whose x-intersection with `R̂` is empty
/// only in the Boolean sub-lattice of total relations; in general it is the
/// smallest x-relation whose union with `R̂` yields `TOP_U` (the paper's
/// dual-Brouwerian reading, footnote 10).
pub fn pseudo_complement(
    rel: &XRelation,
    universe: &Universe,
    attrs: &AttrSet,
    limit: u128,
) -> CoreResult<XRelation> {
    let top = top(universe, attrs, limit)?;
    Ok(difference(&top, rel))
}

/// The bottom element `∅̂` of the lattice.
pub fn bottom() -> XRelation {
    XRelation::empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::{attr_set, Domain};
    use crate::value::Value;

    fn two_attr_universe() -> (Universe, crate::universe::AttrId, crate::universe::AttrId) {
        let mut u = Universe::new();
        let a = u.intern_with_domain("A", Domain::Enumerated(vec![Value::str("a1")]));
        let b = u.intern_with_domain(
            "B",
            Domain::Enumerated(vec![Value::str("b1"), Value::str("b2")]),
        );
        (u, a, b)
    }

    #[test]
    fn top_enumerates_domain_product() {
        let (u, a, b) = two_attr_universe();
        let top = top(&u, &attr_set([a, b]), DEFAULT_TOP_LIMIT).unwrap();
        assert_eq!(top.len(), 2, "1 × 2 domain values");
        assert!(top.is_total());
    }

    #[test]
    fn top_respects_limit() {
        let (u, a, b) = two_attr_universe();
        let err = top(&u, &attr_set([a, b]), 1).unwrap_err();
        assert!(matches!(err, CoreError::DomainTooLarge { .. }));
    }

    #[test]
    fn top_of_empty_attr_set_is_bottom() {
        let (u, ..) = two_attr_universe();
        let t = top(&u, &AttrSet::new(), DEFAULT_TOP_LIMIT).unwrap();
        assert!(t.is_empty());
    }

    #[test]
    fn top_requires_enumerable_domains() {
        let mut u = Universe::new();
        let a = u.intern("FREE");
        let err = top(&u, &attr_set([a]), DEFAULT_TOP_LIMIT).unwrap_err();
        assert!(matches!(err, CoreError::DomainNotEnumerable(_)));
    }

    #[test]
    fn top_with_empty_domain_is_empty() {
        let mut u = Universe::new();
        let a = u.intern_with_domain("A", Domain::Enumerated(vec![]));
        let t = top(&u, &attr_set([a]), DEFAULT_TOP_LIMIT).unwrap();
        assert!(t.is_empty());
    }

    /// Section 7's closing example: two singleton relations on U = {A, B}
    /// whose ordinary set intersection is empty but whose x-intersection
    /// x-contains the tuple (a, −).
    #[test]
    fn section7_x_intersection_example() {
        let (_u, a, b) = two_attr_universe();
        let r1 = XRelation::from_tuples([Tuple::new()
            .with(a, Value::str("a1"))
            .with(b, Value::str("b1"))]);
        let r2 = XRelation::from_tuples([Tuple::new()
            .with(a, Value::str("a1"))
            .with(b, Value::str("b2"))]);
        let meet = x_intersection(&r1, &r2);
        let witness = Tuple::new().with(a, Value::str("a1"));
        assert!(meet.x_contains(&witness));
        assert_eq!(meet.len(), 1);
        // The ordinary set intersection of the representations is empty.
        assert!(r1.tuples().iter().all(|t| !r2.tuples().contains(t)));
    }

    /// Section 4's counterexample: x-relations do not have complements in
    /// general. With DOM(A) = {a1}, DOM(B) = {b1, b2}, any R' whose union
    /// with R is TOP must share the tuple (a1, −) with R in the
    /// x-intersection.
    #[test]
    fn section4_no_complement_counterexample() {
        let (u, a, b) = two_attr_universe();
        let r = XRelation::from_tuples([Tuple::new()
            .with(a, Value::str("a1"))
            .with(b, Value::str("b1"))]);
        let top = top(&u, &attr_set([a, b]), DEFAULT_TOP_LIMIT).unwrap();
        // Candidate complements: every sub-x-relation of TOP whose union with
        // r gives TOP. The only way to cover (a1, b2) is to include it; then
        // the x-intersection with r contains (a1, −), hence is non-empty.
        let r2 = XRelation::from_tuples([Tuple::new()
            .with(a, Value::str("a1"))
            .with(b, Value::str("b2"))]);
        assert_eq!(union(&r, &r2), top);
        assert!(!x_intersection(&r, &r2).is_empty());
    }

    #[test]
    fn pseudo_complement_union_gives_top() {
        let (u, a, b) = two_attr_universe();
        let r = XRelation::from_tuples([Tuple::new()
            .with(a, Value::str("a1"))
            .with(b, Value::str("b1"))]);
        let attrs = attr_set([a, b]);
        let star = pseudo_complement(&r, &u, &attrs, DEFAULT_TOP_LIMIT).unwrap();
        let top = top(&u, &attrs, DEFAULT_TOP_LIMIT).unwrap();
        assert_eq!(union(&r, &star), top);
        // R* is total (the pseudo-complements form the Boolean sub-lattice of
        // U-total x-relations).
        assert!(star.is_total());
    }

    #[test]
    fn bottom_is_neutral_for_union_and_absorbing_for_intersection() {
        let (_u, a, b) = two_attr_universe();
        let r = XRelation::from_tuples([Tuple::new()
            .with(a, Value::str("a1"))
            .with(b, Value::str("b1"))]);
        assert_eq!(union(&r, &bottom()), r);
        assert_eq!(x_intersection(&r, &bottom()), bottom());
    }
}
