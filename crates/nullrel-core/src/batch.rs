//! Morsel-sized column batches: the vectorized execution representation.
//!
//! A [`ColumnBatch`] holds a horizontal slice of an x-relation in columnar
//! form — one typed value vector per attribute plus a [`Bitmap`] marking
//! the `ni` cells of each column, and a batch-level maybe bitmap marking
//! the rows whose qualification evaluated to `ni` (the MAYBE band of
//! Section 5). Batch-at-a-time engines gather only the columns a kernel
//! needs (late materialization), run tight per-column loops, and carry row
//! identity through **selection vectors** instead of copying tuples.
//!
//! Three kernel families live here:
//!
//! * **filtering** — [`ColumnBatch::eval_predicate`] evaluates a
//!   [`Predicate`] column-at-a-time under the three-valued `ni` semantics
//!   of Table III, and [`Selection::from_truths`] turns the truth vector
//!   into a selection vector plus the maybe bitmap;
//! * **key normalization** — [`normalized`] folds `Float` values with
//!   integral payloads onto `Int` in one tight loop, the domain-aware
//!   equality the engine's joins use (`Int(2)` joins `Float(2.0)`);
//! * **hash computation** — [`ColumnBatch::key_hashes`] and the
//!   tuple-slice convenience [`key_hashes`] hash normalized key columns
//!   row-at-a-time without materializing per-row key vectors; a row with
//!   any `ni` key cell hashes to `None` (it can never equi-join).
//!
//! The batch is a *view for kernels*, not a storage format: scans gather
//! from stored [`Tuple`]s, and surviving rows are re-materialized as
//! tuples only at batch exit.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use crate::error::CoreResult;
use crate::predicate::{Operand, Predicate};
use crate::tuple::Tuple;
use crate::tvl::{compare_cells, Truth};
use crate::universe::AttrId;
use crate::value::Value;

/// A fixed-length bit vector; bit `i` describes row `i` of a batch.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// An all-zero bitmap over `len` rows.
    pub fn new(len: usize) -> Self {
        Bitmap {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// The number of rows the bitmap describes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the bitmap describes zero rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets bit `i`.
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Reads bit `i`.
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// The number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }
}

/// One gathered column: values plus the `ni` bitmap. The value at an `ni`
/// position is an arbitrary placeholder and must never be read — kernels
/// consult the bitmap first.
#[derive(Debug, Clone)]
pub struct ColumnData {
    values: Vec<Value>,
    ni: Bitmap,
}

impl ColumnData {
    /// The cell at row `i` as the engine sees it: `None` for `ni`.
    pub fn cell(&self, i: usize) -> Option<&Value> {
        if self.ni.get(i) {
            None
        } else {
            Some(&self.values[i])
        }
    }

    /// The column's `ni` bitmap.
    pub fn ni(&self) -> &Bitmap {
        &self.ni
    }
}

/// The normalized form of a value for key comparison and hashing: `Float`
/// with an integral payload folds onto `Int` (the whole exact-`i64` range),
/// everything else hashes as itself. Borrowing twin of
/// [`Value::join_key`] — no `String` is ever cloned.
pub fn normalized(value: &Value) -> NormalizedRef<'_> {
    if let Value::Float(f) = value {
        let x = f.get();
        if x.fract() == 0.0 && (i64::MIN as f64..=i64::MAX as f64).contains(&x) {
            return NormalizedRef::Int(x as i64);
        }
    }
    NormalizedRef::Other(value)
}

/// A normalized key cell: either a folded integer or a borrowed value.
/// Hashes exactly like the [`Value`] the normalization denotes, so
/// `Int(2)` and `Float(2.0)` collide by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NormalizedRef<'a> {
    /// A `Float` folded onto its integral payload (or a genuine `Int`).
    Int(i64),
    /// Any other value, borrowed.
    Other(&'a Value),
}

impl Hash for NormalizedRef<'_> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            NormalizedRef::Int(i) => Value::Int(*i).hash(state),
            NormalizedRef::Other(v) => v.hash(state),
        }
    }
}

/// A morsel-sized columnar slice: the gathered columns of a row range.
#[derive(Debug, Clone, Default)]
pub struct ColumnBatch {
    attrs: Vec<AttrId>,
    columns: Vec<ColumnData>,
    len: usize,
}

impl ColumnBatch {
    /// Gathers the named columns out of a tuple slice. Each entry of
    /// `attrs` is `(batch_attr, source_attr)` — the batch labels the
    /// column `batch_attr` while reading the stored cell `source_attr`,
    /// which folds an attribute rename into the gather at zero per-row
    /// cost.
    pub fn gather(rows: &[Tuple], attrs: &[(AttrId, AttrId)]) -> ColumnBatch {
        let len = rows.len();
        let mut columns = Vec::with_capacity(attrs.len());
        for &(_, src) in attrs {
            let mut values = Vec::with_capacity(len);
            let mut ni = Bitmap::new(len);
            for (i, row) in rows.iter().enumerate() {
                match row.get(src) {
                    Some(v) => values.push(v.clone()),
                    None => {
                        ni.set(i);
                        values.push(Value::Int(0));
                    }
                }
            }
            columns.push(ColumnData { values, ni });
        }
        ColumnBatch {
            attrs: attrs.iter().map(|&(out, _)| out).collect(),
            columns,
            len,
        }
    }

    /// Like [`ColumnBatch::gather`], but over a **selection vector**: only
    /// the rows at `positions` are materialised, in selection order. This
    /// is how conjunct-wise filtering skips work — once a conjunct has
    /// rejected a row, later conjuncts never gather or compare its cells.
    pub fn gather_at(rows: &[Tuple], positions: &[u32], attrs: &[(AttrId, AttrId)]) -> ColumnBatch {
        let len = positions.len();
        let mut columns = Vec::with_capacity(attrs.len());
        for &(_, src) in attrs {
            let mut values = Vec::with_capacity(len);
            let mut ni = Bitmap::new(len);
            for (i, &pos) in positions.iter().enumerate() {
                match rows[pos as usize].get(src) {
                    Some(v) => values.push(v.clone()),
                    None => {
                        ni.set(i);
                        values.push(Value::Int(0));
                    }
                }
            }
            columns.push(ColumnData { values, ni });
        }
        ColumnBatch {
            attrs: attrs.iter().map(|&(out, _)| out).collect(),
            columns,
            len,
        }
    }

    /// The number of rows in the batch.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the batch holds zero rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The gathered column labelled `attr`, if present.
    pub fn column(&self, attr: AttrId) -> Option<&ColumnData> {
        self.attrs
            .iter()
            .position(|a| *a == attr)
            .map(|i| &self.columns[i])
    }

    /// Evaluates a predicate column-at-a-time: one [`Truth`] per row,
    /// exactly [`Predicate::eval`]'s Table III semantics. An attribute the
    /// batch did not gather reads as `ni` for every row (the tuple-level
    /// evaluator's behaviour for an absent cell).
    pub fn eval_predicate(&self, predicate: &Predicate) -> CoreResult<Vec<Truth>> {
        match predicate {
            Predicate::Cmp(cmp) => {
                let left = self.operand_column(&cmp.left);
                let right = self.operand_column(&cmp.right);
                let mut out = Vec::with_capacity(self.len);
                for i in 0..self.len {
                    out.push(compare_cells(left.cell(i), cmp.op, right.cell(i))?);
                }
                Ok(out)
            }
            Predicate::And(a, b) => {
                let mut av = self.eval_predicate(a)?;
                let bv = self.eval_predicate(b)?;
                for (x, y) in av.iter_mut().zip(bv) {
                    *x = x.and(y);
                }
                Ok(av)
            }
            Predicate::Or(a, b) => {
                let mut av = self.eval_predicate(a)?;
                let bv = self.eval_predicate(b)?;
                for (x, y) in av.iter_mut().zip(bv) {
                    *x = x.or(y);
                }
                Ok(av)
            }
            Predicate::Not(p) => {
                let mut v = self.eval_predicate(p)?;
                for x in v.iter_mut() {
                    *x = x.not();
                }
                Ok(v)
            }
            Predicate::Literal(t) => Ok(vec![*t; self.len]),
        }
    }

    fn operand_column<'a>(&'a self, operand: &'a Operand) -> OperandColumn<'a> {
        match operand {
            Operand::Attr(a) => match self.column(*a) {
                Some(col) => OperandColumn::Column(col),
                None => OperandColumn::AllNi,
            },
            Operand::Const(v) => OperandColumn::Const(v),
        }
    }

    /// The normalized hash of each row over *all* of the batch's columns
    /// (gather the key columns and nothing else). `None` marks a row with
    /// an `ni` key cell — such a row can never participate in an equality
    /// join, so it has no meaningful hash.
    pub fn key_hashes(&self) -> Vec<Option<u64>> {
        let mut out = Vec::with_capacity(self.len);
        'rows: for i in 0..self.len {
            let mut hasher = DefaultHasher::new();
            for col in &self.columns {
                match col.cell(i) {
                    Some(v) => normalized(v).hash(&mut hasher),
                    None => {
                        out.push(None);
                        continue 'rows;
                    }
                }
            }
            out.push(Some(hasher.finish()));
        }
        out
    }
}

enum OperandColumn<'a> {
    Column(&'a ColumnData),
    Const(&'a Value),
    AllNi,
}

impl<'a> OperandColumn<'a> {
    fn cell(&self, i: usize) -> Option<&'a Value> {
        match self {
            OperandColumn::Column(col) => col.cell(i),
            OperandColumn::Const(v) => Some(v),
            OperandColumn::AllNi => None,
        }
    }
}

/// The result of applying a truth vector to a batch: the selection vector
/// of surviving row indices, the `ni` row count, and the maybe bitmap
/// (rows whose qualification was `ni` — the MAYBE band's membership).
#[derive(Debug, Clone, Default)]
pub struct Selection {
    /// Indices (into the batch) of the rows whose truth matched the
    /// requested band, in row order.
    pub keep: Vec<u32>,
    /// Rows whose qualification evaluated to `ni`.
    pub ni_rows: usize,
    /// Bit `i` set iff row `i`'s qualification was `ni`.
    pub maybe: Bitmap,
}

impl Selection {
    /// Builds the selection for the requested truth band.
    pub fn from_truths(truths: &[Truth], want: Truth) -> Selection {
        let mut keep = Vec::new();
        let mut maybe = Bitmap::new(truths.len());
        let mut ni_rows = 0;
        for (i, t) in truths.iter().enumerate() {
            if t.is_ni() {
                ni_rows += 1;
                maybe.set(i);
            }
            if *t == want {
                keep.push(i as u32);
            }
        }
        Selection {
            keep,
            ni_rows,
            maybe,
        }
    }
}

/// Hashes the normalized key columns of a tuple slice: the columnar twin
/// of per-row `key_on` + hash. `None` marks rows with an `ni` key cell.
pub fn key_hashes(rows: &[Tuple], keys: &[AttrId]) -> Vec<Option<u64>> {
    let pairs: Vec<(AttrId, AttrId)> = keys.iter().map(|&k| (k, k)).collect();
    ColumnBatch::gather(rows, &pairs).key_hashes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tvl::CompareOp;
    use crate::universe::Universe;

    fn attrs() -> (Universe, AttrId, AttrId) {
        let mut u = Universe::new();
        let a = u.intern("A");
        let b = u.intern("B");
        (u, a, b)
    }

    fn rows(a: AttrId, b: AttrId) -> Vec<Tuple> {
        vec![
            Tuple::new().with(a, Value::int(1)).with(b, Value::int(10)),
            Tuple::new().with(a, Value::int(2)),
            Tuple::new().with(a, Value::int(3)).with(b, Value::int(30)),
            Tuple::new().with(b, Value::int(40)),
        ]
    }

    #[test]
    fn bitmap_set_get_count() {
        let mut bm = Bitmap::new(130);
        bm.set(0);
        bm.set(64);
        bm.set(129);
        assert!(bm.get(0) && bm.get(64) && bm.get(129));
        assert!(!bm.get(1) && !bm.get(128));
        assert_eq!(bm.count_ones(), 3);
    }

    #[test]
    fn gather_marks_ni_cells() {
        let (_u, a, b) = attrs();
        let batch = ColumnBatch::gather(&rows(a, b), &[(a, a), (b, b)]);
        assert_eq!(batch.len(), 4);
        let col_b = batch.column(b).unwrap();
        assert_eq!(col_b.cell(0), Some(&Value::int(10)));
        assert_eq!(col_b.cell(1), None, "row 1 has ni B");
        assert_eq!(col_b.ni().count_ones(), 1);
        let col_a = batch.column(a).unwrap();
        assert_eq!(col_a.cell(3), None, "row 3 has ni A");
    }

    #[test]
    fn gather_applies_renames_at_zero_row_cost() {
        let (mut u, a, b) = attrs();
        let c = u.intern("C");
        let batch = ColumnBatch::gather(&rows(a, b), &[(c, a)]);
        assert!(batch.column(a).is_none());
        assert_eq!(batch.column(c).unwrap().cell(0), Some(&Value::int(1)));
    }

    /// The batch kernel must agree with `Predicate::eval` row by row on
    /// every connective, including the ni cases of Table III.
    #[test]
    fn predicate_kernel_matches_tuple_eval() {
        let (_u, a, b) = attrs();
        let data = rows(a, b);
        let preds = [
            Predicate::attr_const(a, CompareOp::Eq, 2),
            Predicate::attr_const(b, CompareOp::Gt, 15),
            Predicate::attr_attr(a, CompareOp::Lt, b),
            Predicate::attr_const(a, CompareOp::Eq, 1).or(Predicate::attr_const(
                b,
                CompareOp::Eq,
                30,
            )),
            Predicate::attr_const(a, CompareOp::Gt, 0)
                .and(Predicate::attr_const(b, CompareOp::Gt, 0).negate()),
            Predicate::always(),
        ];
        let batch = ColumnBatch::gather(&data, &[(a, a), (b, b)]);
        for pred in &preds {
            let kernel = batch.eval_predicate(pred).unwrap();
            let scalar: Vec<Truth> = data.iter().map(|t| pred.eval(t).unwrap()).collect();
            assert_eq!(kernel, scalar, "kernel disagrees on {pred}");
        }
    }

    #[test]
    fn selection_vector_splits_bands() {
        let truths = [Truth::True, Truth::Ni, Truth::False, Truth::Ni, Truth::True];
        let sel = Selection::from_truths(&truths, Truth::True);
        assert_eq!(sel.keep, vec![0, 4]);
        assert_eq!(sel.ni_rows, 2);
        assert!(sel.maybe.get(1) && sel.maybe.get(3));
        let maybe = Selection::from_truths(&truths, Truth::Ni);
        assert_eq!(maybe.keep, vec![1, 3]);
    }

    /// `Int(2)` and `Float(2.0)` must hash identically (the normalized
    /// key discipline), and an ni key cell must yield no hash.
    #[test]
    fn key_hashes_normalize_and_skip_ni() {
        let (_u, a, b) = attrs();
        let data = vec![
            Tuple::new().with(a, Value::int(2)).with(b, Value::int(1)),
            Tuple::new()
                .with(a, Value::float(2.0))
                .with(b, Value::int(1)),
            Tuple::new()
                .with(a, Value::float(2.5))
                .with(b, Value::int(1)),
            Tuple::new().with(b, Value::int(1)),
        ];
        let hashes = key_hashes(&data, &[a, b]);
        assert_eq!(hashes[0], hashes[1], "Float(2.0) folds onto Int(2)");
        assert_ne!(hashes[0], hashes[2]);
        assert_eq!(hashes[3], None, "ni key cell never hashes");
    }

    /// The borrowing normalizer agrees with the cloning `Value::join_key`.
    #[test]
    fn normalized_matches_join_key() {
        for v in [
            Value::int(7),
            Value::float(7.0),
            Value::float(7.5),
            Value::str("x"),
            Value::Bool(true),
        ] {
            let via_ref = match normalized(&v) {
                NormalizedRef::Int(i) => Value::Int(i),
                NormalizedRef::Other(o) => o.clone(),
            };
            assert_eq!(via_ref, v.join_key());
        }
    }
}
