//! # nullrel-core
//!
//! A faithful implementation of Carlo Zaniolo's *Database Relations with
//! Null Values* (PODS 1982 / JCSS 28, 1984): the **no-information (`ni`)
//! interpretation of nulls**, the information ordering on tuples, extended
//! relations (**x-relations**) as equivalence classes under information-wise
//! equivalence, the distributive pseudo-complemented lattice they form, the
//! three-valued query-evaluation discipline, and the generalized relational
//! algebra (selection, projection, Cartesian product, θ-joins, equijoin,
//! union-join, and division).
//!
//! ## Map of the paper onto modules
//!
//! | Paper | Module |
//! |---|---|
//! | §3 tuples, `≥`, meet `∧`, join `∨` | [`tuple`] |
//! | §3 universe `U`, domains `DOM(A)` | [`universe`], [`value`] |
//! | §4 subsumption, `≅`, x-relations, minimal form, scope | [`relation`], [`xrel`] |
//! | §4/§7 union, x-intersection, difference, `TOP_U`, pseudo-complement | [`lattice`] |
//! | §5 Table III, comparisons with `ni` | [`tvl`], [`predicate`] |
//! | §5–6 selection, projection, product, joins, union-join, division | [`algebra`] |
//! | Displays and tables | [`display`] |
//!
//! ## Quick start
//!
//! ```
//! use nullrel_core::prelude::*;
//!
//! // Build the universe and the PS relation of the paper's display (6.6).
//! let mut universe = Universe::new();
//! let s_no = universe.intern("S#");
//! let p_no = universe.intern("P#");
//! let tuple = |s: Option<&str>, p: Option<&str>| {
//!     Tuple::new()
//!         .with_opt(s_no, s.map(Value::str))
//!         .with_opt(p_no, p.map(Value::str))
//! };
//! let ps = XRelation::from_tuples([
//!     tuple(Some("s1"), Some("p1")),
//!     tuple(Some("s1"), Some("p2")),
//!     tuple(Some("s2"), Some("p1")),
//!     tuple(Some("s2"), None),
//!     tuple(Some("s3"), None),
//!     tuple(Some("s4"), Some("p4")),
//! ]);
//!
//! // "Find each supplier who supplies every part supplied by s2."
//! let parts_of_s2 = algebra::project(
//!     &algebra::select_attr_const(&ps, s_no, CompareOp::Eq, Value::str("s2")).unwrap(),
//!     &attr_set([p_no]),
//! );
//! let answer = algebra::divide(&ps, &attr_set([s_no]), &parts_of_s2).unwrap();
//! assert_eq!(answer.len(), 2); // {s1, s2}, the paper's A₃
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod algebra;
pub mod batch;
pub mod display;
pub mod error;
pub mod lattice;
pub mod predicate;
pub mod relation;
pub mod tuple;
pub mod tvl;
pub mod universe;
pub mod value;
pub mod xrel;

/// Convenient re-exports of the most frequently used items.
pub mod prelude {
    pub use crate::algebra;
    pub use crate::algebra::{Expr, RelationSource};
    pub use crate::error::{CoreError, CoreResult};
    pub use crate::lattice;
    pub use crate::predicate::{Comparison, Operand, Predicate};
    pub use crate::relation::Relation;
    pub use crate::tuple::Tuple;
    pub use crate::tvl::{CompareOp, Truth};
    pub use crate::universe::{attr_set, AttrId, AttrSet, Domain, DomainType, Universe};
    pub use crate::value::Value;
    pub use crate::xrel::XRelation;
}

pub use error::{CoreError, CoreResult};
pub use predicate::Predicate;
pub use relation::Relation;
pub use tuple::Tuple;
pub use tvl::{CompareOp, Truth};
pub use universe::{AttrId, AttrSet, Domain, Universe};
pub use value::Value;
pub use xrel::XRelation;

#[cfg(test)]
mod tests {
    /// The doc example above is the crate's primary smoke test; this module
    /// only checks that the prelude exposes what the examples rely on.
    #[test]
    fn prelude_exports_compile() {
        use crate::prelude::*;
        let mut u = Universe::new();
        let a = u.intern("A");
        let rel = XRelation::from_tuples([Tuple::new().with(a, Value::int(1))]);
        assert_eq!(lattice::union(&rel, &XRelation::empty()), rel);
        assert_eq!(Truth::True.and(Truth::Ni), Truth::Ni);
        let _: CoreResult<()> = Ok(());
        let _ = CompareOp::Eq;
        let _ = attr_set([a]);
    }
}
