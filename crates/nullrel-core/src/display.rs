//! Rendering relations as ASCII tables in the style of the paper's displays
//! (Table I, Table II, display (6.6), …), with `-` for null cells.

use crate::relation::Relation;
use crate::universe::{AttrId, Universe};
use crate::xrel::XRelation;

/// Renders a [`Relation`] as an ASCII table using the relation's declared
/// column order. Null cells are printed as `-`, like the paper's dash.
pub fn render_relation(name: &str, rel: &Relation, universe: &Universe) -> String {
    render_table(name, rel.attrs(), rel.tuples().cloned().collect(), universe)
}

/// Renders an [`XRelation`] over an explicit column order.
pub fn render_xrelation(
    name: &str,
    rel: &XRelation,
    attrs: &[AttrId],
    universe: &Universe,
) -> String {
    render_table(name, attrs, rel.tuples().to_vec(), universe)
}

fn render_table(
    name: &str,
    attrs: &[AttrId],
    tuples: Vec<crate::tuple::Tuple>,
    universe: &Universe,
) -> String {
    let headers: Vec<String> = attrs
        .iter()
        .map(|a| {
            universe
                .name(*a)
                .map(str::to_owned)
                .unwrap_or_else(|_| format!("#{}", a.index()))
        })
        .collect();
    let mut rows: Vec<Vec<String>> = Vec::with_capacity(tuples.len());
    for t in &tuples {
        rows.push(
            attrs
                .iter()
                .map(|a| {
                    t.get(*a)
                        .map(|v| v.to_string())
                        .unwrap_or_else(|| "-".to_owned())
                })
                .collect(),
        );
    }
    let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
    for row in &rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    out.push_str(name);
    out.push('\n');
    let mut header_line = String::new();
    for (i, h) in headers.iter().enumerate() {
        header_line.push_str(&format!("| {:width$} ", h, width = widths[i]));
    }
    header_line.push('|');
    let separator = "-".repeat(header_line.len());
    out.push_str(&header_line);
    out.push('\n');
    out.push_str(&separator);
    out.push('\n');
    for row in &rows {
        for (i, cell) in row.iter().enumerate() {
            out.push_str(&format!("| {:width$} ", cell, width = widths[i]));
        }
        out.push_str("|\n");
    }
    if rows.is_empty() {
        out.push_str("(empty)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Tuple;
    use crate::value::Value;

    #[test]
    fn renders_table_ii_with_dashes() {
        let mut u = Universe::new();
        let e_no = u.intern("E#");
        let name = u.intern("NAME");
        let tel = u.intern("TEL#");
        let mut rel = Relation::new([e_no, name, tel]);
        rel.insert(
            Tuple::new()
                .with(e_no, Value::int(1120))
                .with(name, Value::str("SMITH")),
        )
        .unwrap();
        let text = render_relation("EMP", &rel, &u);
        assert!(text.contains("EMP"));
        assert!(text.contains("E#"));
        assert!(text.contains("SMITH"));
        assert!(
            text.lines().last().unwrap().contains('-'),
            "null TEL# rendered as dash"
        );
    }

    #[test]
    fn renders_empty_relation() {
        let mut u = Universe::new();
        let a = u.intern("A");
        let rel = Relation::new([a]);
        let text = render_relation("EMPTY", &rel, &u);
        assert!(text.contains("(empty)"));
    }

    #[test]
    fn renders_xrelation_over_chosen_columns() {
        let mut u = Universe::new();
        let s = u.intern("S#");
        let p = u.intern("P#");
        let x = XRelation::from_tuples([
            Tuple::new()
                .with(s, Value::str("s1"))
                .with(p, Value::str("p1")),
            Tuple::new().with(s, Value::str("s3")),
        ]);
        let text = render_xrelation("PS", &x, &[s, p], &u);
        assert!(text.contains("s3"));
        assert!(text.contains("p1"));
        // Unknown attribute ids render positionally rather than panicking.
        let ghost = AttrId::from_index(99);
        let text2 = render_xrelation("PS", &x, &[s, ghost], &u);
        assert!(text2.contains("#99"));
    }
}
