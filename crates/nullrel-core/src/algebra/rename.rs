//! Attribute renaming.
//!
//! The paper's Cartesian product and θ-joins require operands with disjoint
//! scopes; renaming is the standard tool for meeting that requirement (e.g.
//! the self-join of `EMP` with itself in query Q_B of Figure 2 ranges two
//! variables `e` and `m` over the same relation — the planner renames one
//! copy's attributes before taking the product).

use std::collections::BTreeMap;
use std::collections::HashSet;

use crate::error::{CoreError, CoreResult};
use crate::universe::AttrId;
use crate::xrel::XRelation;

/// Renames attributes of every tuple according to `mapping` (source → target).
/// Attributes outside the mapping are left unchanged. The effective mapping
/// must be injective on the relation's scope: two distinct attributes may not
/// be mapped (or left) onto the same target.
pub fn rename(rel: &XRelation, mapping: &BTreeMap<AttrId, AttrId>) -> CoreResult<XRelation> {
    let scope = rel.scope();
    let mut targets: HashSet<AttrId> = HashSet::with_capacity(scope.len());
    for attr in &scope {
        let target = *mapping.get(attr).unwrap_or(attr);
        if !targets.insert(target) {
            return Err(CoreError::RenameCollision(target));
        }
    }
    Ok(XRelation::from_tuples(
        rel.tuples().iter().map(|t| t.rename(mapping)),
    ))
}

/// Builds a rename mapping by pairing source and target attribute ids.
pub fn mapping<I: IntoIterator<Item = (AttrId, AttrId)>>(pairs: I) -> BTreeMap<AttrId, AttrId> {
    pairs.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Tuple;
    use crate::universe::Universe;
    use crate::value::Value;

    #[test]
    fn rename_moves_scope() {
        let mut u = Universe::new();
        let e_no = u.intern("E#");
        let m_e_no = u.intern("m.E#");
        let name = u.intern("NAME");
        let rel = XRelation::from_tuples([Tuple::new()
            .with(e_no, Value::int(1))
            .with(name, Value::str("SMITH"))]);
        let renamed = rename(&rel, &mapping([(e_no, m_e_no)])).unwrap();
        assert!(renamed.scope().contains(&m_e_no));
        assert!(!renamed.scope().contains(&e_no));
        assert!(renamed.x_contains(&Tuple::new().with(m_e_no, Value::int(1))));
    }

    #[test]
    fn rename_collision_is_rejected() {
        let mut u = Universe::new();
        let a = u.intern("A");
        let b = u.intern("B");
        let rel =
            XRelation::from_tuples([Tuple::new().with(a, Value::int(1)).with(b, Value::int(2))]);
        // Mapping A onto B while B stays put collides.
        assert!(matches!(
            rename(&rel, &mapping([(a, b)])),
            Err(CoreError::RenameCollision(_))
        ));
        // Swapping is fine.
        let swapped = rename(&rel, &mapping([(a, b), (b, a)])).unwrap();
        assert!(swapped.x_contains(&Tuple::new().with(b, Value::int(1)).with(a, Value::int(2))));
    }

    #[test]
    fn empty_mapping_is_identity() {
        let mut u = Universe::new();
        let a = u.intern("A");
        let rel = XRelation::from_tuples([Tuple::new().with(a, Value::int(1))]);
        assert_eq!(rename(&rel, &BTreeMap::new()).unwrap(), rel);
    }

    #[test]
    fn rename_enables_self_product() {
        let mut u = Universe::new();
        let e_no = u.intern("E#");
        let other = u.intern("e2.E#");
        let rel = XRelation::from_tuples([
            Tuple::new().with(e_no, Value::int(1)),
            Tuple::new().with(e_no, Value::int(2)),
        ]);
        let renamed = rename(&rel, &mapping([(e_no, other)])).unwrap();
        let prod = crate::algebra::product::product(&rel, &renamed).unwrap();
        assert_eq!(prod.len(), 4);
    }
}
