//! θ-joins and the equijoin `R₁(·X)R₂`.
//!
//! Definition (5.4): `R̂₁[AθB]R̂₂ = (R̂₁ × R̂₂)[AθB]` — a θ-join is a
//! selection over the Cartesian product, which requires disjoint operand
//! scopes. The equijoin on a common attribute set `X`, `R₁(·X)R₂`, does not
//! repeat the join columns: it is the set of tuple joins `r₁ ∨ r₂` of pairs
//! that are `X`-total (and joinable — which on overlapping scopes means they
//! agree wherever both are non-null).

use crate::error::{CoreError, CoreResult};
use crate::predicate::Predicate;
use crate::tuple::Tuple;
use crate::tvl::CompareOp;
use crate::universe::{AttrId, AttrSet};
use crate::xrel::XRelation;

use super::product::product;
use super::select::select;

/// The θ-join `R̂₁[AθB]R̂₂` (definition 5.4): selection `AθB` over the
/// Cartesian product. `A` should belong to the scope of the left operand and
/// `B` to the right one; this is not enforced beyond the disjoint-scope check
/// performed by the product.
pub fn theta_join(
    left: &XRelation,
    left_attr: AttrId,
    op: CompareOp,
    right_attr: AttrId,
    right: &XRelation,
) -> CoreResult<XRelation> {
    let prod = product(left, right)?;
    select(&prod, &Predicate::attr_attr(left_attr, op, right_attr))
}

/// The equijoin (join on `X`) `R₁(·X)R₂`: tuple joins of `X`-total, joinable
/// pairs. The join columns are not repeated because both operands share the
/// same attribute ids for `X`.
pub fn equijoin(left: &XRelation, right: &XRelation, on: &AttrSet) -> CoreResult<XRelation> {
    if on.is_empty() {
        return Err(CoreError::EmptyAttributeList);
    }
    let mut out: Vec<Tuple> = Vec::new();
    for r1 in left.tuples() {
        if !r1.is_total_on(on) {
            continue;
        }
        for r2 in right.tuples() {
            if !r2.is_total_on(on) {
                continue;
            }
            if let Some(joined) = r1.join(r2) {
                out.push(joined);
            }
        }
    }
    // Joins of minimal operands can still produce comparable tuples when the
    // operands' scopes overlap beyond X, so reduce to be safe.
    Ok(XRelation::from_tuples(out))
}

/// Returns the tuples of `rel` that participate in the equijoin with `other`
/// on `X` — i.e. those that are `X`-total and joinable with some `X`-total
/// tuple of `other`. Used by the union-join.
pub fn joining_tuples(rel: &XRelation, other: &XRelation, on: &AttrSet) -> Vec<Tuple> {
    rel.tuples()
        .iter()
        .filter(|r| {
            r.is_total_on(on)
                && other
                    .tuples()
                    .iter()
                    .any(|t| t.is_total_on(on) && r.joinable(t))
        })
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::{attr_set, Universe};
    use crate::value::Value;

    fn setup() -> (Universe, AttrId, AttrId, AttrId, AttrId) {
        let mut u = Universe::new();
        let e_no = u.intern("E#");
        let name = u.intern("NAME");
        let mgr = u.intern("MGR#");
        let dept = u.intern("DEPT");
        (u, e_no, name, mgr, dept)
    }

    #[test]
    fn theta_join_is_selection_over_product() {
        let (_u, e_no, _name, mgr, dept) = setup();
        let emp = XRelation::from_tuples([
            Tuple::new().with(e_no, Value::int(1)).with(mgr, Value::int(10)),
            Tuple::new().with(e_no, Value::int(2)),
        ]);
        let dep = XRelation::from_tuples([Tuple::new().with(dept, Value::int(10))]);
        let joined = theta_join(&emp, mgr, CompareOp::Eq, dept, &dep).unwrap();
        assert_eq!(joined.len(), 1);
        assert!(joined.x_contains(
            &Tuple::new()
                .with(e_no, Value::int(1))
                .with(mgr, Value::int(10))
                .with(dept, Value::int(10))
        ));
    }

    #[test]
    fn theta_join_rejects_overlapping_scopes() {
        let (_u, e_no, _name, mgr, _dept) = setup();
        let a = XRelation::from_tuples([Tuple::new().with(e_no, Value::int(1))]);
        let b = XRelation::from_tuples([Tuple::new().with(e_no, Value::int(1)).with(mgr, Value::int(2))]);
        assert!(theta_join(&a, e_no, CompareOp::Eq, mgr, &b).is_err());
    }

    #[test]
    fn equijoin_requires_x_totality_on_both_sides() {
        // The marked-null discussion of Section 2: a tuple with a null MGR#
        // never joins on MGR#.
        let (_u, e_no, name, mgr, dept) = setup();
        let emp = XRelation::from_tuples([
            Tuple::new()
                .with(e_no, Value::int(1))
                .with(name, Value::str("SMITH"))
                .with(mgr, Value::int(10)),
            Tuple::new()
                .with(e_no, Value::int(2))
                .with(name, Value::str("BROWN")), // MGR# is ni
        ]);
        let mgr_dept = XRelation::from_tuples([
            Tuple::new().with(mgr, Value::int(10)).with(dept, Value::str("D1")),
            Tuple::new().with(dept, Value::str("D2")), // MGR# is ni
        ]);
        let joined = equijoin(&emp, &mgr_dept, &attr_set([mgr])).unwrap();
        assert_eq!(joined.len(), 1);
        assert!(joined.x_contains(
            &Tuple::new()
                .with(e_no, Value::int(1))
                .with(mgr, Value::int(10))
                .with(dept, Value::str("D1"))
        ));
    }

    #[test]
    fn equijoin_on_empty_attribute_set_is_rejected() {
        let (_u, e_no, ..) = setup();
        let a = XRelation::from_tuples([Tuple::new().with(e_no, Value::int(1))]);
        assert!(matches!(
            equijoin(&a, &a, &AttrSet::new()),
            Err(CoreError::EmptyAttributeList)
        ));
    }

    #[test]
    fn equijoin_does_not_repeat_join_columns() {
        let (_u, e_no, name, mgr, _dept) = setup();
        let left = XRelation::from_tuples([Tuple::new()
            .with(e_no, Value::int(1))
            .with(name, Value::str("SMITH"))]);
        let right = XRelation::from_tuples([Tuple::new()
            .with(e_no, Value::int(1))
            .with(mgr, Value::int(9))]);
        let joined = equijoin(&left, &right, &attr_set([e_no])).unwrap();
        assert_eq!(joined.len(), 1);
        let t = &joined.tuples()[0];
        assert_eq!(t.defined_len(), 3, "E#, NAME, MGR# — E# appears once");
    }

    #[test]
    fn equijoin_with_conflicting_overlap_drops_pair() {
        // Scopes overlap beyond X: tuples that disagree on the overlapping
        // attribute are not joinable and produce nothing.
        let (_u, e_no, name, mgr, _dept) = setup();
        let left = XRelation::from_tuples([Tuple::new()
            .with(e_no, Value::int(1))
            .with(name, Value::str("SMITH"))
            .with(mgr, Value::int(5))]);
        let right = XRelation::from_tuples([Tuple::new()
            .with(e_no, Value::int(1))
            .with(mgr, Value::int(6))]);
        let joined = equijoin(&left, &right, &attr_set([e_no])).unwrap();
        assert!(joined.is_empty());
    }

    #[test]
    fn joining_tuples_identifies_participants() {
        let (_u, e_no, name, mgr, dept) = setup();
        let emp = XRelation::from_tuples([
            Tuple::new().with(e_no, Value::int(1)).with(mgr, Value::int(10)),
            Tuple::new().with(e_no, Value::int(2)).with(name, Value::str("X")),
        ]);
        let dep = XRelation::from_tuples([
            Tuple::new().with(mgr, Value::int(10)).with(dept, Value::str("D1")),
            Tuple::new().with(mgr, Value::int(11)).with(dept, Value::str("D2")),
        ]);
        let joiners = joining_tuples(&emp, &dep, &attr_set([mgr]));
        assert_eq!(joiners.len(), 1);
        let joiners_rhs = joining_tuples(&dep, &emp, &attr_set([mgr]));
        assert_eq!(joiners_rhs.len(), 1);
    }

    #[test]
    fn equijoin_agrees_with_classical_join_on_total_relations() {
        let (_u, e_no, name, mgr, dept) = setup();
        let left = XRelation::from_tuples([
            Tuple::new().with(e_no, Value::int(1)).with(name, Value::str("A")),
            Tuple::new().with(e_no, Value::int(2)).with(name, Value::str("B")),
        ]);
        let right = XRelation::from_tuples([
            Tuple::new().with(e_no, Value::int(1)).with(mgr, Value::int(7)).with(dept, Value::str("D")),
        ]);
        let joined = equijoin(&left, &right, &attr_set([e_no])).unwrap();
        assert_eq!(joined.len(), 1);
        assert!(joined.is_total());
    }
}
