//! θ-joins and the equijoin `R₁(·X)R₂`.
//!
//! Definition (5.4): `R̂₁[AθB]R̂₂ = (R̂₁ × R̂₂)[AθB]` — a θ-join is a
//! selection over the Cartesian product, which requires disjoint operand
//! scopes. The equijoin on a common attribute set `X`, `R₁(·X)R₂`, does not
//! repeat the join columns: it is the set of tuple joins `r₁ ∨ r₂` of pairs
//! that are `X`-total (and joinable — which on overlapping scopes means they
//! agree wherever both are non-null).
//!
//! The equijoin core is hash-based: both operands' `X`-cells are normalized
//! through [`Value::join_key`] (so `Int(2)` and `Float(2.0)` join keys agree,
//! matching the domain-aware equality of [`Value::compare`] used by the
//! engine's hash joins and index probes), the right operand is bucketed on
//! its normalized key, and the left operand probes. [`equijoin_parts`]
//! exposes the joined tuples together with the hashed participant sets of
//! both sides — the building block of the union-join and of the physical
//! `EquiJoinOp`/`UnionJoinOp` operators.

use std::collections::{HashMap, HashSet};

use crate::error::{CoreError, CoreResult};
use crate::predicate::Predicate;
use crate::tuple::Tuple;
use crate::tvl::CompareOp;
use crate::universe::{AttrId, AttrSet};
use crate::value::Value;
use crate::xrel::XRelation;

use super::product::product;
use super::select::select;

/// The θ-join `R̂₁[AθB]R̂₂` (definition 5.4): selection `AθB` over the
/// Cartesian product. `A` should belong to the scope of the left operand and
/// `B` to the right one; this is not enforced beyond the disjoint-scope check
/// performed by the product.
pub fn theta_join(
    left: &XRelation,
    left_attr: AttrId,
    op: CompareOp,
    right_attr: AttrId,
    right: &XRelation,
) -> CoreResult<XRelation> {
    let prod = product(left, right)?;
    select(&prod, &Predicate::attr_attr(left_attr, op, right_attr))
}

/// Returns the tuple with its `X`-cells normalized through
/// [`Value::join_key`], so that numerically equal join keys (`Int(2)` and
/// `Float(2.0)`) compare and hash identically. Cells outside `on` keep
/// their stored representation.
pub fn normalize_on(tuple: &Tuple, on: &AttrSet) -> Tuple {
    let mut out = tuple.clone();
    for attr in on {
        if let Some(v) = tuple.get(*attr) {
            out.set(*attr, Some(v.join_key()));
        }
    }
    out
}

/// The output of the hash-equijoin core: the joined tuples plus the hashed
/// participant sets of both operands.
///
/// The participant sets hold the participating tuples **normalized on `X`**
/// (see [`normalize_on`]); participation is a function of the normalized
/// tuple, so membership tests must normalize the probe the same way. This
/// is the structure the union-join needs to identify its dangling tuples
/// without quadratic `Vec::contains` scans.
#[derive(Debug, Clone, Default)]
pub struct EquiJoinParts {
    /// Joined tuples `r₁ ∨ r₂` (normalized on `X`), not yet minimized.
    pub joined: Vec<Tuple>,
    /// Left tuples (normalized on `X`) that joined with ≥ 1 partner.
    pub left_participants: HashSet<Tuple>,
    /// Right tuples (normalized on `X`) that joined with ≥ 1 partner.
    pub right_participants: HashSet<Tuple>,
}

/// The hash-equijoin core shared by [`equijoin`], the union-join, and the
/// physical engine: buckets the right tuples on their normalized `X`-key,
/// probes with the left tuples, and records which tuples of either side
/// participate. Tuples that are not `X`-total can never join for sure (their
/// key is `ni`) and are skipped. Pairs whose scopes overlap beyond `X` must
/// additionally be joinable (agree on every shared non-null cell).
pub fn equijoin_parts(left: &[Tuple], right: &[Tuple], on: &AttrSet) -> CoreResult<EquiJoinParts> {
    if on.is_empty() {
        return Err(CoreError::EmptyAttributeList);
    }
    let key_attrs: Vec<AttrId> = on.iter().copied().collect();
    let mut table: HashMap<Vec<Value>, Vec<Tuple>> = HashMap::new();
    for r2 in right {
        let rn = normalize_on(r2, on);
        if let Some(key) = rn.key_on(&key_attrs) {
            table.entry(key).or_default().push(rn);
        }
    }
    let mut parts = EquiJoinParts::default();
    for r1 in left {
        let ln = normalize_on(r1, on);
        let Some(key) = ln.key_on(&key_attrs) else {
            continue;
        };
        let Some(bucket) = table.get(&key) else {
            continue;
        };
        for rn in bucket {
            // Bucket membership already guarantees agreement on X; joinable
            // rules out conflicts on any shared attribute beyond X.
            if let Some(joined) = ln.join(rn) {
                parts.joined.push(joined);
                parts.left_participants.insert(ln.clone());
                parts.right_participants.insert(rn.clone());
            }
        }
    }
    Ok(parts)
}

/// The equijoin (join on `X`) `R₁(·X)R₂`: tuple joins of `X`-total, joinable
/// pairs. The join columns are not repeated because both operands share the
/// same attribute ids for `X`. Join keys are matched with the domain-aware
/// numeric equality (via [`normalize_on`]).
pub fn equijoin(left: &XRelation, right: &XRelation, on: &AttrSet) -> CoreResult<XRelation> {
    let parts = equijoin_parts(left.tuples(), right.tuples(), on)?;
    // Joins of minimal operands can still produce comparable tuples when the
    // operands' scopes overlap beyond X, so reduce to be safe.
    Ok(XRelation::from_tuples(parts.joined))
}

/// Returns the tuples of `rel` that participate in the equijoin with `other`
/// on `X` — i.e. those that are `X`-total and joinable with some `X`-total
/// tuple of `other`.
///
/// This is the quadratic reference formulation, kept as documentation and
/// as the oracle for [`equijoin_parts`]' hashed participant sets (which the
/// union-join uses); note it matches join keys structurally, while the
/// hashed path identifies numerically equal keys through [`normalize_on`].
pub fn joining_tuples(rel: &XRelation, other: &XRelation, on: &AttrSet) -> Vec<Tuple> {
    rel.tuples()
        .iter()
        .filter(|r| {
            r.is_total_on(on)
                && other
                    .tuples()
                    .iter()
                    .any(|t| t.is_total_on(on) && r.joinable(t))
        })
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::{attr_set, Universe};
    use crate::value::Value;

    fn setup() -> (Universe, AttrId, AttrId, AttrId, AttrId) {
        let mut u = Universe::new();
        let e_no = u.intern("E#");
        let name = u.intern("NAME");
        let mgr = u.intern("MGR#");
        let dept = u.intern("DEPT");
        (u, e_no, name, mgr, dept)
    }

    #[test]
    fn theta_join_is_selection_over_product() {
        let (_u, e_no, _name, mgr, dept) = setup();
        let emp = XRelation::from_tuples([
            Tuple::new()
                .with(e_no, Value::int(1))
                .with(mgr, Value::int(10)),
            Tuple::new().with(e_no, Value::int(2)),
        ]);
        let dep = XRelation::from_tuples([Tuple::new().with(dept, Value::int(10))]);
        let joined = theta_join(&emp, mgr, CompareOp::Eq, dept, &dep).unwrap();
        assert_eq!(joined.len(), 1);
        assert!(joined.x_contains(
            &Tuple::new()
                .with(e_no, Value::int(1))
                .with(mgr, Value::int(10))
                .with(dept, Value::int(10))
        ));
    }

    #[test]
    fn theta_join_rejects_overlapping_scopes() {
        let (_u, e_no, _name, mgr, _dept) = setup();
        let a = XRelation::from_tuples([Tuple::new().with(e_no, Value::int(1))]);
        let b = XRelation::from_tuples([Tuple::new()
            .with(e_no, Value::int(1))
            .with(mgr, Value::int(2))]);
        assert!(theta_join(&a, e_no, CompareOp::Eq, mgr, &b).is_err());
    }

    #[test]
    fn equijoin_requires_x_totality_on_both_sides() {
        // The marked-null discussion of Section 2: a tuple with a null MGR#
        // never joins on MGR#.
        let (_u, e_no, name, mgr, dept) = setup();
        let emp = XRelation::from_tuples([
            Tuple::new()
                .with(e_no, Value::int(1))
                .with(name, Value::str("SMITH"))
                .with(mgr, Value::int(10)),
            Tuple::new()
                .with(e_no, Value::int(2))
                .with(name, Value::str("BROWN")), // MGR# is ni
        ]);
        let mgr_dept = XRelation::from_tuples([
            Tuple::new()
                .with(mgr, Value::int(10))
                .with(dept, Value::str("D1")),
            Tuple::new().with(dept, Value::str("D2")), // MGR# is ni
        ]);
        let joined = equijoin(&emp, &mgr_dept, &attr_set([mgr])).unwrap();
        assert_eq!(joined.len(), 1);
        assert!(joined.x_contains(
            &Tuple::new()
                .with(e_no, Value::int(1))
                .with(mgr, Value::int(10))
                .with(dept, Value::str("D1"))
        ));
    }

    #[test]
    fn equijoin_on_empty_attribute_set_is_rejected() {
        let (_u, e_no, ..) = setup();
        let a = XRelation::from_tuples([Tuple::new().with(e_no, Value::int(1))]);
        assert!(matches!(
            equijoin(&a, &a, &AttrSet::new()),
            Err(CoreError::EmptyAttributeList)
        ));
    }

    #[test]
    fn equijoin_does_not_repeat_join_columns() {
        let (_u, e_no, name, mgr, _dept) = setup();
        let left = XRelation::from_tuples([Tuple::new()
            .with(e_no, Value::int(1))
            .with(name, Value::str("SMITH"))]);
        let right = XRelation::from_tuples([Tuple::new()
            .with(e_no, Value::int(1))
            .with(mgr, Value::int(9))]);
        let joined = equijoin(&left, &right, &attr_set([e_no])).unwrap();
        assert_eq!(joined.len(), 1);
        let t = &joined.tuples()[0];
        assert_eq!(t.defined_len(), 3, "E#, NAME, MGR# — E# appears once");
    }

    #[test]
    fn equijoin_with_conflicting_overlap_drops_pair() {
        // Scopes overlap beyond X: tuples that disagree on the overlapping
        // attribute are not joinable and produce nothing.
        let (_u, e_no, name, mgr, _dept) = setup();
        let left = XRelation::from_tuples([Tuple::new()
            .with(e_no, Value::int(1))
            .with(name, Value::str("SMITH"))
            .with(mgr, Value::int(5))]);
        let right = XRelation::from_tuples([Tuple::new()
            .with(e_no, Value::int(1))
            .with(mgr, Value::int(6))]);
        let joined = equijoin(&left, &right, &attr_set([e_no])).unwrap();
        assert!(joined.is_empty());
    }

    #[test]
    fn joining_tuples_identifies_participants() {
        let (_u, e_no, name, mgr, dept) = setup();
        let emp = XRelation::from_tuples([
            Tuple::new()
                .with(e_no, Value::int(1))
                .with(mgr, Value::int(10)),
            Tuple::new()
                .with(e_no, Value::int(2))
                .with(name, Value::str("X")),
        ]);
        let dep = XRelation::from_tuples([
            Tuple::new()
                .with(mgr, Value::int(10))
                .with(dept, Value::str("D1")),
            Tuple::new()
                .with(mgr, Value::int(11))
                .with(dept, Value::str("D2")),
        ]);
        let joiners = joining_tuples(&emp, &dep, &attr_set([mgr]));
        assert_eq!(joiners.len(), 1);
        let joiners_rhs = joining_tuples(&dep, &emp, &attr_set([mgr]));
        assert_eq!(joiners_rhs.len(), 1);
    }

    /// Regression: equijoin keys use the domain-aware numeric equality —
    /// `Int(2)` on one side joins `Float(2.0)` on the other, consistent with
    /// the engine's hash-join key normalization.
    #[test]
    fn equijoin_normalizes_numeric_join_keys() {
        let (_u, e_no, name, mgr, _dept) = setup();
        let left = XRelation::from_tuples([Tuple::new()
            .with(e_no, Value::int(2))
            .with(name, Value::str("SMITH"))]);
        let right = XRelation::from_tuples([Tuple::new()
            .with(e_no, Value::float(2.0))
            .with(mgr, Value::int(9))]);
        let joined = equijoin(&left, &right, &attr_set([e_no])).unwrap();
        assert_eq!(joined.len(), 1);
        assert!(joined.x_contains(
            &Tuple::new()
                .with(e_no, Value::int(2))
                .with(name, Value::str("SMITH"))
                .with(mgr, Value::int(9))
        ));
    }

    #[test]
    fn equijoin_parts_reports_hashed_participants() {
        let (_u, e_no, name, mgr, dept) = setup();
        let left = vec![
            Tuple::new()
                .with(e_no, Value::int(1))
                .with(mgr, Value::int(10)),
            Tuple::new()
                .with(e_no, Value::int(2))
                .with(name, Value::str("X")),
        ];
        let right = vec![
            Tuple::new()
                .with(mgr, Value::int(10))
                .with(dept, Value::str("D1")),
            Tuple::new()
                .with(mgr, Value::int(11))
                .with(dept, Value::str("D2")),
        ];
        let on = attr_set([mgr]);
        let parts = equijoin_parts(&left, &right, &on).unwrap();
        assert_eq!(parts.joined.len(), 1);
        assert_eq!(parts.left_participants.len(), 1);
        assert!(parts
            .left_participants
            .contains(&normalize_on(&left[0], &on)));
        assert_eq!(parts.right_participants.len(), 1);
        assert!(parts
            .right_participants
            .contains(&normalize_on(&right[0], &on)));
        // The hashed participants agree with the quadratic reference.
        let lx = XRelation::from_tuples(left.clone());
        let rx = XRelation::from_tuples(right.clone());
        assert_eq!(
            joining_tuples(&lx, &rx, &on).len(),
            parts.left_participants.len()
        );
        assert!(matches!(
            equijoin_parts(&left, &right, &AttrSet::new()),
            Err(CoreError::EmptyAttributeList)
        ));
    }

    #[test]
    fn normalize_on_touches_only_join_cells() {
        let (_u, e_no, _name, mgr, _dept) = setup();
        let t = Tuple::new()
            .with(e_no, Value::float(2.0))
            .with(mgr, Value::float(3.0));
        let n = normalize_on(&t, &attr_set([e_no]));
        assert_eq!(n.get(e_no), Some(&Value::int(2)), "join cell normalized");
        assert_eq!(
            n.get(mgr),
            Some(&Value::float(3.0)),
            "other cells untouched"
        );
    }

    #[test]
    fn equijoin_agrees_with_classical_join_on_total_relations() {
        let (_u, e_no, name, mgr, dept) = setup();
        let left = XRelation::from_tuples([
            Tuple::new()
                .with(e_no, Value::int(1))
                .with(name, Value::str("A")),
            Tuple::new()
                .with(e_no, Value::int(2))
                .with(name, Value::str("B")),
        ]);
        let right = XRelation::from_tuples([Tuple::new()
            .with(e_no, Value::int(1))
            .with(mgr, Value::int(7))
            .with(dept, Value::str("D"))]);
        let joined = equijoin(&left, &right, &attr_set([e_no])).unwrap();
        assert_eq!(joined.len(), 1);
        assert!(joined.is_total());
    }
}
