//! Projection: `R[X]` (definition 5.5).
//!
//! Projection may produce tuples that are less informative than others (the
//! paper notes this convenient-minimality property of selection does **not**
//! generalise to projection), so the result is re-minimised.

use crate::universe::AttrSet;
use crate::xrel::XRelation;

/// `R[X]`: project every tuple onto the attribute set `X` and reduce to
/// minimal form.
pub fn project(rel: &XRelation, attrs: &AttrSet) -> XRelation {
    XRelation::from_tuples(rel.tuples().iter().map(|t| t.project(attrs)))
}

/// Projects away the given attributes (keep the complement within each
/// tuple's own defined attributes). Useful for the equijoin convention of
/// not repeating join columns.
pub fn project_away(rel: &XRelation, attrs: &AttrSet) -> XRelation {
    XRelation::from_tuples(rel.tuples().iter().map(|t| t.project_away(attrs)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Tuple;
    use crate::universe::{attr_set, Universe};
    use crate::value::Value;

    fn ps() -> (
        Universe,
        crate::universe::AttrId,
        crate::universe::AttrId,
        XRelation,
    ) {
        let mut u = Universe::new();
        let s = u.intern("S#");
        let p = u.intern("P#");
        let t = |sv: Option<&str>, pv: Option<&str>| {
            Tuple::new()
                .with_opt(s, sv.map(Value::str))
                .with_opt(p, pv.map(Value::str))
        };
        let rel = XRelation::from_tuples([
            t(Some("s1"), Some("p1")),
            t(Some("s1"), Some("p2")),
            t(Some("s2"), Some("p1")),
            t(Some("s3"), None),
            t(Some("s4"), Some("p4")),
        ]);
        (u, s, p, rel)
    }

    #[test]
    fn projection_reduces_to_minimal_form() {
        let (_u, s, p, rel) = ps();
        let on_s = project(&rel, &attr_set([s]));
        assert_eq!(on_s.len(), 4, "s1..s4, duplicates collapsed");
        // Projecting the s3 tuple onto P# yields the null tuple, which is
        // dropped during minimisation.
        let on_p = project(&rel, &attr_set([p]));
        assert_eq!(on_p.len(), 3);
        assert!(on_p.x_contains(&Tuple::new().with(p, Value::str("p1"))));
        assert!(!on_p.x_contains(&Tuple::new().with(p, Value::str("p9"))));
    }

    #[test]
    fn paper_projection_example_p_s2() {
        // P_s2 = PS[S# = s2][P#] — the paper displays {p1, −}; in minimal
        // form the null tuple disappears leaving {p1}.
        let (_u, s, p, rel) = ps();
        let selected = crate::algebra::select::select_attr_const(
            &rel,
            s,
            crate::tvl::CompareOp::Eq,
            Value::str("s2"),
        )
        .unwrap();
        let p_s2 = project(&selected, &attr_set([p]));
        assert_eq!(p_s2.len(), 1);
        assert!(p_s2.x_contains(&Tuple::new().with(p, Value::str("p1"))));
    }

    #[test]
    fn projection_onto_scope_is_identity() {
        let (_u, s, p, rel) = ps();
        assert_eq!(project(&rel, &attr_set([s, p])), rel);
    }

    #[test]
    fn projection_onto_empty_set_is_empty() {
        let (_u, _s, _p, rel) = ps();
        assert!(project(&rel, &attr_set([])).is_empty());
    }

    #[test]
    fn project_away_complements_project() {
        let (_u, s, p, rel) = ps();
        let away = project_away(&rel, &attr_set([s]));
        assert_eq!(away, project(&rel, &attr_set([p])));
    }

    #[test]
    fn projection_is_monotone_wrt_containment() {
        let (_u, s, p, rel) = ps();
        let smaller = XRelation::from_tuples([Tuple::new()
            .with(s, Value::str("s1"))
            .with(p, Value::str("p1"))]);
        assert!(rel.contains(&smaller));
        assert!(project(&rel, &attr_set([s])).contains(&project(&smaller, &attr_set([s]))));
    }
}
