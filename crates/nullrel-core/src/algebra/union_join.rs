//! The union-join (information-preserving / outer join) `R₁(∗X)R₂`.
//!
//! Section 5 recalls that null values enable information-preserving joins
//! (the "or-joins" / "extended joins" / "outer joins" of the literature) and
//! argues that **union-join** best describes their nature: the result is the
//! equijoin *plus* the tuples of either operand that do not participate in
//! the join, padded (implicitly, by the `ni` convention) with nulls.
//!
//! The paper warns that the result of a union-join need not be minimal even
//! when the operands are; this implementation therefore re-minimises.

use crate::error::CoreResult;
use crate::tuple::Tuple;
use crate::universe::AttrSet;
use crate::xrel::XRelation;

use super::join::{equijoin, joining_tuples};

/// The union-join `R₁(∗X)R₂`: the equijoin on `X` unioned with the
/// non-participating tuples of both operands.
pub fn union_join(left: &XRelation, right: &XRelation, on: &AttrSet) -> CoreResult<XRelation> {
    let inner = equijoin(left, right, on)?;
    let left_participants: Vec<Tuple> = joining_tuples(left, right, on);
    let right_participants: Vec<Tuple> = joining_tuples(right, left, on);

    let mut tuples: Vec<Tuple> = inner.into_tuples();
    for t in left.tuples() {
        if !left_participants.contains(t) {
            tuples.push(t.clone());
        }
    }
    for t in right.tuples() {
        if !right_participants.contains(t) {
            tuples.push(t.clone());
        }
    }
    Ok(XRelation::from_tuples(tuples))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::{attr_set, AttrId, Universe};
    use crate::value::Value;

    fn setup() -> (Universe, AttrId, AttrId, AttrId, AttrId) {
        let mut u = Universe::new();
        let e_no = u.intern("E#");
        let name = u.intern("NAME");
        let dept = u.intern("DEPT");
        let budget = u.intern("BUDGET");
        (u, e_no, name, dept, budget)
    }

    #[test]
    fn union_join_preserves_dangling_tuples_from_both_sides() {
        let (_u, e_no, name, dept, budget) = setup();
        let emp = XRelation::from_tuples([
            Tuple::new()
                .with(e_no, Value::int(1))
                .with(name, Value::str("SMITH"))
                .with(dept, Value::str("D1")),
            Tuple::new()
                .with(e_no, Value::int(2))
                .with(name, Value::str("BROWN"))
                .with(dept, Value::str("D9")), // no matching department
        ]);
        let dep = XRelation::from_tuples([
            Tuple::new().with(dept, Value::str("D1")).with(budget, Value::int(100)),
            Tuple::new().with(dept, Value::str("D2")).with(budget, Value::int(200)), // no employee
        ]);
        let out = union_join(&emp, &dep, &attr_set([dept])).unwrap();
        // Joined tuple + dangling BROWN + dangling D2.
        assert_eq!(out.len(), 3);
        assert!(out.x_contains(
            &Tuple::new()
                .with(e_no, Value::int(1))
                .with(dept, Value::str("D1"))
                .with(budget, Value::int(100))
        ));
        assert!(out.x_contains(&Tuple::new().with(e_no, Value::int(2))));
        assert!(out.x_contains(&Tuple::new().with(dept, Value::str("D2")).with(budget, Value::int(200))));
        // The dangling tuples keep ni in the other relation's columns: the
        // BROWN row has no BUDGET.
        assert!(!out.x_contains(
            &Tuple::new().with(e_no, Value::int(2)).with(budget, Value::int(100))
        ));
    }

    #[test]
    fn union_join_reduces_to_equijoin_when_everything_matches() {
        let (_u, e_no, _name, dept, budget) = setup();
        let emp = XRelation::from_tuples([Tuple::new()
            .with(e_no, Value::int(1))
            .with(dept, Value::str("D1"))]);
        let dep = XRelation::from_tuples([Tuple::new()
            .with(dept, Value::str("D1"))
            .with(budget, Value::int(5))]);
        let uj = union_join(&emp, &dep, &attr_set([dept])).unwrap();
        let ej = equijoin(&emp, &dep, &attr_set([dept])).unwrap();
        assert_eq!(uj, ej);
    }

    #[test]
    fn union_join_with_empty_right_is_left() {
        let (_u, e_no, _name, dept, _budget) = setup();
        let emp = XRelation::from_tuples([Tuple::new()
            .with(e_no, Value::int(1))
            .with(dept, Value::str("D1"))]);
        let out = union_join(&emp, &XRelation::empty(), &attr_set([dept])).unwrap();
        assert_eq!(out, emp);
    }

    #[test]
    fn union_join_keeps_null_key_tuples_as_dangling() {
        // A tuple with ni in the join column never participates but is never
        // lost either — the information-preserving property.
        let (_u, e_no, _name, dept, budget) = setup();
        let emp = XRelation::from_tuples([
            Tuple::new().with(e_no, Value::int(1)), // DEPT is ni
            Tuple::new().with(e_no, Value::int(2)).with(dept, Value::str("D1")),
        ]);
        let dep = XRelation::from_tuples([Tuple::new()
            .with(dept, Value::str("D1"))
            .with(budget, Value::int(5))]);
        let out = union_join(&emp, &dep, &attr_set([dept])).unwrap();
        assert!(out.x_contains(&Tuple::new().with(e_no, Value::int(1))));
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn union_join_subsumes_both_operands() {
        let (_u, e_no, name, dept, budget) = setup();
        let emp = XRelation::from_tuples([
            Tuple::new().with(e_no, Value::int(1)).with(dept, Value::str("D1")),
            Tuple::new().with(e_no, Value::int(2)).with(name, Value::str("X")),
        ]);
        let dep = XRelation::from_tuples([
            Tuple::new().with(dept, Value::str("D1")).with(budget, Value::int(1)),
            Tuple::new().with(dept, Value::str("D3")),
        ]);
        let out = union_join(&emp, &dep, &attr_set([dept])).unwrap();
        assert!(out.contains(&emp), "no employee information is lost");
        assert!(out.contains(&dep), "no department information is lost");
    }
}
