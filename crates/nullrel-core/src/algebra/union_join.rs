//! The union-join (information-preserving / outer join) `R₁(∗X)R₂`.
//!
//! Section 5 recalls that null values enable information-preserving joins
//! (the "or-joins" / "extended joins" / "outer joins" of the literature) and
//! argues that **union-join** best describes their nature: the result is the
//! equijoin *plus* the tuples of either operand that do not participate in
//! the join, padded (implicitly, by the `ni` convention) with nulls.
//!
//! The paper warns that the result of a union-join need not be minimal even
//! when the operands are; this implementation therefore re-minimises.
//!
//! The implementation rides on the hash-equijoin core
//! ([`equijoin_parts`]): one hashed build/probe pass produces the inner
//! join *and* the participant sets of both sides, so the dangling tuples
//! are found with hash lookups instead of quadratic `Vec::contains` scans.
//! Join keys are matched under the domain-aware numeric equality
//! ([`super::join::normalize_on`]): `Int(2)` and `Float(2.0)` keys agree,
//! consistent with the engine's hash-join and index-probe normalization.

use crate::error::CoreResult;
use crate::tuple::Tuple;
use crate::universe::AttrSet;
use crate::xrel::XRelation;

use super::join::{equijoin_parts, normalize_on};

/// The union-join `R₁(∗X)R₂`: the equijoin on `X` unioned with the
/// non-participating tuples of both operands.
pub fn union_join(left: &XRelation, right: &XRelation, on: &AttrSet) -> CoreResult<XRelation> {
    let parts = equijoin_parts(left.tuples(), right.tuples(), on)?;
    let mut tuples: Vec<Tuple> = parts.joined;
    // Dangling tuples are emitted as stored; participation is a function of
    // the X-normalized tuple, so membership probes normalize the same way.
    for t in left.tuples() {
        if !parts.left_participants.contains(&normalize_on(t, on)) {
            tuples.push(t.clone());
        }
    }
    for t in right.tuples() {
        if !parts.right_participants.contains(&normalize_on(t, on)) {
            tuples.push(t.clone());
        }
    }
    Ok(XRelation::from_tuples(tuples))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::join::equijoin;
    use crate::universe::{attr_set, AttrId, Universe};
    use crate::value::Value;

    fn setup() -> (Universe, AttrId, AttrId, AttrId, AttrId) {
        let mut u = Universe::new();
        let e_no = u.intern("E#");
        let name = u.intern("NAME");
        let dept = u.intern("DEPT");
        let budget = u.intern("BUDGET");
        (u, e_no, name, dept, budget)
    }

    #[test]
    fn union_join_preserves_dangling_tuples_from_both_sides() {
        let (_u, e_no, name, dept, budget) = setup();
        let emp = XRelation::from_tuples([
            Tuple::new()
                .with(e_no, Value::int(1))
                .with(name, Value::str("SMITH"))
                .with(dept, Value::str("D1")),
            Tuple::new()
                .with(e_no, Value::int(2))
                .with(name, Value::str("BROWN"))
                .with(dept, Value::str("D9")), // no matching department
        ]);
        let dep = XRelation::from_tuples([
            Tuple::new()
                .with(dept, Value::str("D1"))
                .with(budget, Value::int(100)),
            Tuple::new()
                .with(dept, Value::str("D2"))
                .with(budget, Value::int(200)), // no employee
        ]);
        let out = union_join(&emp, &dep, &attr_set([dept])).unwrap();
        // Joined tuple + dangling BROWN + dangling D2.
        assert_eq!(out.len(), 3);
        assert!(out.x_contains(
            &Tuple::new()
                .with(e_no, Value::int(1))
                .with(dept, Value::str("D1"))
                .with(budget, Value::int(100))
        ));
        assert!(out.x_contains(&Tuple::new().with(e_no, Value::int(2))));
        assert!(out.x_contains(
            &Tuple::new()
                .with(dept, Value::str("D2"))
                .with(budget, Value::int(200))
        ));
        // The dangling tuples keep ni in the other relation's columns: the
        // BROWN row has no BUDGET.
        assert!(!out.x_contains(
            &Tuple::new()
                .with(e_no, Value::int(2))
                .with(budget, Value::int(100))
        ));
    }

    #[test]
    fn union_join_reduces_to_equijoin_when_everything_matches() {
        let (_u, e_no, _name, dept, budget) = setup();
        let emp = XRelation::from_tuples([Tuple::new()
            .with(e_no, Value::int(1))
            .with(dept, Value::str("D1"))]);
        let dep = XRelation::from_tuples([Tuple::new()
            .with(dept, Value::str("D1"))
            .with(budget, Value::int(5))]);
        let uj = union_join(&emp, &dep, &attr_set([dept])).unwrap();
        let ej = equijoin(&emp, &dep, &attr_set([dept])).unwrap();
        assert_eq!(uj, ej);
    }

    #[test]
    fn union_join_with_empty_right_is_left() {
        let (_u, e_no, _name, dept, _budget) = setup();
        let emp = XRelation::from_tuples([Tuple::new()
            .with(e_no, Value::int(1))
            .with(dept, Value::str("D1"))]);
        let out = union_join(&emp, &XRelation::empty(), &attr_set([dept])).unwrap();
        assert_eq!(out, emp);
    }

    #[test]
    fn union_join_keeps_null_key_tuples_as_dangling() {
        // A tuple with ni in the join column never participates but is never
        // lost either — the information-preserving property.
        let (_u, e_no, _name, dept, budget) = setup();
        let emp = XRelation::from_tuples([
            Tuple::new().with(e_no, Value::int(1)), // DEPT is ni
            Tuple::new()
                .with(e_no, Value::int(2))
                .with(dept, Value::str("D1")),
        ]);
        let dep = XRelation::from_tuples([Tuple::new()
            .with(dept, Value::str("D1"))
            .with(budget, Value::int(5))]);
        let out = union_join(&emp, &dep, &attr_set([dept])).unwrap();
        assert!(out.x_contains(&Tuple::new().with(e_no, Value::int(1))));
        assert_eq!(out.len(), 2);
    }

    /// Regression: join keys are matched with the domain-aware numeric
    /// equality — `Int(2)` and `Float(2.0)` keys agree, so the pair joins
    /// instead of both rows dangling.
    #[test]
    fn union_join_normalized_numeric_keys_agree() {
        let (_u, e_no, name, dept, budget) = setup();
        let emp = XRelation::from_tuples([Tuple::new()
            .with(e_no, Value::int(1))
            .with(name, Value::str("SMITH"))
            .with(dept, Value::int(2))]);
        let dep = XRelation::from_tuples([Tuple::new()
            .with(dept, Value::float(2.0))
            .with(budget, Value::int(100))]);
        let out = union_join(&emp, &dep, &attr_set([dept])).unwrap();
        assert_eq!(out.len(), 1, "the keys agree, so nothing dangles: {out:?}");
        assert!(out.x_contains(
            &Tuple::new()
                .with(e_no, Value::int(1))
                .with(name, Value::str("SMITH"))
                .with(dept, Value::int(2))
                .with(budget, Value::int(100))
        ));
    }

    #[test]
    fn union_join_subsumes_both_operands() {
        let (_u, e_no, name, dept, budget) = setup();
        let emp = XRelation::from_tuples([
            Tuple::new()
                .with(e_no, Value::int(1))
                .with(dept, Value::str("D1")),
            Tuple::new()
                .with(e_no, Value::int(2))
                .with(name, Value::str("X")),
        ]);
        let dep = XRelation::from_tuples([
            Tuple::new()
                .with(dept, Value::str("D1"))
                .with(budget, Value::int(1)),
            Tuple::new().with(dept, Value::str("D3")),
        ]);
        let out = union_join(&emp, &dep, &attr_set([dept])).unwrap();
        assert!(out.contains(&emp), "no employee information is lost");
        assert!(out.contains(&dep), "no department information is lost");
    }
}
