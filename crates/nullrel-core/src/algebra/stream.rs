//! Operator input traits: the pull-based tuple stream physical operators
//! consume and produce.
//!
//! The tree-walk evaluator in [`super::expr`] materialises a whole
//! [`crate::xrel::XRelation`] at every node. Physical execution engines
//! (the `nullrel-exec` crate) instead thread tuples through a pipeline one
//! at a time; [`TupleStream`] is the interface every pipeline stage speaks.
//! It lives in the core crate so that algebra-level code can accept either
//! representation without depending on the engine.

use crate::error::CoreResult;
use crate::tuple::Tuple;

/// A pull-based stream of tuples. `next_tuple` returns `Ok(None)` when the
/// stream is exhausted; errors abort the pipeline.
pub trait TupleStream {
    /// Pulls the next tuple.
    fn next_tuple(&mut self) -> CoreResult<Option<Tuple>>;

    /// Drains the stream into a vector (mainly for tests and sinks).
    fn drain_all(&mut self) -> CoreResult<Vec<Tuple>> {
        let mut out = Vec::new();
        while let Some(t) = self.next_tuple()? {
            out.push(t);
        }
        Ok(out)
    }
}

/// The trivial stream over an owned vector of tuples.
#[derive(Debug, Clone, Default)]
pub struct VecStream {
    tuples: std::vec::IntoIter<Tuple>,
}

impl VecStream {
    /// A stream yielding `tuples` in order.
    pub fn new(tuples: Vec<Tuple>) -> Self {
        VecStream {
            tuples: tuples.into_iter(),
        }
    }
}

impl TupleStream for VecStream {
    fn next_tuple(&mut self) -> CoreResult<Option<Tuple>> {
        Ok(self.tuples.next())
    }
}

impl<S: TupleStream + ?Sized> TupleStream for Box<S> {
    fn next_tuple(&mut self) -> CoreResult<Option<Tuple>> {
        (**self).next_tuple()
    }
}

/// Sequential concatenation of two streams: yields every tuple of the first
/// stream, then every tuple of the second. This is the streaming shape of
/// the lattice union (4.6) — the representation of `R̂₁ ∪ R̂₂` is simply the
/// tuples of both representations, minimization being the sink's job.
pub struct ChainStream<A, B> {
    first: A,
    second: B,
    on_second: bool,
}

impl<A: TupleStream, B: TupleStream> ChainStream<A, B> {
    /// Chains `first` before `second`.
    pub fn new(first: A, second: B) -> Self {
        ChainStream {
            first,
            second,
            on_second: false,
        }
    }
}

impl<A: TupleStream, B: TupleStream> TupleStream for ChainStream<A, B> {
    fn next_tuple(&mut self) -> CoreResult<Option<Tuple>> {
        if !self.on_second {
            if let Some(t) = self.first.next_tuple()? {
                return Ok(Some(t));
            }
            self.on_second = true;
        }
        self.second.next_tuple()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::Universe;
    use crate::value::Value;

    #[test]
    fn vec_stream_yields_in_order_and_drains() {
        let mut u = Universe::new();
        let a = u.intern("A");
        let tuples: Vec<Tuple> = (0..3)
            .map(|i| Tuple::new().with(a, Value::int(i)))
            .collect();
        let mut stream = VecStream::new(tuples.clone());
        assert_eq!(stream.next_tuple().unwrap(), Some(tuples[0].clone()));
        assert_eq!(stream.drain_all().unwrap(), tuples[1..].to_vec());
        assert_eq!(stream.next_tuple().unwrap(), None);

        let mut boxed: Box<dyn TupleStream> = Box::new(VecStream::new(tuples.clone()));
        assert_eq!(boxed.drain_all().unwrap(), tuples);
    }

    #[test]
    fn chain_stream_concatenates_in_order() {
        let mut u = Universe::new();
        let a = u.intern("A");
        let first: Vec<Tuple> = (0..2)
            .map(|i| Tuple::new().with(a, Value::int(i)))
            .collect();
        let second: Vec<Tuple> = (2..5)
            .map(|i| Tuple::new().with(a, Value::int(i)))
            .collect();
        let mut chained = ChainStream::new(
            VecStream::new(first.clone()),
            VecStream::new(second.clone()),
        );
        let all = chained.drain_all().unwrap();
        let expected: Vec<Tuple> = first.into_iter().chain(second).collect();
        assert_eq!(all, expected);
        assert_eq!(chained.next_tuple().unwrap(), None);
    }
}
