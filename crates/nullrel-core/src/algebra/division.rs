//! Division (the Y-quotient) `R̂(÷Y)Ŝ` — Section 6.
//!
//! Division supplies the gateway to universal quantification over incomplete
//! information. The paper defines it algebraically (6.1)/(6.2):
//!
//! ```text
//! R̂(÷Y)Ŝ = R_Y[Y] − ((R_Y[Y] × Ŝ) − R_Y)[Y]
//! ```
//!
//! where `R_Y` is the set of `Y`-total tuples of `R`. When the scopes of
//! `R[Y]` and `Ŝ` are disjoint this is equivalent to the direct
//! characterisation (6.3)/(6.5): a `Y`-total tuple `y` qualifies iff for
//! every `z ∈̂ Ŝ` the join `y ∨ z` x-belongs to `R̂` — i.e. `Ŝ` is contained
//! in the `Z`-image of `y`.
//!
//! Both formulations are implemented ([`divide`] uses the algebraic one,
//! [`divide_direct`] the image-based one) and the test suite checks they
//! agree; experiment **E6** reproduces the paper's comparison with Codd's
//! TRUE and MAYBE divisions on the suppliers–parts relation (6.6).

use crate::error::{CoreError, CoreResult};
use crate::lattice::difference;
use crate::tuple::Tuple;
use crate::universe::AttrSet;
use crate::xrel::XRelation;

use super::product::product;
use super::project::project;

/// The Y-quotient `R̂(÷Y)Ŝ` computed by the algebraic definition (6.2).
///
/// The scope of the divisor `Ŝ` must be disjoint from `Y` ("the only case of
/// practical interest", per the paper); violations are reported as
/// [`CoreError::ScopeOverlap`].
pub fn divide(rel: &XRelation, y: &AttrSet, divisor: &XRelation) -> CoreResult<XRelation> {
    check_scopes(y, divisor)?;
    // R_Y: the Y-total tuples of R.
    let r_y = XRelation::from_tuples(rel.tuples().iter().filter(|t| t.is_total_on(y)).cloned());
    // R_Y[Y]
    let candidates = project(&r_y, y);
    if divisor.is_empty() {
        // Dividing by the empty relation: every Y-total candidate qualifies
        // vacuously, matching the classical convention.
        return Ok(candidates);
    }
    // (R_Y[Y] × S − R_Y)[Y]: candidates missing at least one divisor tuple.
    let paired = product(&candidates, divisor)?;
    let missing = difference(&paired, &r_y);
    let disqualified = project(&missing, y);
    Ok(difference(&candidates, &disqualified))
}

/// The Y-quotient computed directly from characterisation (6.3)/(6.5):
/// a `Y`-total tuple `y` of `R` qualifies iff for every divisor tuple `z`,
/// `y ∨ z ∈̂ R̂`.
pub fn divide_direct(rel: &XRelation, y: &AttrSet, divisor: &XRelation) -> CoreResult<XRelation> {
    check_scopes(y, divisor)?;
    let mut out: Vec<Tuple> = Vec::new();
    for r in rel.tuples() {
        if !r.is_total_on(y) {
            continue;
        }
        let y_value = r.project(y);
        let qualifies = divisor.tuples().iter().all(|z| match y_value.join(z) {
            Some(joined) => rel.x_contains(&joined),
            None => false,
        });
        if qualifies {
            out.push(y_value);
        }
    }
    Ok(XRelation::from_tuples(out))
}

/// The `Z`-image of a `Y`-value under `R̂` (definition 6.4): the projection
/// onto `Z` of the tuples of `R` whose `Y`-value dominates `y`.
pub fn image(rel: &XRelation, y_value: &Tuple, z: &AttrSet) -> XRelation {
    XRelation::from_tuples(
        rel.tuples()
            .iter()
            .filter(|r| {
                r.project(&y_value.defined_attrs())
                    .more_informative_than(y_value)
            })
            .map(|r| r.project(z)),
    )
}

fn check_scopes(y: &AttrSet, divisor: &XRelation) -> CoreResult<()> {
    let divisor_scope = divisor.scope();
    let shared: Vec<_> = y.intersection(&divisor_scope).copied().collect();
    if shared.is_empty() {
        Ok(())
    } else {
        Err(CoreError::ScopeOverlap { shared })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::select::select_attr_const;
    use crate::tvl::CompareOp;
    use crate::universe::{attr_set, AttrId, Universe};
    use crate::value::Value;

    /// The PARTS–SUPPLIERS relation of display (6.6).
    fn ps() -> (Universe, AttrId, AttrId, XRelation) {
        let mut u = Universe::new();
        let s = u.intern("S#");
        let p = u.intern("P#");
        let t = |sv: Option<&str>, pv: Option<&str>| {
            Tuple::new()
                .with_opt(s, sv.map(Value::str))
                .with_opt(p, pv.map(Value::str))
        };
        let rel = XRelation::from_tuples([
            t(Some("s1"), Some("p1")),
            t(Some("s1"), Some("p2")),
            t(Some("s1"), None),
            t(Some("s2"), Some("p1")),
            t(Some("s2"), None),
            t(Some("s3"), None),
            t(Some("s4"), Some("p4")),
        ]);
        (u, s, p, rel)
    }

    /// Section 6: "Find each supplier who supplies every part supplied by
    /// s2" — the paper's answer A₃ = {s1, s2}.
    #[test]
    fn paper_division_example_a3() {
        let (_u, s, p, rel) = ps();
        let p_s2 = project(
            &select_attr_const(&rel, s, CompareOp::Eq, Value::str("s2")).unwrap(),
            &attr_set([p]),
        );
        let a3 = divide(&rel, &attr_set([s]), &p_s2).unwrap();
        assert_eq!(a3.len(), 2);
        assert!(a3.x_contains(&Tuple::new().with(s, Value::str("s1"))));
        assert!(a3.x_contains(&Tuple::new().with(s, Value::str("s2"))));
        assert!(!a3.x_contains(&Tuple::new().with(s, Value::str("s3"))));
        assert!(!a3.x_contains(&Tuple::new().with(s, Value::str("s4"))));
    }

    #[test]
    fn both_division_formulations_agree_on_the_paper_example() {
        let (_u, s, p, rel) = ps();
        let p_s2 = project(
            &select_attr_const(&rel, s, CompareOp::Eq, Value::str("s2")).unwrap(),
            &attr_set([p]),
        );
        let alg = divide(&rel, &attr_set([s]), &p_s2).unwrap();
        let direct = divide_direct(&rel, &attr_set([s]), &p_s2).unwrap();
        assert_eq!(alg, direct);
    }

    #[test]
    fn dividing_by_larger_part_sets_shrinks_the_answer() {
        let (_u, s, p, rel) = ps();
        // Parts supplied by s1 for sure: {p1, p2}.
        let p_s1 = project(
            &select_attr_const(&rel, s, CompareOp::Eq, Value::str("s1")).unwrap(),
            &attr_set([p]),
        );
        assert_eq!(p_s1.len(), 2);
        let a = divide(&rel, &attr_set([s]), &p_s1).unwrap();
        // Only s1 supplies both p1 and p2 for sure.
        assert_eq!(a.len(), 1);
        assert!(a.x_contains(&Tuple::new().with(s, Value::str("s1"))));
    }

    #[test]
    fn division_avoids_the_paradox_of_codds_true_division() {
        // The paper's paradox: under Codd's TRUE division, s2 does not supply
        // all the parts s2 supplies. Under the Y-quotient, every supplier
        // trivially supplies every part it supplies for sure.
        let (_u, s, p, rel) = ps();
        for supplier in ["s1", "s2", "s3", "s4"] {
            let parts = project(
                &select_attr_const(&rel, s, CompareOp::Eq, Value::str(supplier)).unwrap(),
                &attr_set([p]),
            );
            let quotient = divide(&rel, &attr_set([s]), &parts).unwrap();
            assert!(
                quotient.x_contains(&Tuple::new().with(s, Value::str(supplier))),
                "{supplier} must supply every part it supplies for sure"
            );
        }
    }

    #[test]
    fn division_by_empty_divisor_returns_all_y_totals() {
        let (_u, s, _p, rel) = ps();
        let all = divide(&rel, &attr_set([s]), &XRelation::empty()).unwrap();
        assert_eq!(all.len(), 4);
        let direct = divide_direct(&rel, &attr_set([s]), &XRelation::empty()).unwrap();
        assert_eq!(all, direct);
    }

    #[test]
    fn division_rejects_overlapping_scopes() {
        let (_u, s, _p, rel) = ps();
        let divisor = XRelation::from_tuples([Tuple::new().with(s, Value::str("s1"))]);
        assert!(matches!(
            divide(&rel, &attr_set([s]), &divisor),
            Err(CoreError::ScopeOverlap { .. })
        ));
        assert!(divide_direct(&rel, &attr_set([s]), &divisor).is_err());
    }

    #[test]
    fn non_y_total_tuples_do_not_contribute() {
        let (_u, s, p, _) = ps();
        // A relation where one tuple has a null S#: it can never appear in
        // the quotient.
        let rel = XRelation::from_tuples([
            Tuple::new().with(p, Value::str("p1")), // S# is ni
            Tuple::new()
                .with(s, Value::str("s1"))
                .with(p, Value::str("p1")),
        ]);
        let divisor = XRelation::from_tuples([Tuple::new().with(p, Value::str("p1"))]);
        let q = divide(&rel, &attr_set([s]), &divisor).unwrap();
        assert_eq!(q.len(), 1);
        assert!(q.x_contains(&Tuple::new().with(s, Value::str("s1"))));
    }

    #[test]
    fn image_collects_z_values_of_a_y_value() {
        let (_u, s, p, rel) = ps();
        let y = Tuple::new().with(s, Value::str("s1"));
        let img = image(&rel, &y, &attr_set([p]));
        assert_eq!(img.len(), 2, "s1's sure parts are p1 and p2");
        // Characterisation (6.5): s1 qualifies for P_s2 because P_s2 ⊑ image.
        let p_s2 = XRelation::from_tuples([Tuple::new().with(p, Value::str("p1"))]);
        assert!(img.contains(&p_s2));
    }

    #[test]
    fn classical_division_recovered_on_total_relations() {
        // Section 7: on total relations the Y-quotient reduces to the usual
        // division.
        let mut u = Universe::new();
        let s = u.intern("S#");
        let p = u.intern("P#");
        let t = |sv: &str, pv: &str| Tuple::new().with(s, Value::str(sv)).with(p, Value::str(pv));
        let rel =
            XRelation::from_tuples([t("s1", "p1"), t("s1", "p2"), t("s2", "p1"), t("s3", "p2")]);
        let divisor = XRelation::from_tuples([
            Tuple::new().with(p, Value::str("p1")),
            Tuple::new().with(p, Value::str("p2")),
        ]);
        let q = divide(&rel, &attr_set([s]), &divisor).unwrap();
        assert_eq!(q.len(), 1);
        assert!(q.x_contains(&Tuple::new().with(s, Value::str("s1"))));
        assert_eq!(q, divide_direct(&rel, &attr_set([s]), &divisor).unwrap());
    }
}
