//! Selection: `R[AθB]`, `R[Aθk]`, and general predicate selection.
//!
//! Definitions (5.1) and (5.2): the result contains the tuples that are
//! total on the compared attributes and whose comparison holds. With the
//! three-valued comparison semantics this is exactly "keep the tuples where
//! the predicate evaluates to TRUE" — `ni` and FALSE tuples are discarded
//! alike, which is the lower-bound (`‖Q‖∗`) discipline of Section 5.
//!
//! When the operand is in minimal form the result is too (a subset of a
//! minimal representation is minimal), so no re-minimisation is performed.

use crate::error::{CoreError, CoreResult};
use crate::predicate::Predicate;
use crate::tuple::Tuple;
use crate::tvl::CompareOp;
use crate::universe::AttrId;
use crate::value::Value;
use crate::xrel::XRelation;

/// General selection: keep the tuples for which `predicate` evaluates to
/// TRUE under the three-valued semantics.
pub fn select(rel: &XRelation, predicate: &Predicate) -> CoreResult<XRelation> {
    let mut kept: Vec<Tuple> = Vec::new();
    for t in rel.tuples() {
        if predicate.eval(t)?.is_true() {
            kept.push(t.clone());
        }
    }
    Ok(XRelation::from_minimal_unchecked(kept))
}

/// Definition (5.2): `R[Aθk]` — selection against a constant. The constant
/// must be a domain value (`ni` is unrepresentable here by construction).
pub fn select_attr_const(
    rel: &XRelation,
    attr: AttrId,
    op: CompareOp,
    constant: Value,
) -> CoreResult<XRelation> {
    select(rel, &Predicate::attr_const(attr, op, constant))
}

/// Definition (5.1): `R[AθB]` — selection comparing two attributes of the
/// same tuple. The two attributes must be distinct (comparing an attribute
/// with itself is legal in the paper but useless; we allow it).
pub fn select_attr_attr(
    rel: &XRelation,
    left: AttrId,
    op: CompareOp,
    right: AttrId,
) -> CoreResult<XRelation> {
    select(rel, &Predicate::attr_attr(left, op, right))
}

/// The MAYBE-flavoured selection: keep tuples whose predicate evaluates to
/// `ni`. Provided for completeness and used by the Codd-baseline comparison
/// experiments; the paper argues this variant has little practical value
/// under the `ni` interpretation.
pub fn select_maybe(rel: &XRelation, predicate: &Predicate) -> CoreResult<XRelation> {
    let mut kept: Vec<Tuple> = Vec::new();
    for t in rel.tuples() {
        if predicate.eval(t)?.is_ni() {
            kept.push(t.clone());
        }
    }
    Ok(XRelation::from_minimal_unchecked(kept))
}

/// Validates that a selection constant is drawn from the attribute's domain
/// when the universe records one. Exposed for the query front-end so it can
/// reject constants that violate the schema before planning.
pub fn check_constant_in_domain(
    universe: &crate::universe::Universe,
    attr: AttrId,
    constant: &Value,
) -> CoreResult<()> {
    if let Some(domain) = universe.domain(attr) {
        if !domain.contains(constant) {
            return Err(CoreError::NullConstant);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::{Domain, Universe};

    fn ps() -> (Universe, AttrId, AttrId, XRelation) {
        let mut u = Universe::new();
        let s = u.intern("S#");
        let p = u.intern("P#");
        let t = |sv: Option<&str>, pv: Option<&str>| {
            Tuple::new()
                .with_opt(s, sv.map(Value::str))
                .with_opt(p, pv.map(Value::str))
        };
        // The PS relation of display (6.6).
        let rel = XRelation::from_tuples([
            t(Some("s1"), Some("p1")),
            t(Some("s1"), Some("p2")),
            t(Some("s1"), None),
            t(Some("s2"), Some("p1")),
            t(Some("s2"), None),
            t(Some("s3"), None),
            t(Some("s4"), Some("p4")),
        ]);
        (u, s, p, rel)
    }

    #[test]
    fn constant_selection_requires_totality() {
        let (_u, s, p, rel) = ps();
        // PS[S# = s2]: the tuple (s2, −) was absorbed by (s2, p1) during
        // minimisation, so a single tuple remains.
        let sel = select_attr_const(&rel, s, CompareOp::Eq, Value::str("s2")).unwrap();
        assert_eq!(sel.len(), 1);
        assert!(sel.x_contains(
            &Tuple::new()
                .with(s, Value::str("s2"))
                .with(p, Value::str("p1"))
        ));
        // PS[P# = p9] is empty; null P# tuples never qualify.
        let none = select_attr_const(&rel, p, CompareOp::Eq, Value::str("p9")).unwrap();
        assert!(none.is_empty());
    }

    #[test]
    fn selection_on_minimal_operand_is_minimal() {
        let (_u, s, _p, rel) = ps();
        let sel = select_attr_const(&rel, s, CompareOp::Ne, Value::str("s4")).unwrap();
        assert!(crate::xrel::is_antichain(sel.tuples()));
    }

    #[test]
    fn attr_attr_selection() {
        let mut u = Universe::new();
        let a = u.intern("A");
        let b = u.intern("B");
        let rel = XRelation::from_tuples([
            Tuple::new().with(a, Value::int(1)).with(b, Value::int(1)),
            Tuple::new().with(a, Value::int(1)).with(b, Value::int(2)),
            Tuple::new().with(a, Value::int(3)),
        ]);
        let eq = select_attr_attr(&rel, a, CompareOp::Eq, b).unwrap();
        assert_eq!(eq.len(), 1);
        let lt = select_attr_attr(&rel, a, CompareOp::Lt, b).unwrap();
        assert_eq!(lt.len(), 1);
        // The tuple with null B never qualifies in either version.
        assert!(!eq.x_contains(&Tuple::new().with(a, Value::int(3))));
    }

    #[test]
    fn select_maybe_returns_the_ni_band() {
        let (_u, s, p, rel) = ps();
        let pred = Predicate::attr_const(p, CompareOp::Eq, "p1");
        let sure = select(&rel, &pred).unwrap();
        let maybe = select_maybe(&rel, &pred).unwrap();
        assert_eq!(sure.len(), 2, "s1 and s2 supply p1 for sure");
        // Only s3 retains a null P# after minimisation.
        assert_eq!(maybe.len(), 1);
        assert!(maybe.x_contains(&Tuple::new().with(s, Value::str("s3"))));
    }

    #[test]
    fn predicate_selection_composes() {
        let (_u, s, p, rel) = ps();
        let pred = Predicate::attr_const(s, CompareOp::Eq, "s1").and(Predicate::attr_const(
            p,
            CompareOp::Ne,
            "p1",
        ));
        let out = select(&rel, &pred).unwrap();
        assert_eq!(out.len(), 1);
        assert!(out.x_contains(
            &Tuple::new()
                .with(s, Value::str("s1"))
                .with(p, Value::str("p2"))
        ));
    }

    #[test]
    fn type_errors_propagate() {
        let (_u, s, _p, rel) = ps();
        let pred = Predicate::attr_const(s, CompareOp::Gt, 12);
        assert!(select(&rel, &pred).is_err());
    }

    #[test]
    fn constant_domain_check() {
        let mut u = Universe::new();
        let sex = u.intern_with_domain(
            "SEX",
            Domain::Enumerated(vec![Value::str("M"), Value::str("F")]),
        );
        assert!(check_constant_in_domain(&u, sex, &Value::str("F")).is_ok());
        assert!(check_constant_in_domain(&u, sex, &Value::str("X")).is_err());
        // Attributes without a recorded domain accept anything.
        let free = u.intern("FREE");
        assert!(check_constant_in_domain(&u, free, &Value::int(1)).is_ok());
    }

    #[test]
    fn selecting_from_empty_relation() {
        let mut u = Universe::new();
        let a = u.intern("A");
        let out = select_attr_const(&XRelation::empty(), a, CompareOp::Eq, Value::int(1)).unwrap();
        assert!(out.is_empty());
    }
}
