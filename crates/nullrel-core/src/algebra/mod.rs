//! The generalized relational algebra of Sections 5–6.
//!
//! Every operator of the complete relational algebra — union, difference,
//! selection, Cartesian product, projection (Section 7) — plus the derived
//! θ-joins, the equijoin `R₁(·X)R₂`, the information-preserving
//! **union-join** `R₁(∗X)R₂`, and the **division** (Y-quotient) `R̂(÷Y)Ŝ`
//! is defined on x-relations. The set operators live in
//! [`crate::lattice`]; this module provides the tuple-structural operators
//! and a composable [`expr::Expr`] logical-plan tree.
//!
//! All operators preserve minimality where the paper says they do
//! (selection, product, joins on minimal operands) and re-minimise where it
//! warns they may not (projection, union-join).

pub mod division;
pub mod expr;
pub mod join;
pub mod product;
pub mod project;
pub mod rename;
pub mod select;
pub mod stream;
pub mod union_join;

pub use division::{divide, divide_direct};
pub use expr::{Expr, NoSource, RelationSource};
pub use join::{equijoin, equijoin_parts, normalize_on, theta_join, EquiJoinParts};
pub use product::product;
pub use project::project;
pub use rename::rename;
pub use select::{select, select_attr_attr, select_attr_const};
pub use stream::{ChainStream, TupleStream, VecStream};
pub use union_join::union_join;
