//! A composable logical-plan tree over the generalized algebra.
//!
//! The operators of Sections 4–6 are exposed as free functions elsewhere in
//! this crate; [`Expr`] packages them as a tree so that query front-ends (the
//! QUEL subset in `nullrel-query`) and ad-hoc programs can build, inspect,
//! explain, and evaluate whole relational-algebra expressions. Closure under
//! the complete algebra (Section 7) means every node evaluates to an
//! [`XRelation`] — there are no partial operators besides the scope checks
//! that also exist in the paper.

use std::collections::BTreeMap;
use std::collections::HashMap;

use crate::error::{CoreError, CoreResult};
use crate::predicate::Predicate;
use crate::tvl::CompareOp;
use crate::universe::{AttrId, AttrSet, Universe};
use crate::xrel::XRelation;

use super::division::divide;
use super::join::{equijoin, theta_join};
use super::product::product;
use super::project::project;
use super::rename::rename;
use super::select::select;
use super::union_join::union_join;
use crate::lattice;

/// A source of named base relations for expression evaluation.
pub trait RelationSource {
    /// Returns the named base relation, if it exists.
    fn relation(&self, name: &str) -> Option<XRelation>;
}

impl RelationSource for HashMap<String, XRelation> {
    fn relation(&self, name: &str) -> Option<XRelation> {
        self.get(name).cloned()
    }
}

/// The empty source: only literal relations can be evaluated against it.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoSource;

impl RelationSource for NoSource {
    fn relation(&self, _name: &str) -> Option<XRelation> {
        None
    }
}

/// A relational-algebra expression over x-relations.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal x-relation embedded in the plan.
    Literal(XRelation),
    /// A reference to a named base relation, resolved through the
    /// [`RelationSource`] at evaluation time.
    Named(String),
    /// Selection by a predicate (Section 5, lower-bound discipline).
    Select {
        /// Input expression.
        input: Box<Expr>,
        /// Three-valued predicate; only TRUE tuples are kept.
        predicate: Predicate,
    },
    /// Projection `R[X]` (5.5).
    Project {
        /// Input expression.
        input: Box<Expr>,
        /// Attributes to keep.
        attrs: AttrSet,
    },
    /// Cartesian product (5.3).
    Product(Box<Expr>, Box<Expr>),
    /// θ-join (5.4).
    ThetaJoin {
        /// Left input.
        left: Box<Expr>,
        /// Attribute of the left input.
        left_attr: AttrId,
        /// Comparison operator.
        op: CompareOp,
        /// Attribute of the right input.
        right_attr: AttrId,
        /// Right input.
        right: Box<Expr>,
    },
    /// Equijoin on a shared attribute set `X`.
    EquiJoin {
        /// Left input.
        left: Box<Expr>,
        /// Right input.
        right: Box<Expr>,
        /// Join attributes.
        on: AttrSet,
    },
    /// Union-join (outer join) on `X`.
    UnionJoin {
        /// Left input.
        left: Box<Expr>,
        /// Right input.
        right: Box<Expr>,
        /// Join attributes.
        on: AttrSet,
    },
    /// Division `R̂(÷Y)Ŝ` (6.2).
    Divide {
        /// Dividend.
        input: Box<Expr>,
        /// Quotient attributes `Y`.
        y: AttrSet,
        /// Divisor.
        divisor: Box<Expr>,
    },
    /// Lattice union (4.6).
    Union(Box<Expr>, Box<Expr>),
    /// Lattice x-intersection (4.7).
    XIntersect(Box<Expr>, Box<Expr>),
    /// Lattice difference (4.8).
    Difference(Box<Expr>, Box<Expr>),
    /// Attribute renaming.
    Rename {
        /// Input expression.
        input: Box<Expr>,
        /// Source → target attribute mapping.
        mapping: BTreeMap<AttrId, AttrId>,
    },
}

impl Expr {
    /// A literal x-relation node.
    pub fn literal(rel: XRelation) -> Expr {
        Expr::Literal(rel)
    }

    /// A named base-relation node.
    pub fn named(name: impl Into<String>) -> Expr {
        Expr::Named(name.into())
    }

    /// Wraps `self` in a selection.
    #[must_use]
    pub fn select(self, predicate: Predicate) -> Expr {
        Expr::Select {
            input: Box::new(self),
            predicate,
        }
    }

    /// Wraps `self` in a projection.
    #[must_use]
    pub fn project(self, attrs: AttrSet) -> Expr {
        Expr::Project {
            input: Box::new(self),
            attrs,
        }
    }

    /// Cartesian product with another expression.
    #[must_use]
    pub fn product(self, other: Expr) -> Expr {
        Expr::Product(Box::new(self), Box::new(other))
    }

    /// Equijoin with another expression on `X`.
    #[must_use]
    pub fn equijoin(self, other: Expr, on: AttrSet) -> Expr {
        Expr::EquiJoin {
            left: Box::new(self),
            right: Box::new(other),
            on,
        }
    }

    /// Union-join with another expression on `X`.
    #[must_use]
    pub fn union_join(self, other: Expr, on: AttrSet) -> Expr {
        Expr::UnionJoin {
            left: Box::new(self),
            right: Box::new(other),
            on,
        }
    }

    /// Division by another expression over `Y`.
    #[must_use]
    pub fn divide(self, y: AttrSet, divisor: Expr) -> Expr {
        Expr::Divide {
            input: Box::new(self),
            y,
            divisor: Box::new(divisor),
        }
    }

    /// Lattice union with another expression.
    #[must_use]
    pub fn union(self, other: Expr) -> Expr {
        Expr::Union(Box::new(self), Box::new(other))
    }

    /// Lattice x-intersection with another expression.
    #[must_use]
    pub fn x_intersect(self, other: Expr) -> Expr {
        Expr::XIntersect(Box::new(self), Box::new(other))
    }

    /// Lattice difference with another expression.
    #[must_use]
    pub fn difference(self, other: Expr) -> Expr {
        Expr::Difference(Box::new(self), Box::new(other))
    }

    /// Attribute renaming.
    #[must_use]
    pub fn rename(self, mapping: BTreeMap<AttrId, AttrId>) -> Expr {
        Expr::Rename {
            input: Box::new(self),
            mapping,
        }
    }

    /// Evaluates the expression against a source of named relations.
    pub fn eval<S: RelationSource>(&self, source: &S) -> CoreResult<XRelation> {
        match self {
            Expr::Literal(rel) => Ok(rel.clone()),
            Expr::Named(name) => source
                .relation(name)
                .ok_or_else(|| CoreError::UnknownRelation(name.clone())),
            Expr::Select { input, predicate } => select(&input.eval(source)?, predicate),
            Expr::Project { input, attrs } => Ok(project(&input.eval(source)?, attrs)),
            Expr::Product(a, b) => product(&a.eval(source)?, &b.eval(source)?),
            Expr::ThetaJoin {
                left,
                left_attr,
                op,
                right_attr,
                right,
            } => theta_join(
                &left.eval(source)?,
                *left_attr,
                *op,
                *right_attr,
                &right.eval(source)?,
            ),
            Expr::EquiJoin { left, right, on } => {
                equijoin(&left.eval(source)?, &right.eval(source)?, on)
            }
            Expr::UnionJoin { left, right, on } => {
                union_join(&left.eval(source)?, &right.eval(source)?, on)
            }
            Expr::Divide { input, y, divisor } => {
                divide(&input.eval(source)?, y, &divisor.eval(source)?)
            }
            Expr::Union(a, b) => Ok(lattice::union(&a.eval(source)?, &b.eval(source)?)),
            Expr::XIntersect(a, b) => {
                Ok(lattice::x_intersection(&a.eval(source)?, &b.eval(source)?))
            }
            Expr::Difference(a, b) => Ok(lattice::difference(&a.eval(source)?, &b.eval(source)?)),
            Expr::Rename { input, mapping } => rename(&input.eval(source)?, mapping),
        }
    }

    /// Renders an indented explanation of the plan with attribute names
    /// resolved through the universe.
    pub fn explain(&self, universe: &Universe) -> String {
        let mut out = String::new();
        self.explain_into(universe, 0, &mut out);
        out
    }

    fn explain_into(&self, universe: &Universe, depth: usize, out: &mut String) {
        let indent = "  ".repeat(depth);
        let line = match self {
            Expr::Literal(rel) => format!("Literal[{} tuples]", rel.len()),
            Expr::Named(name) => format!("Scan {name}"),
            Expr::Select { predicate, .. } => {
                format!("Select {}", predicate.render(universe))
            }
            Expr::Project { attrs, .. } => {
                format!("Project [{}]", universe.render_attrs(attrs))
            }
            Expr::Product(..) => "Product".to_owned(),
            Expr::ThetaJoin {
                left_attr,
                op,
                right_attr,
                ..
            } => format!(
                "ThetaJoin {} {} {}",
                universe.name(*left_attr).unwrap_or("?"),
                op,
                universe.name(*right_attr).unwrap_or("?")
            ),
            Expr::EquiJoin { on, .. } => {
                format!("EquiJoin on [{}]", universe.render_attrs(on))
            }
            Expr::UnionJoin { on, .. } => {
                format!("UnionJoin on [{}]", universe.render_attrs(on))
            }
            Expr::Divide { y, .. } => format!("Divide over [{}]", universe.render_attrs(y)),
            Expr::Union(..) => "Union".to_owned(),
            Expr::XIntersect(..) => "XIntersect".to_owned(),
            Expr::Difference(..) => "Difference".to_owned(),
            Expr::Rename { mapping, .. } => format!("Rename ({} attrs)", mapping.len()),
        };
        out.push_str(&indent);
        out.push_str(&line);
        out.push('\n');
        for child in self.children() {
            child.explain_into(universe, depth + 1, out);
        }
    }

    /// The direct children of this node.
    pub fn children(&self) -> Vec<&Expr> {
        match self {
            Expr::Literal(_) | Expr::Named(_) => Vec::new(),
            Expr::Select { input, .. }
            | Expr::Project { input, .. }
            | Expr::Rename { input, .. } => vec![input],
            Expr::Product(a, b)
            | Expr::Union(a, b)
            | Expr::XIntersect(a, b)
            | Expr::Difference(a, b) => vec![a, b],
            Expr::ThetaJoin { left, right, .. }
            | Expr::EquiJoin { left, right, .. }
            | Expr::UnionJoin { left, right, .. } => vec![left, right],
            Expr::Divide { input, divisor, .. } => vec![input, divisor],
        }
    }

    /// The names of base relations referenced anywhere in the expression.
    pub fn referenced_relations(&self) -> Vec<String> {
        let mut names = Vec::new();
        self.collect_names(&mut names);
        names.sort();
        names.dedup();
        names
    }

    fn collect_names(&self, out: &mut Vec<String>) {
        if let Expr::Named(name) = self {
            out.push(name.clone());
        }
        for child in self.children() {
            child.collect_names(out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Tuple;
    use crate::universe::attr_set;
    use crate::value::Value;

    fn ps_catalog() -> (Universe, AttrId, AttrId, HashMap<String, XRelation>) {
        let mut u = Universe::new();
        let s = u.intern("S#");
        let p = u.intern("P#");
        let t = |sv: Option<&str>, pv: Option<&str>| {
            Tuple::new()
                .with_opt(s, sv.map(Value::str))
                .with_opt(p, pv.map(Value::str))
        };
        let rel = XRelation::from_tuples([
            t(Some("s1"), Some("p1")),
            t(Some("s1"), Some("p2")),
            t(Some("s2"), Some("p1")),
            t(Some("s2"), None),
            t(Some("s3"), None),
            t(Some("s4"), Some("p4")),
        ]);
        let mut catalog = HashMap::new();
        catalog.insert("PS".to_owned(), rel);
        (u, s, p, catalog)
    }

    /// Query Q of Section 6 expressed as an expression tree:
    /// PS (÷ S#) (PS[S# = s2][P#]).
    #[test]
    fn division_query_as_expression() {
        let (_u, s, p, catalog) = ps_catalog();
        let p_s2 = Expr::named("PS")
            .select(Predicate::attr_const(s, CompareOp::Eq, "s2"))
            .project(attr_set([p]));
        let query = Expr::named("PS").divide(attr_set([s]), p_s2);
        let result = query.eval(&catalog).unwrap();
        assert_eq!(result.len(), 2);
        assert!(result.x_contains(&Tuple::new().with(s, Value::str("s1"))));
        assert!(result.x_contains(&Tuple::new().with(s, Value::str("s2"))));
    }

    /// Query Q₄ of Section 6: parts supplied by s1 but not by s2 = {p2}.
    #[test]
    fn difference_query_as_expression() {
        let (_u, s, p, catalog) = ps_catalog();
        let by_s1 = Expr::named("PS")
            .select(Predicate::attr_const(s, CompareOp::Eq, "s1"))
            .project(attr_set([p]));
        let by_s2 = Expr::named("PS")
            .select(Predicate::attr_const(s, CompareOp::Eq, "s2"))
            .project(attr_set([p]));
        let q4 = by_s1.difference(by_s2);
        let result = q4.eval(&catalog).unwrap();
        assert_eq!(result.len(), 1);
        assert!(result.x_contains(&Tuple::new().with(p, Value::str("p2"))));
    }

    #[test]
    fn unknown_relation_is_an_error() {
        let (_u, _s, _p, catalog) = ps_catalog();
        let err = Expr::named("MISSING").eval(&catalog).unwrap_err();
        assert!(matches!(err, CoreError::UnknownRelation(_)));
        assert!(Expr::named("PS").eval(&NoSource).is_err());
    }

    #[test]
    fn literal_and_set_operations() {
        let (_u, s, _p, catalog) = ps_catalog();
        let lit = XRelation::from_tuples([Tuple::new().with(s, Value::str("s9"))]);
        let expr = Expr::literal(lit.clone()).union(Expr::literal(XRelation::empty()));
        assert_eq!(expr.eval(&catalog).unwrap(), lit);
        let meet = Expr::literal(lit.clone()).x_intersect(Expr::named("PS"));
        assert!(meet.eval(&catalog).unwrap().is_empty());
    }

    #[test]
    fn explain_and_referenced_relations() {
        let (u, s, p, _catalog) = ps_catalog();
        let expr = Expr::named("PS")
            .select(Predicate::attr_const(s, CompareOp::Eq, "s2"))
            .project(attr_set([p]))
            .union(Expr::named("SPARE"));
        let plan = expr.explain(&u);
        assert!(plan.contains("Union"));
        assert!(plan.contains("Project [P#]"));
        assert!(plan.contains("Scan PS"));
        assert_eq!(
            expr.referenced_relations(),
            vec!["PS".to_owned(), "SPARE".to_owned()]
        );
    }

    #[test]
    fn join_and_rename_nodes_evaluate() {
        let mut u = Universe::new();
        let e_no = u.intern("E#");
        let mgr = u.intern("MGR#");
        let m_e_no = u.intern("m.E#");
        let emp = XRelation::from_tuples([
            Tuple::new()
                .with(e_no, Value::int(1))
                .with(mgr, Value::int(2)),
            Tuple::new().with(e_no, Value::int(2)),
        ]);
        let mut catalog = HashMap::new();
        catalog.insert("EMP".to_owned(), emp);

        // Self theta-join: employees whose MGR# equals another employee's E#,
        // after renaming the second copy's attributes.
        let renamed = Expr::named("EMP")
            .project(attr_set([e_no]))
            .rename([(e_no, m_e_no)].into_iter().collect());
        let expr = Expr::ThetaJoin {
            left: Box::new(Expr::named("EMP")),
            left_attr: mgr,
            op: CompareOp::Eq,
            right_attr: m_e_no,
            right: Box::new(renamed),
        };
        let result = expr.eval(&catalog).unwrap();
        assert_eq!(result.len(), 1);
        assert!(result.x_contains(
            &Tuple::new()
                .with(e_no, Value::int(1))
                .with(mgr, Value::int(2))
                .with(m_e_no, Value::int(2))
        ));

        // Equijoin and union-join nodes also evaluate.
        let dept = u.intern("DEPT");
        let d = XRelation::from_tuples([Tuple::new()
            .with(e_no, Value::int(1))
            .with(dept, Value::str("D1"))]);
        catalog.insert("ASSIGN".to_owned(), d);
        let ej = Expr::named("EMP").equijoin(Expr::named("ASSIGN"), attr_set([e_no]));
        assert_eq!(ej.eval(&catalog).unwrap().len(), 1);
        let uj = Expr::named("EMP").union_join(Expr::named("ASSIGN"), attr_set([e_no]));
        assert_eq!(uj.eval(&catalog).unwrap().len(), 2);
    }

    #[test]
    fn children_cover_all_variants() {
        let (_u, s, p, _catalog) = ps_catalog();
        let expr = Expr::named("PS")
            .select(Predicate::attr_const(s, CompareOp::Eq, "s1"))
            .project(attr_set([p]));
        assert_eq!(expr.children().len(), 1);
        let prod = Expr::named("A").product(Expr::named("B"));
        assert_eq!(prod.children().len(), 2);
        let lit = Expr::literal(XRelation::empty());
        assert!(lit.children().is_empty());
    }
}
