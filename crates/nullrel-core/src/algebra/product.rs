//! Cartesian product (definition 5.3).
//!
//! `R₁ × R₂ = ⌈r₁ ∨ r₂ | r₁ ∈ R₁ and r₂ ∈ R₂ are not null⌉`. The operands
//! must have disjoint scopes (otherwise the tuple join could be undefined and
//! the operation would silently drop pairs); overlapping scopes are reported
//! as [`CoreError::ScopeOverlap`], and the [`rename`](crate::algebra::rename)
//! operator can be used to make scopes disjoint first.

use crate::error::{CoreError, CoreResult};
use crate::tuple::Tuple;
use crate::xrel::XRelation;

/// The Cartesian product `R₁ × R₂` of two x-relations with disjoint scopes.
pub fn product(a: &XRelation, b: &XRelation) -> CoreResult<XRelation> {
    let scope_a = a.scope();
    let scope_b = b.scope();
    let shared: Vec<_> = scope_a.intersection(&scope_b).copied().collect();
    if !shared.is_empty() {
        return Err(CoreError::ScopeOverlap { shared });
    }
    let mut out: Vec<Tuple> = Vec::with_capacity(a.len() * b.len());
    for r1 in a.tuples() {
        for r2 in b.tuples() {
            // Minimal representations never contain the null tuple, and the
            // scopes are disjoint, so the join always exists.
            let joined = r1
                .join(r2)
                .ok_or_else(|| CoreError::Invariant("disjoint-scope join failed".into()))?;
            out.push(joined);
        }
    }
    // Products of minimal operands stay minimal: two product tuples can only
    // be comparable if both their factors are, which minimality rules out.
    Ok(XRelation::from_minimal_unchecked(out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::{AttrId, Universe};
    use crate::value::Value;

    fn setup() -> (Universe, AttrId, AttrId, AttrId) {
        let mut u = Universe::new();
        let s = u.intern("S#");
        let p = u.intern("P#");
        let c = u.intern("CITY");
        (u, s, p, c)
    }

    #[test]
    fn product_of_disjoint_scopes() {
        let (_u, s, p, c) = setup();
        let suppliers = XRelation::from_tuples([
            Tuple::new().with(s, Value::str("s1")),
            Tuple::new().with(s, Value::str("s2")),
        ]);
        let parts = XRelation::from_tuples([
            Tuple::new()
                .with(p, Value::str("p1"))
                .with(c, Value::str("NYC")),
            Tuple::new().with(p, Value::str("p2")),
        ]);
        let prod = product(&suppliers, &parts).unwrap();
        assert_eq!(prod.len(), 4);
        assert!(prod.x_contains(
            &Tuple::new()
                .with(s, Value::str("s2"))
                .with(p, Value::str("p1"))
                .with(c, Value::str("NYC"))
        ));
    }

    #[test]
    fn product_with_overlapping_scope_is_rejected() {
        let (_u, s, p, _c) = setup();
        let a = XRelation::from_tuples([Tuple::new().with(s, Value::str("s1"))]);
        let b = XRelation::from_tuples([Tuple::new()
            .with(s, Value::str("s1"))
            .with(p, Value::str("p1"))]);
        assert!(matches!(
            product(&a, &b),
            Err(CoreError::ScopeOverlap { .. })
        ));
    }

    #[test]
    fn product_with_empty_operand_is_empty() {
        let (_u, s, _p, _c) = setup();
        let a = XRelation::from_tuples([Tuple::new().with(s, Value::str("s1"))]);
        assert!(product(&a, &XRelation::empty()).unwrap().is_empty());
        assert!(product(&XRelation::empty(), &a).unwrap().is_empty());
    }

    #[test]
    fn product_preserves_nulls_in_either_factor() {
        let (_u, s, p, c) = setup();
        let a = XRelation::from_tuples([
            Tuple::new()
                .with(s, Value::str("s1"))
                .with(p, Value::str("p1")),
            Tuple::new().with(s, Value::str("s3")),
        ]);
        let b = XRelation::from_tuples([Tuple::new().with(c, Value::str("LA"))]);
        let prod = product(&a, &b).unwrap();
        assert_eq!(prod.len(), 2);
        assert!(prod.x_contains(
            &Tuple::new()
                .with(s, Value::str("s3"))
                .with(c, Value::str("LA"))
        ));
    }

    #[test]
    fn product_cardinality_matches_total_case() {
        // Section 7 property (2): on total relations the product agrees with
        // the classical Cartesian product.
        let (_u, s, p, _c) = setup();
        let a = XRelation::from_tuples([
            Tuple::new().with(s, Value::str("s1")),
            Tuple::new().with(s, Value::str("s2")),
            Tuple::new().with(s, Value::str("s3")),
        ]);
        let b = XRelation::from_tuples([
            Tuple::new().with(p, Value::str("p1")),
            Tuple::new().with(p, Value::str("p2")),
        ]);
        assert_eq!(product(&a, &b).unwrap().len(), 6);
    }
}
