//! Selection predicates: boolean combinations of relational expressions,
//! evaluated under the three-valued `ni` semantics of Section 5.
//!
//! A predicate is the `where`-clause fragment of a query once attribute
//! references have been resolved: comparisons between an attribute and a
//! constant (`t.A θ k`) or between two attributes (`t.A θ m.B`), combined
//! with AND / OR / NOT. Evaluation against a [`Tuple`] returns a
//! [`Truth`]; the lower-bound query evaluation keeps only tuples that
//! evaluate to `TRUE`.

use std::collections::BTreeSet;
use std::fmt;

use crate::error::CoreResult;
use crate::tuple::Tuple;
use crate::tvl::{compare_cells, CompareOp, Truth};
use crate::universe::{AttrId, AttrSet, Universe};
use crate::value::Value;

/// One side of a comparison: an attribute reference or a non-null constant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Operand {
    /// An attribute of the tuple under test.
    Attr(AttrId),
    /// A constant from the attribute's domain (never `ni`; the type system
    /// enforces this because [`Value`] has no null variant).
    Const(Value),
}

impl Operand {
    fn resolve<'t>(&'t self, tuple: &'t Tuple) -> Option<&'t Value> {
        match self {
            Operand::Attr(attr) => tuple.get(*attr),
            Operand::Const(value) => Some(value),
        }
    }

    fn render(&self, universe: &Universe) -> String {
        match self {
            Operand::Attr(attr) => universe
                .name(*attr)
                .map(str::to_owned)
                .unwrap_or_else(|_| format!("#{}", attr.index())),
            Operand::Const(value) => match value {
                Value::Str(s) => format!("{s:?}"),
                other => other.to_string(),
            },
        }
    }
}

/// A single relational expression `left θ right`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comparison {
    /// Left operand.
    pub left: Operand,
    /// The comparison operator.
    pub op: CompareOp,
    /// Right operand.
    pub right: Operand,
}

impl Comparison {
    /// Evaluates the comparison against a tuple: `ni` when either resolved
    /// cell is null, TRUE/FALSE otherwise.
    pub fn eval(&self, tuple: &Tuple) -> CoreResult<Truth> {
        compare_cells(self.left.resolve(tuple), self.op, self.right.resolve(tuple))
    }

    /// The attributes referenced by this comparison.
    pub fn attrs(&self) -> AttrSet {
        let mut set = BTreeSet::new();
        if let Operand::Attr(a) = self.left {
            set.insert(a);
        }
        if let Operand::Attr(a) = self.right {
            set.insert(a);
        }
        set
    }
}

/// A selection predicate: a tree of comparisons and connectives.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// A single relational expression.
    Cmp(Comparison),
    /// Three-valued conjunction.
    And(Box<Predicate>, Box<Predicate>),
    /// Three-valued disjunction.
    Or(Box<Predicate>, Box<Predicate>),
    /// Three-valued negation.
    Not(Box<Predicate>),
    /// A constant truth value (useful for degenerate plans and tests).
    Literal(Truth),
}

impl Predicate {
    /// Builds the comparison `A θ k` (attribute against constant).
    pub fn attr_const(attr: AttrId, op: CompareOp, constant: impl Into<Value>) -> Predicate {
        Predicate::Cmp(Comparison {
            left: Operand::Attr(attr),
            op,
            right: Operand::Const(constant.into()),
        })
    }

    /// Builds the comparison `A θ B` (attribute against attribute).
    pub fn attr_attr(left: AttrId, op: CompareOp, right: AttrId) -> Predicate {
        Predicate::Cmp(Comparison {
            left: Operand::Attr(left),
            op,
            right: Operand::Attr(right),
        })
    }

    /// `self AND other`.
    #[must_use]
    pub fn and(self, other: Predicate) -> Predicate {
        Predicate::And(Box::new(self), Box::new(other))
    }

    /// `self OR other`.
    #[must_use]
    pub fn or(self, other: Predicate) -> Predicate {
        Predicate::Or(Box::new(self), Box::new(other))
    }

    /// `NOT self`.
    #[must_use]
    pub fn negate(self) -> Predicate {
        Predicate::Not(Box::new(self))
    }

    /// The always-true predicate.
    pub fn always() -> Predicate {
        Predicate::Literal(Truth::True)
    }

    /// Evaluates the predicate against a tuple under Table III.
    pub fn eval(&self, tuple: &Tuple) -> CoreResult<Truth> {
        match self {
            Predicate::Cmp(cmp) => cmp.eval(tuple),
            Predicate::And(a, b) => Ok(a.eval(tuple)?.and(b.eval(tuple)?)),
            Predicate::Or(a, b) => Ok(a.eval(tuple)?.or(b.eval(tuple)?)),
            Predicate::Not(p) => Ok(p.eval(tuple)?.not()),
            Predicate::Literal(t) => Ok(*t),
        }
    }

    /// True if the predicate accepts the tuple in the lower-bound sense
    /// (evaluates to TRUE).
    pub fn accepts(&self, tuple: &Tuple) -> CoreResult<bool> {
        Ok(self.eval(tuple)?.is_true())
    }

    /// The set of attributes referenced anywhere in the predicate.
    pub fn attrs(&self) -> AttrSet {
        match self {
            Predicate::Cmp(cmp) => cmp.attrs(),
            Predicate::And(a, b) | Predicate::Or(a, b) => {
                let mut set = a.attrs();
                set.extend(b.attrs());
                set
            }
            Predicate::Not(p) => p.attrs(),
            Predicate::Literal(_) => AttrSet::new(),
        }
    }

    /// Collects every comparison in the predicate, in left-to-right order.
    pub fn comparisons(&self) -> Vec<&Comparison> {
        let mut out = Vec::new();
        self.collect_comparisons(&mut out);
        out
    }

    fn collect_comparisons<'a>(&'a self, out: &mut Vec<&'a Comparison>) {
        match self {
            Predicate::Cmp(cmp) => out.push(cmp),
            Predicate::And(a, b) | Predicate::Or(a, b) => {
                a.collect_comparisons(out);
                b.collect_comparisons(out);
            }
            Predicate::Not(p) => p.collect_comparisons(out),
            Predicate::Literal(_) => {}
        }
    }

    /// Renders the predicate with attribute names resolved through the
    /// universe (used by plan explainers and error messages).
    pub fn render(&self, universe: &Universe) -> String {
        match self {
            Predicate::Cmp(cmp) => format!(
                "{} {} {}",
                cmp.left.render(universe),
                cmp.op,
                cmp.right.render(universe)
            ),
            Predicate::And(a, b) => {
                format!("({} AND {})", a.render(universe), b.render(universe))
            }
            Predicate::Or(a, b) => format!("({} OR {})", a.render(universe), b.render(universe)),
            Predicate::Not(p) => format!("(NOT {})", p.render(universe)),
            Predicate::Literal(t) => t.to_string(),
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::Cmp(cmp) => write!(f, "#{:?} {} #{:?}", cmp.left, cmp.op, cmp.right),
            Predicate::And(a, b) => write!(f, "({a} AND {b})"),
            Predicate::Or(a, b) => write!(f, "({a} OR {b})"),
            Predicate::Not(p) => write!(f, "(NOT {p})"),
            Predicate::Literal(t) => write!(f, "{t}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::Universe;

    fn emp() -> (Universe, AttrId, AttrId, AttrId, AttrId, AttrId) {
        let mut u = Universe::new();
        let e_no = u.intern("E#");
        let name = u.intern("NAME");
        let sex = u.intern("SEX");
        let mgr = u.intern("MGR#");
        let tel = u.intern("TEL#");
        (u, e_no, name, sex, mgr, tel)
    }

    fn brown(e_no: AttrId, name: AttrId, sex: AttrId, mgr: AttrId) -> Tuple {
        Tuple::new()
            .with(e_no, Value::int(4335))
            .with(name, Value::str("BROWN"))
            .with(sex, Value::str("F"))
            .with(mgr, Value::int(2235))
    }

    /// Query Q_A of Figure 1 evaluated on the BROWN tuple of Table II: the
    /// where clause references the null TEL#, so under the ni semantics it
    /// evaluates to ni and the tuple is *not* in the lower bound.
    #[test]
    fn figure1_where_clause_is_ni_for_null_telephone() {
        let (_u, e_no, name, sex, mgr, tel) = emp();
        let q = Predicate::attr_const(sex, CompareOp::Eq, "F")
            .and(Predicate::attr_const(tel, CompareOp::Gt, 2_634_000))
            .or(Predicate::attr_const(tel, CompareOp::Lt, 2_634_000));
        let t = brown(e_no, name, sex, mgr);
        assert_eq!(q.eval(&t).unwrap(), Truth::Ni);
        assert!(!q.accepts(&t).unwrap());

        // With a concrete TEL# the clause becomes TRUE.
        let with_tel = t.clone().with(tel, Value::int(2_639_452));
        assert_eq!(q.eval(&with_tel).unwrap(), Truth::True);
        let with_small_tel = t.with(tel, Value::int(2_000_000));
        assert_eq!(q.eval(&with_small_tel).unwrap(), Truth::True);
    }

    #[test]
    fn attr_attr_comparisons() {
        let (_u, e_no, _name, _sex, mgr, _tel) = emp();
        let self_managed = Predicate::attr_attr(e_no, CompareOp::Eq, mgr);
        let t = Tuple::new()
            .with(e_no, Value::int(7))
            .with(mgr, Value::int(7));
        assert_eq!(self_managed.eval(&t).unwrap(), Truth::True);
        let t2 = Tuple::new()
            .with(e_no, Value::int(7))
            .with(mgr, Value::int(9));
        assert_eq!(self_managed.eval(&t2).unwrap(), Truth::False);
        let t3 = Tuple::new().with(e_no, Value::int(7));
        assert_eq!(self_managed.eval(&t3).unwrap(), Truth::Ni);
    }

    #[test]
    fn negation_of_ni_stays_ni() {
        let (_u, _e, _n, _s, _m, tel) = emp();
        let p = Predicate::attr_const(tel, CompareOp::Ge, 1).negate();
        assert_eq!(p.eval(&Tuple::new()).unwrap(), Truth::Ni);
    }

    #[test]
    fn literal_and_always() {
        let p = Predicate::always();
        assert_eq!(p.eval(&Tuple::new()).unwrap(), Truth::True);
        let f = Predicate::Literal(Truth::False);
        assert_eq!(f.eval(&Tuple::new()).unwrap(), Truth::False);
    }

    #[test]
    fn attrs_and_comparisons_are_collected() {
        let (_u, e_no, _name, sex, mgr, tel) = emp();
        let q = Predicate::attr_const(sex, CompareOp::Eq, "F")
            .and(Predicate::attr_attr(e_no, CompareOp::Ne, mgr))
            .or(Predicate::attr_const(tel, CompareOp::Lt, 5).negate());
        let attrs = q.attrs();
        assert!(attrs.contains(&sex) && attrs.contains(&e_no) && attrs.contains(&mgr));
        assert!(attrs.contains(&tel));
        assert_eq!(q.comparisons().len(), 3);
    }

    #[test]
    fn type_mismatch_surfaces_as_error() {
        let (_u, _e, name, ..) = emp();
        let p = Predicate::attr_const(name, CompareOp::Gt, 10);
        let t = Tuple::new().with(name, Value::str("SMITH"));
        assert!(p.eval(&t).is_err());
    }

    #[test]
    fn render_uses_attribute_names() {
        let (u, _e, _n, sex, _m, tel) = emp();
        let q = Predicate::attr_const(sex, CompareOp::Eq, "F").and(Predicate::attr_const(
            tel,
            CompareOp::Gt,
            2_634_000,
        ));
        let text = q.render(&u);
        assert!(text.contains("SEX = \"F\""), "{text}");
        assert!(text.contains("TEL# > 2634000"), "{text}");
        // Display without a universe still produces something.
        assert!(!q.to_string().is_empty());
    }

    #[test]
    fn constant_only_comparison() {
        let p = Predicate::Cmp(Comparison {
            left: Operand::Const(Value::int(3)),
            op: CompareOp::Lt,
            right: Operand::Const(Value::int(5)),
        });
        assert_eq!(p.eval(&Tuple::new()).unwrap(), Truth::True);
        assert!(p.attrs().is_empty());
    }
}
