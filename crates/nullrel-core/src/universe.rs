//! The finite universe of attributes `U` and per-attribute domains.
//!
//! The paper assumes "all the attributes of our relations are contained in a
//! finite universe of attributes, U" (Section 3), each attribute `A` having an
//! underlying domain `DOM(A)` that is extended with the `ni` symbol. The
//! [`Universe`] interns attribute names to compact [`AttrId`]s and records an
//! optional [`Domain`] per attribute. Enumerable domains are what make
//! `TOP_U`, pseudo-complements, and Codd's null-substitution principle
//! computable.

use std::collections::BTreeSet;
use std::collections::HashMap;
use std::fmt;

use crate::error::{CoreError, CoreResult};
use crate::value::Value;

/// A compact identifier for an interned attribute name.
///
/// Attribute ids are only meaningful relative to the [`Universe`] that issued
/// them; mixing ids from different universes is a logic error that surfaces
/// as [`CoreError::UnknownAttribute`] when the id is dereferenced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AttrId(u32);

impl AttrId {
    /// Returns the raw index of this attribute within its universe.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an id from a raw index. Intended for serialization layers and
    /// tests; prefer [`Universe::intern`].
    pub fn from_index(index: usize) -> Self {
        AttrId(index as u32)
    }
}

/// An ordered set of attributes (the paper's `X ⊆ U`).
pub type AttrSet = BTreeSet<AttrId>;

/// Builds an [`AttrSet`] from anything iterable over attribute ids.
pub fn attr_set<I: IntoIterator<Item = AttrId>>(attrs: I) -> AttrSet {
    attrs.into_iter().collect()
}

/// The domain `DOM(A)` underlying an attribute.
///
/// Only the enumerable variants allow the construction of `TOP_U`
/// (Section 4), pseudo-complements (Section 7), and the brute-force
/// null-substitution evaluation of Codd's set predicates (Section 1).
#[derive(Debug, Clone, PartialEq)]
pub enum Domain {
    /// An unconstrained domain of the given type; not enumerable.
    Unbounded(DomainType),
    /// An explicitly enumerated finite set of values.
    Enumerated(Vec<Value>),
    /// A closed integer interval `[lo, hi]`; enumerable when small enough.
    IntRange(i64, i64),
    /// The boolean domain `{false, true}`.
    Boolean,
}

/// The runtime type carried by a domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DomainType {
    /// 64-bit signed integers.
    Int,
    /// 64-bit floats.
    Float,
    /// UTF-8 strings.
    Str,
    /// Booleans.
    Bool,
}

impl Domain {
    /// The number of values in the domain, if finite.
    pub fn cardinality(&self) -> Option<u128> {
        match self {
            Domain::Unbounded(_) => None,
            Domain::Enumerated(values) => Some(values.len() as u128),
            Domain::IntRange(lo, hi) => {
                if lo > hi {
                    Some(0)
                } else {
                    Some((*hi as i128 - *lo as i128 + 1) as u128)
                }
            }
            Domain::Boolean => Some(2),
        }
    }

    /// Enumerates the domain's values, if finite.
    pub fn values(&self) -> Option<Vec<Value>> {
        match self {
            Domain::Unbounded(_) => None,
            Domain::Enumerated(values) => Some(values.clone()),
            Domain::IntRange(lo, hi) => {
                if lo > hi {
                    Some(Vec::new())
                } else {
                    Some((*lo..=*hi).map(Value::Int).collect())
                }
            }
            Domain::Boolean => Some(vec![Value::Bool(false), Value::Bool(true)]),
        }
    }

    /// True if the given value is a member of this domain.
    pub fn contains(&self, value: &Value) -> bool {
        match self {
            Domain::Unbounded(ty) => ty.matches(value),
            Domain::Enumerated(values) => values.contains(value),
            Domain::IntRange(lo, hi) => match value {
                Value::Int(v) => v >= lo && v <= hi,
                _ => false,
            },
            Domain::Boolean => matches!(value, Value::Bool(_)),
        }
    }

    /// The runtime type of values in this domain, when homogeneous.
    pub fn domain_type(&self) -> Option<DomainType> {
        match self {
            Domain::Unbounded(ty) => Some(*ty),
            Domain::Boolean => Some(DomainType::Bool),
            Domain::IntRange(..) => Some(DomainType::Int),
            Domain::Enumerated(values) => {
                let mut iter = values.iter().map(DomainType::of);
                let first = iter.next()?;
                if iter.all(|t| t == first) {
                    Some(first)
                } else {
                    None
                }
            }
        }
    }
}

impl DomainType {
    /// True if the value has this runtime type.
    pub fn matches(self, value: &Value) -> bool {
        DomainType::of(value) == self
    }

    /// The runtime type of a value.
    pub fn of(value: &Value) -> DomainType {
        match value {
            Value::Int(_) => DomainType::Int,
            Value::Float(_) => DomainType::Float,
            Value::Str(_) => DomainType::Str,
            Value::Bool(_) => DomainType::Bool,
        }
    }
}

/// The finite universe of attributes, with interned names and optional
/// domains.
///
/// # Example
///
/// ```
/// use nullrel_core::universe::{Domain, Universe};
/// use nullrel_core::value::Value;
///
/// let mut u = Universe::new();
/// let e_no = u.intern("E#");
/// let sex = u.intern_with_domain(
///     "SEX",
///     Domain::Enumerated(vec![Value::str("M"), Value::str("F")]),
/// );
/// assert_eq!(u.name(e_no).unwrap(), "E#");
/// assert_eq!(u.domain(sex).unwrap().cardinality(), Some(2));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Universe {
    names: Vec<String>,
    by_name: HashMap<String, AttrId>,
    domains: Vec<Option<Domain>>,
}

impl Universe {
    /// Creates an empty universe.
    pub fn new() -> Self {
        Universe::default()
    }

    /// Interns an attribute name, returning its id. Interning the same name
    /// twice returns the same id.
    pub fn intern(&mut self, name: &str) -> AttrId {
        if let Some(id) = self.by_name.get(name) {
            return *id;
        }
        let id = AttrId(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), id);
        self.domains.push(None);
        id
    }

    /// Interns an attribute and records its domain in one call.
    pub fn intern_with_domain(&mut self, name: &str, domain: Domain) -> AttrId {
        let id = self.intern(name);
        self.domains[id.index()] = Some(domain);
        id
    }

    /// Records (or replaces) the domain of an existing attribute.
    pub fn set_domain(&mut self, attr: AttrId, domain: Domain) -> CoreResult<()> {
        let slot = self
            .domains
            .get_mut(attr.index())
            .ok_or(CoreError::UnknownAttribute(attr))?;
        *slot = Some(domain);
        Ok(())
    }

    /// Looks up an attribute id by name.
    pub fn lookup(&self, name: &str) -> Option<AttrId> {
        self.by_name.get(name).copied()
    }

    /// Looks up an attribute id by name, erroring if absent.
    pub fn require(&self, name: &str) -> CoreResult<AttrId> {
        self.lookup(name)
            .ok_or_else(|| CoreError::UnknownAttributeName(name.to_owned()))
    }

    /// Returns the name of an attribute id.
    pub fn name(&self, attr: AttrId) -> CoreResult<&str> {
        self.names
            .get(attr.index())
            .map(String::as_str)
            .ok_or(CoreError::UnknownAttribute(attr))
    }

    /// Returns the domain recorded for an attribute, if any.
    pub fn domain(&self, attr: AttrId) -> Option<&Domain> {
        self.domains.get(attr.index()).and_then(Option::as_ref)
    }

    /// Returns the enumerated values of an attribute's domain, or an error if
    /// the domain is missing or not enumerable.
    pub fn enumerable_domain(&self, attr: AttrId) -> CoreResult<Vec<Value>> {
        match self.domain(attr) {
            Some(domain) => domain.values().ok_or(CoreError::DomainNotEnumerable(attr)),
            None => Err(CoreError::DomainNotEnumerable(attr)),
        }
    }

    /// The number of interned attributes.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if no attribute has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over every attribute id in the universe, in interning order.
    pub fn attrs(&self) -> impl Iterator<Item = AttrId> + '_ {
        (0..self.names.len()).map(|i| AttrId(i as u32))
    }

    /// The full attribute set `U` as an [`AttrSet`].
    pub fn all(&self) -> AttrSet {
        self.attrs().collect()
    }

    /// Renders an attribute set as a readable comma-separated list, used by
    /// the display module and error messages.
    pub fn render_attrs(&self, attrs: &AttrSet) -> String {
        let mut parts = Vec::with_capacity(attrs.len());
        for attr in attrs {
            match self.name(*attr) {
                Ok(name) => parts.push(name.to_owned()),
                Err(_) => parts.push(format!("#{}", attr.index())),
            }
        }
        parts.join(", ")
    }
}

impl fmt::Display for Universe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Universe(")?;
        for (i, name) in self.names.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{name}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut u = Universe::new();
        let a = u.intern("A");
        let b = u.intern("B");
        assert_ne!(a, b);
        assert_eq!(u.intern("A"), a);
        assert_eq!(u.len(), 2);
    }

    #[test]
    fn lookup_and_name_round_trip() {
        let mut u = Universe::new();
        let tel = u.intern("TEL#");
        assert_eq!(u.lookup("TEL#"), Some(tel));
        assert_eq!(u.name(tel).unwrap(), "TEL#");
        assert!(u.lookup("missing").is_none());
        assert!(matches!(
            u.require("missing"),
            Err(CoreError::UnknownAttributeName(_))
        ));
    }

    #[test]
    fn unknown_attribute_id_is_an_error() {
        let u = Universe::new();
        let bogus = AttrId::from_index(7);
        assert!(matches!(u.name(bogus), Err(CoreError::UnknownAttribute(_))));
    }

    #[test]
    fn domains_enumerate() {
        let mut u = Universe::new();
        let sex = u.intern_with_domain(
            "SEX",
            Domain::Enumerated(vec![Value::str("M"), Value::str("F")]),
        );
        let age = u.intern_with_domain("AGE", Domain::IntRange(0, 2));
        let flag = u.intern_with_domain("FLAG", Domain::Boolean);
        let name = u.intern_with_domain("NAME", Domain::Unbounded(DomainType::Str));

        assert_eq!(u.enumerable_domain(sex).unwrap().len(), 2);
        assert_eq!(
            u.enumerable_domain(age).unwrap(),
            vec![Value::int(0), Value::int(1), Value::int(2)]
        );
        assert_eq!(u.enumerable_domain(flag).unwrap().len(), 2);
        assert!(matches!(
            u.enumerable_domain(name),
            Err(CoreError::DomainNotEnumerable(_))
        ));
    }

    #[test]
    fn domain_cardinality_and_membership() {
        let d = Domain::IntRange(5, 9);
        assert_eq!(d.cardinality(), Some(5));
        assert!(d.contains(&Value::int(7)));
        assert!(!d.contains(&Value::int(10)));
        assert!(!d.contains(&Value::str("7")));

        let empty = Domain::IntRange(3, 2);
        assert_eq!(empty.cardinality(), Some(0));
        assert_eq!(empty.values().unwrap(), Vec::<Value>::new());

        let unb = Domain::Unbounded(DomainType::Int);
        assert_eq!(unb.cardinality(), None);
        assert!(unb.contains(&Value::int(1)));
        assert!(!unb.contains(&Value::str("x")));
    }

    #[test]
    fn domain_type_inference() {
        assert_eq!(
            Domain::Enumerated(vec![Value::int(1), Value::int(2)]).domain_type(),
            Some(DomainType::Int)
        );
        assert_eq!(
            Domain::Enumerated(vec![Value::int(1), Value::str("x")]).domain_type(),
            None
        );
        assert_eq!(Domain::Boolean.domain_type(), Some(DomainType::Bool));
    }

    #[test]
    fn attr_set_helper_sorts_and_dedups() {
        let mut u = Universe::new();
        let a = u.intern("A");
        let b = u.intern("B");
        let set = attr_set([b, a, b]);
        assert_eq!(set.len(), 2);
        assert_eq!(set.iter().next(), Some(&a));
    }

    #[test]
    fn render_attrs_uses_names() {
        let mut u = Universe::new();
        let a = u.intern("P#");
        let b = u.intern("S#");
        let rendered = u.render_attrs(&attr_set([a, b]));
        assert!(rendered.contains("P#"));
        assert!(rendered.contains("S#"));
    }

    #[test]
    fn display_lists_names() {
        let mut u = Universe::new();
        u.intern("A");
        u.intern("B");
        assert_eq!(u.to_string(), "Universe(A, B)");
    }
}
