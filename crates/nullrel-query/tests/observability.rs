//! Integration tests for the observability layer: `EXPLAIN ANALYZE`
//! coverage of the e13 star-join plan, chrome-trace export of an e14
//! parallel run with one lane per worker, the slow-query log, and the
//! engine metrics the query path feeds.

use std::sync::{Arc, Mutex, MutexGuard};

use nullrel_core::algebra::Expr;
use nullrel_core::predicate::Predicate;
use nullrel_core::tvl::CompareOp;
use nullrel_core::universe::AttrId;
use nullrel_core::value::Value;
use nullrel_exec::{execute_expr_with, OptimizeOptions, Parallelism};
use nullrel_obs::{install_sink, metrics, uninstall_sink, RingSink};
use nullrel_query::{execute, explain_analyze_expr_with};
use nullrel_storage::{Database, SchemaBuilder};

/// The process-global sink and slow-log are shared across this binary's
/// parallel test threads; tests that touch them serialize here.
fn global_obs_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// The e13/e14 star schema: three dimensions and a fact table referencing
/// each, no indexes so every join hashes.
fn star_db(n: usize) -> Database {
    let dim_rows = (n / 4).max(2);
    let mut db = Database::new();
    for d in 0..3 {
        db.create_table(
            SchemaBuilder::new(format!("DIM{d}"))
                .required_column(format!("K{d}"))
                .column(format!("V{d}"))
                .key(&[&format!("K{d}")]),
        )
        .unwrap();
    }
    db.create_table(
        SchemaBuilder::new("FACT")
            .required_column("F#")
            .column("FK0")
            .column("FK1")
            .column("FK2")
            .key(&["F#"]),
    )
    .unwrap();
    let u = db.universe().clone();
    for d in 0..3usize {
        let key = format!("K{d}");
        let val = format!("V{d}");
        let t = db.table_mut(&format!("DIM{d}")).unwrap();
        for i in 0..dim_rows as i64 {
            t.insert_named(
                &u,
                &[
                    (&key as &str, Value::int(i)),
                    (&val as &str, Value::int(i * 7)),
                ],
            )
            .unwrap();
        }
    }
    let t = db.table_mut("FACT").unwrap();
    for i in 0..n as i64 {
        t.insert_named(
            &u,
            &[
                ("F#", Value::int(i)),
                ("FK0", Value::int(i % dim_rows as i64)),
                ("FK1", Value::int((i + 1) % dim_rows as i64)),
                ("FK2", Value::int((i + 2) % dim_rows as i64)),
            ],
        )
        .unwrap();
    }
    db
}

fn star_plan(db: &Database) -> Expr {
    let u = db.universe();
    let keys: Vec<AttrId> = (0..3)
        .map(|d| u.lookup(&format!("K{d}")).unwrap())
        .collect();
    let fks: Vec<AttrId> = (0..3)
        .map(|d| u.lookup(&format!("FK{d}")).unwrap())
        .collect();
    Expr::named("DIM0")
        .product(Expr::named("DIM1"))
        .product(Expr::named("DIM2"))
        .product(Expr::named("FACT"))
        .select(
            Predicate::attr_attr(fks[0], CompareOp::Eq, keys[0])
                .and(Predicate::attr_attr(fks[1], CompareOp::Eq, keys[1]))
                .and(Predicate::attr_attr(fks[2], CompareOp::Eq, keys[2])),
        )
}

fn emp_db() -> Database {
    let mut db = Database::new();
    db.create_table(
        SchemaBuilder::new("EMP")
            .required_column("E#")
            .column("NAME")
            .column("MGR#")
            .key(&["E#"]),
    )
    .unwrap();
    let u = db.universe().clone();
    let t = db.table_mut("EMP").unwrap();
    for i in 0..32 {
        t.insert_named(
            &u,
            &[
                ("E#", Value::int(i)),
                ("NAME", Value::str(format!("EMP{i}"))),
                ("MGR#", Value::int(i / 3)),
            ],
        )
        .unwrap();
    }
    db
}

/// Acceptance: `EXPLAIN ANALYZE` annotates **every** operator of the e13
/// star-join plan — three hash joins, four scans, the projections, and
/// the Minimize sink all carry `[time=… self=… act=… est=… q-err=…
/// par=…]`.
#[test]
fn explain_analyze_covers_every_star_join_operator() {
    let db = star_db(400);
    let plan = star_plan(&db);
    let report =
        explain_analyze_expr_with(&db, &plan, db.universe(), OptimizeOptions::default()).unwrap();
    let physical = report
        .split("physical (analyzed):\n")
        .nth(1)
        .expect("analyzed section present");
    let op_lines: Vec<&str> = physical
        .lines()
        .take_while(|l| l.starts_with(' ') || !l.contains(':'))
        .filter(|l| !l.trim().is_empty())
        .collect();
    assert!(
        op_lines.len() >= 8,
        "the 4-way star plan has at least 8 operators:\n{report}"
    );
    for line in &op_lines {
        for needle in ["[time=", "self=", "act=", "est=", "q-err=", "par="] {
            assert!(
                line.contains(needle),
                "operator line missing {needle}: {line}\n{report}"
            );
        }
    }
    let joins = op_lines.iter().filter(|l| l.contains("HashJoin")).count();
    assert_eq!(joins, 3, "star join runs three hash joins:\n{report}");
    assert!(report.contains("phases:"), "{report}");
}

/// Acceptance: a chrome-trace export of an e14-style 4-thread run renders
/// one lane per worker — thread-name metadata for `worker 1..=4` plus the
/// coordinator's `query` lane, and every span lands on one of them.
#[test]
fn chrome_trace_of_parallel_run_has_one_lane_per_worker() {
    let _guard = global_obs_lock();
    let db = star_db(400);
    let plan = star_plan(&db);
    let options = OptimizeOptions {
        parallelism: Parallelism::Threads(4),
        parallel_row_threshold: 0,
        ..OptimizeOptions::default()
    };
    let sink = Arc::new(RingSink::new(4));
    install_sink(sink.clone());
    // Whether all four granted workers claim a morsel before the queue
    // drains is a scheduler race on few-core hosts; retry until a run
    // exercises every lane, then assert the export is complete.
    let mut trace = None;
    for _ in 0..50 {
        {
            let _q = nullrel_obs::begin_query("e14 star join, 4 threads");
            execute_expr_with(&plan, &db, db.universe(), options).unwrap();
        }
        let t = sink.latest().expect("query trace delivered to the sink");
        if t.max_lane() == 4 {
            trace = Some(t);
            break;
        }
    }
    uninstall_sink();
    let trace = trace.expect("a 4-thread run where every worker claimed a morsel");
    assert_eq!(trace.name, "e14 star join, 4 threads");
    assert_eq!(trace.max_lane(), 4, "one lane per worker at 4 threads");
    let json = trace.chrome_trace_json();
    for lane in [
        "\"query\"",
        "\"worker 1\"",
        "\"worker 2\"",
        "\"worker 3\"",
        "\"worker 4\"",
    ] {
        assert!(json.contains(lane), "missing lane {lane} in export");
    }
    assert!(json.contains("\"traceEvents\""));
    assert!(
        trace.spans.iter().any(|s| s.cat == "task" && s.lane >= 1),
        "worker morsel spans recorded on worker lanes"
    );
    assert!(
        trace.spans.iter().any(|s| s.cat == "phase" && s.lane == 0),
        "phase spans recorded on the coordinator lane"
    );
    // The export also writes to disk (how a user opens it in
    // chrome://tracing or Perfetto).
    let path = std::env::temp_dir().join("nullrel_e14_trace.json");
    trace.write_chrome_trace(&path).unwrap();
    let on_disk = std::fs::read_to_string(&path).unwrap();
    assert_eq!(on_disk, json);
    let _ = std::fs::remove_file(&path);
}

/// `NULLREL_SLOW_MS`-style slow-query logging: with the threshold at 0 ms
/// every query is slow, and its full trace lands in the in-process ring.
#[test]
fn slow_query_log_captures_full_traces() {
    let _guard = global_obs_lock();
    if std::env::var("NULLREL_SLOW_MS").is_ok() {
        return; // the env override pins the threshold for the whole process
    }
    let db = emp_db();
    nullrel_obs::set_slow_query_ms(Some(0));
    let before = nullrel_obs::slow_log().len();
    let slow_count_before = metrics::SLOW_QUERIES.get();
    execute(
        &db,
        "range of e is EMP range of m is EMP retrieve (e.NAME) where e.MGR# = m.E#",
    )
    .unwrap();
    nullrel_obs::set_slow_query_ms(None);
    assert!(
        nullrel_obs::slow_log().len() > before,
        "slow log captured the query"
    );
    assert!(metrics::SLOW_QUERIES.get() > slow_count_before);
    let traces = nullrel_obs::slow_log().traces();
    let trace = traces.last().unwrap();
    assert!(
        trace.name.contains("retrieve (e.NAME)"),
        "slow-log entry is labeled with the query text: {}",
        trace.name
    );
    assert!(!trace.spans.is_empty(), "the full trace rides along");

    // Disarmed again: queries no longer reach the slow log.
    let after = nullrel_obs::slow_log().len();
    execute(&db, "range of e is EMP retrieve (e.NAME)").unwrap();
    assert_eq!(nullrel_obs::slow_log().len(), after);
}

/// The query path feeds the engine metrics registry: executed-query
/// count, rows scanned, hash-join builds/probes, minimized rows, and the
/// per-phase latency histograms all move.
#[test]
fn query_execution_feeds_the_metrics_registry() {
    let db = emp_db();
    let before = metrics::snapshot();
    let out = execute(
        &db,
        "range of e is EMP range of m is EMP retrieve (e.NAME) where e.MGR# = m.E#",
    )
    .unwrap();
    assert!(!out.is_empty());
    let after = metrics::snapshot();
    let delta = |name: &str| after.counter(name) as i64 - before.counter(name) as i64;
    assert!(delta("nullrel_queries_executed_total") >= 1);
    assert!(delta("nullrel_rows_scanned_total") >= 64, "two EMP scans");
    assert!(delta("nullrel_hash_join_builds_total") >= 1);
    assert!(delta("nullrel_hash_join_probes_total") >= 32);
    assert!(delta("nullrel_rows_minimized_total") >= 1);
    let phase_count = |snap: &nullrel_obs::MetricsSnapshot, name: &str| {
        snap.histograms.get(name).map_or(0, |h| h.count)
    };
    for h in [
        "nullrel_phase_parse_us",
        "nullrel_phase_plan_us",
        "nullrel_phase_run_us",
        "nullrel_query_latency_us",
    ] {
        assert!(
            phase_count(&after, h) > phase_count(&before, h),
            "{h} must observe the query"
        );
    }
    // The registry renders for scraping, with the moved counters present.
    let prom = metrics::render_prometheus();
    assert!(prom.contains("# TYPE nullrel_queries_executed_total counter"));
    assert!(prom.contains("nullrel_query_latency_us_bucket{le=\"+Inf\"}"));
}
