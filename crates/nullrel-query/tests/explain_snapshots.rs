//! Golden-file snapshots of the explain surfaces (the observability PR's
//! satellite): `explain_physical`, `explain_physical_expr`, `EXPLAIN
//! ANALYZE` (timings masked), the TRUE and MAYBE band plans, at serial and
//! 4-thread degrees.
//!
//! Timings, percentages, and per-worker morsel spreads are
//! scheduling-dependent, so [`mask`] replaces them with stable tokens
//! before comparison; everything else — operator tree shape, row
//! counters, cardinality estimates, q-errors, parallel degrees — must be
//! byte-identical run to run. Re-bless with `UPDATE_GOLDEN=1 cargo test`.

use std::path::PathBuf;

use nullrel_core::algebra::Expr;
use nullrel_core::predicate::Predicate;
use nullrel_core::tvl::{CompareOp, Truth};
use nullrel_core::universe::attr_set;
use nullrel_core::value::Value;
use nullrel_exec::{execute_expr_band_with, OptimizeOptions, Parallelism};
use nullrel_query::plan::plan_access;
use nullrel_query::{
    explain_analyze_expr_with, explain_analyze_with, explain_physical_expr_with,
    explain_physical_with, parse, resolve,
};
use nullrel_storage::{Database, SchemaBuilder};

const JOIN_QUERY: &str = "range of e is EMP range of m is EMP retrieve (e.NAME) \
                          where m.SEX = \"M\" and e.MGR# = m.E#";

/// Keys whose values are wall-clock readings and must be masked.
const DURATION_KEYS: &[&str] = &[
    "time=",
    "self=",
    "parse=",
    "plan=",
    "optimize=",
    "compile=",
    "run=",
    "total=",
];

/// A small deterministic EMP database (the e12 shape at n=24).
fn emp_db() -> Database {
    let mut db = Database::new();
    db.create_table(
        SchemaBuilder::new("EMP")
            .required_column("E#")
            .column("NAME")
            .column("SEX")
            .column("MGR#")
            .key(&["E#"]),
    )
    .unwrap();
    let u = db.universe().clone();
    let t = db.table_mut("EMP").unwrap();
    for i in 0..24 {
        let mut cells = vec![
            ("E#", Value::int(i)),
            ("NAME", Value::str(format!("EMP{i}"))),
            ("SEX", Value::str(if i % 2 == 0 { "M" } else { "F" })),
        ];
        if i % 7 != 0 {
            cells.push(("MGR#", Value::int(i / 3)));
        }
        t.insert_named(&u, &cells).unwrap();
    }
    db
}

fn options(threads: usize) -> OptimizeOptions {
    OptimizeOptions {
        parallelism: if threads <= 1 {
            Parallelism::Serial
        } else {
            Parallelism::Threads(threads)
        },
        parallel_row_threshold: 0,
        // Pinned: the CI matrix sets NULLREL_ADAPTIVE and
        // NULLREL_BATCH_SIZE, which the default options inherit —
        // snapshots must not depend on the leg.
        adaptive: None,
        vectorize: true,
        batch_size: nullrel_exec::DEFAULT_BATCH_ROWS,
        ..OptimizeOptions::default()
    }
}

/// Replaces scheduling-dependent substrings with stable tokens: duration
/// values become `T`, percentages become `P%`, and `workers=[…]` spreads
/// become `workers=[masked]`.
fn mask(report: &str) -> String {
    let mut out = String::new();
    for line in report.lines() {
        // Mask worker spreads first — they contain spaces, so they must
        // go before token-level masking.
        let mut masked = String::new();
        let mut rest = line;
        while let Some(pos) = rest.find("workers=[") {
            let end = rest[pos..]
                .find(']')
                .map(|e| pos + e + 1)
                .unwrap_or(rest.len());
            masked.push_str(&rest[..pos]);
            masked.push_str("workers=[masked]");
            rest = &rest[end..];
        }
        masked.push_str(rest);
        let tokens: Vec<String> = masked
            .split(' ')
            .map(|tok| {
                for key in DURATION_KEYS {
                    if let Some(pos) = tok.find(key) {
                        let value_at = pos + key.len();
                        let trailer: String = tok[value_at..]
                            .chars()
                            .rev()
                            .take_while(|c| *c == ']')
                            .collect();
                        return format!("{}T{trailer}", &tok[..value_at]);
                    }
                }
                if tok.ends_with('%') && tok.starts_with(|c: char| c.is_ascii_digit()) {
                    return "P%".to_owned();
                }
                tok.to_owned()
            })
            .collect();
        out.push_str(&tokens.join(" "));
        out.push('\n');
    }
    out
}

/// Compares against `tests/golden/<name>.txt`, rewriting the file instead
/// when `UPDATE_GOLDEN` is set.
fn check_golden(name: &str, actual: &str) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.txt"));
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|_| panic!("missing golden file {path:?} — run once with UPDATE_GOLDEN=1"));
    assert_eq!(
        expected, actual,
        "snapshot drift in {name} (re-bless with UPDATE_GOLDEN=1 if intended)"
    );
}

#[test]
fn explain_physical_join_serial() {
    let db = emp_db();
    let report = explain_physical_with(&db, JOIN_QUERY, options(1)).unwrap();
    check_golden("explain_physical_join_serial", &mask(&report));
}

#[test]
fn explain_physical_join_threads4() {
    let db = emp_db();
    let report = explain_physical_with(&db, JOIN_QUERY, options(4)).unwrap();
    check_golden("explain_physical_join_threads4", &mask(&report));
}

#[test]
fn explain_physical_expr_setops() {
    let db = emp_db();
    let u = db.universe().clone();
    let sex = u.lookup("SEX").unwrap();
    let name = u.lookup("NAME").unwrap();
    let by = |v: &str| {
        Expr::named("EMP")
            .select(Predicate::attr_const(sex, CompareOp::Eq, Value::str(v)))
            .project(attr_set([name]))
    };
    let setops = by("M").difference(by("F")).union(by("M"));
    let report = explain_physical_expr_with(&db, &setops, &u, options(1)).unwrap();
    check_golden("explain_physical_expr_setops", &mask(&report));
}

#[test]
fn explain_analyze_join_serial() {
    let db = emp_db();
    let report = explain_analyze_with(&db, JOIN_QUERY, options(1)).unwrap();
    check_golden("explain_analyze_join_serial", &mask(&report));
}

#[test]
fn explain_analyze_join_threads4() {
    let db = emp_db();
    let report = explain_analyze_with(&db, JOIN_QUERY, options(4)).unwrap();
    check_golden("explain_analyze_join_threads4", &mask(&report));
}

/// A vectorized Division plan under 4 threads: the dividend is a fused
/// scan → filter → project batch pipe (`batch=N` on every stage) feeding
/// a parallel Division, which must show its `par=4` grant.
#[test]
fn explain_analyze_vectorized_division_threads4() {
    let db = emp_db();
    let u = db.universe().clone();
    let sex = u.lookup("SEX").unwrap();
    let mgr = u.lookup("MGR#").unwrap();
    let division = Expr::named("EMP")
        .select(Predicate::attr_const(mgr, CompareOp::Ge, 0))
        .project(attr_set([mgr, sex]))
        .divide(attr_set([mgr]), Expr::named("EMP").project(attr_set([sex])));
    let report = explain_analyze_expr_with(&db, &division, &u, options(4)).unwrap();
    check_golden(
        "explain_analyze_vectorized_division_threads4",
        &mask(&report),
    );
}

/// The drain-heavy set operators — Difference and XIntersect — under 4
/// threads over vectorized inputs: both must show their `par=4` grant.
#[test]
fn explain_analyze_drain_setops_threads4() {
    let db = emp_db();
    let u = db.universe().clone();
    let sex = u.lookup("SEX").unwrap();
    let name = u.lookup("NAME").unwrap();
    let by = |v: &str| {
        Expr::named("EMP")
            .select(Predicate::attr_const(sex, CompareOp::Eq, Value::str(v)))
            .project(attr_set([name]))
    };
    let setops = by("M").difference(by("F")).x_intersect(by("M"));
    let report = explain_analyze_expr_with(&db, &setops, &u, options(4)).unwrap();
    check_golden("explain_analyze_drain_setops_threads4", &mask(&report));
}

/// The executed physical plans of both truth bands — the MAYBE band
/// compiles the plan as written (no optimizer), which the snapshot pins.
#[test]
fn band_plans_true_and_maybe() {
    let db = emp_db();
    let text = "range of e is EMP retrieve (e.NAME, e.E#) where e.MGR# > 3";
    let resolved = resolve(&db, &parse(text).unwrap()).unwrap();
    let expr = plan_access(&resolved);
    let (_, true_stats) =
        execute_expr_band_with(&expr, &db, &resolved.universe, Truth::True, options(1)).unwrap();
    let (_, maybe_stats) =
        execute_expr_band_with(&expr, &db, &resolved.universe, Truth::Ni, options(1)).unwrap();
    let combined = format!(
        "TRUE band:\n{}MAYBE band:\n{}",
        true_stats.render(),
        maybe_stats.render()
    );
    check_golden("band_plans_true_and_maybe", &mask(&combined));
}
