//! # nullrel-query
//!
//! A QUEL-subset query front-end over the `nullrel` storage and algebra
//! layers, reproducing the query-evaluation story of the paper:
//!
//! * [`lexer`] / [`parser`] / [`ast`] — the QUEL syntax of Figures 1–2
//!   (`range of … retrieve … where …`).
//! * [`analyze`] / [`plan`] — resolution against a [`nullrel_storage::Database`]
//!   and translation to the generalized relational algebra, with each range
//!   variable given a disjoint attribute scope.
//! * [`eval`] — the paper's **`ni` lower-bound evaluation** `‖Q‖∗`,
//!   executed through the `nullrel-exec` physical engine (optimizer, index
//!   selection, hash joins, streaming minimisation) with the seed's
//!   tree-walk evaluation kept as a differential oracle.
//! * [`interp`] + [`tautology`] — the **"unknown"-interpretation baseline**:
//!   the correct lower bound under unknown nulls requires deciding, per
//!   candidate tuple, whether the substituted where clause is a tautology
//!   (optionally under schema integrity constraints). This is the machinery
//!   the Appendix argues is "inordinately difficult and complex", and the
//!   benchmarks measure its cost against the `ni` pass.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analyze;
pub mod ast;
pub mod error;
pub mod eval;
pub mod interp;
pub mod lexer;
pub mod parser;
pub mod plan;
pub mod tautology;

pub use analyze::{resolve, ResolvedQuery};
pub use ast::{AttrRef, Query, RangeDecl, Term, WhereExpr};
pub use error::{QueryError, QueryResult};
pub use eval::{
    execute, execute_maybe, execute_prepared, execute_query, execute_resolved,
    execute_resolved_naive, execute_with, prepare, Prepared, QueryOutput,
};
pub use interp::{execute_unknown, execute_unknown_query, Certainty, UnknownOutput, UnknownStats};
pub use parser::parse;
pub use plan::{
    explain_analyze, explain_analyze_expr, explain_analyze_expr_with, explain_analyze_with,
    explain_physical, explain_physical_expr, explain_physical_expr_with, explain_physical_with,
};
pub use tautology::{decide, decide_with_assumptions, Decision, Formula, Operand};

/// The verbatim text of the paper's Figure 1 (query Q_A).
pub const FIGURE_1_QUERY: &str = "range of e is EMP\n\
retrieve (e.NAME, e.E#)\n\
where (e.SEX = \"F\" and e.TEL# > 2634000) or (e.TEL# < 2634000)";

/// The verbatim text of the paper's Figure 2 (query Q_B).
pub const FIGURE_2_QUERY: &str = "range of e is EMP\n\
range of m is EMP\n\
retrieve (e.NAME)\n\
where m.SEX = \"M\" and e.MGR# = m.E# and e.MGR# != e.E# and e.E# != m.MGR#";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_paper_queries_parse() {
        let q_a = parse(FIGURE_1_QUERY).unwrap();
        assert_eq!(q_a.ranges.len(), 1);
        assert_eq!(q_a.where_clause.unwrap().atom_count(), 3);
        let q_b = parse(FIGURE_2_QUERY).unwrap();
        assert_eq!(q_b.ranges.len(), 2);
        assert_eq!(q_b.where_clause.unwrap().atom_count(), 4);
    }
}
