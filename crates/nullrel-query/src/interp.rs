//! The "unknown"-interpretation baseline: correct lower-bound evaluation
//! with tautology detection, as discussed in Section 5 and the Appendix.
//!
//! Under the *unknown* interpretation a null stands for an existing but
//! unknown value, so a tuple belongs to the correct lower bound `‖Q‖∗`
//! exactly when the where clause is TRUE **under every legal substitution**
//! of its nulls — i.e. when the substituted clause is a tautology. This
//! module evaluates a query that way: for every combination of range tuples
//! it builds a [`Formula`] (known cells become constants, null cells become
//! variables), optionally conjoins schema integrity constraints, and asks
//! the decision procedure of [`crate::tautology`] whether the formula is
//! valid (sure answer), merely satisfiable (maybe answer), or unsatisfiable.
//!
//! The point of the experiment (E4/E10) is the cost and machinery gap: the
//! `ni` evaluation in [`crate::eval`] is a single three-valued pass, while
//! this evaluator needs a per-tuple validity decision — and even then the
//! Appendix shows that full generality (arbitrary arithmetic, constraints
//! enforced by procedures) is out of reach.

use nullrel_core::tuple::Tuple;
use nullrel_core::universe::AttrId;
use nullrel_core::value::Value;
use nullrel_storage::Database;

use crate::analyze::{lookup, resolve, ResolvedQuery};
use crate::ast::{Query, Term, WhereExpr};
use crate::error::{QueryError, QueryResult};
use crate::parser::parse;
use crate::tautology::{decide_with_assumptions, Decision, Formula, Operand};

/// How sure the evaluator is that a tuple combination satisfies the query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Certainty {
    /// The where clause is valid under every substitution: the answer tuple
    /// is in the correct lower bound.
    Sure,
    /// The clause holds under some substitutions only.
    Maybe,
    /// The clause holds under no substitution.
    No,
}

/// Evaluation statistics, reported so the experiments can contrast the cost
/// of this strategy with the `ni` evaluation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UnknownStats {
    /// Range-tuple combinations examined.
    pub combinations: usize,
    /// Combinations that required a validity decision (at least one null
    /// appeared in the where clause).
    pub tautology_checks: usize,
    /// Total assignments enumerated by the decision procedure.
    pub assignments: usize,
}

/// The result of evaluating a query under the unknown interpretation.
#[derive(Debug, Clone)]
pub struct UnknownOutput {
    /// Column labels, in target-list order.
    pub columns: Vec<String>,
    /// The qualified attribute ids of the columns.
    pub column_attrs: Vec<AttrId>,
    /// Tuples certainly in the answer (the correct lower bound `‖Q‖∗`).
    pub sure: Vec<Tuple>,
    /// Tuples possibly in the answer (the upper-bound band minus the sure
    /// band).
    pub maybe: Vec<Tuple>,
    /// Evaluation statistics.
    pub stats: UnknownStats,
}

impl UnknownOutput {
    /// True if some *sure* tuple has exactly these cells in column order.
    pub fn sure_contains(&self, cells: &[Option<Value>]) -> bool {
        contains(&self.sure, &self.column_attrs, cells)
    }

    /// True if some *maybe* tuple has exactly these cells in column order.
    pub fn maybe_contains(&self, cells: &[Option<Value>]) -> bool {
        contains(&self.maybe, &self.column_attrs, cells)
    }
}

fn contains(rows: &[Tuple], attrs: &[AttrId], cells: &[Option<Value>]) -> bool {
    rows.iter().any(|row| {
        attrs
            .iter()
            .zip(cells.iter())
            .all(|(attr, want)| row.get(*attr) == want.as_ref())
    })
}

/// Parses and evaluates a query under the unknown interpretation.
///
/// `constraints` are schema integrity constraints phrased over the same
/// range variables as the query (e.g. `e.MGR# != e.E#` for Figure 2); they
/// are assumed to hold for every substitution. `budget` bounds the number of
/// range-tuple combinations examined.
pub fn execute_unknown(
    db: &Database,
    text: &str,
    constraints: &[WhereExpr],
    budget: u128,
) -> QueryResult<UnknownOutput> {
    let query = parse(text)?;
    execute_unknown_query(db, &query, constraints, budget)
}

/// Evaluates an already-parsed query under the unknown interpretation.
pub fn execute_unknown_query(
    db: &Database,
    query: &Query,
    constraints: &[WhereExpr],
    budget: u128,
) -> QueryResult<UnknownOutput> {
    let resolved = resolve(db, query)?;

    let combos: u128 = resolved
        .ranges
        .iter()
        .map(|r| r.rows.len() as u128)
        .product();
    if combos > budget {
        return Err(QueryError::BudgetExceeded {
            required: combos,
            limit: budget,
        });
    }

    let mut output = UnknownOutput {
        columns: resolved.targets.iter().map(|(l, _)| l.clone()).collect(),
        column_attrs: resolved.targets.iter().map(|(_, a)| *a).collect(),
        sure: Vec::new(),
        maybe: Vec::new(),
        stats: UnknownStats::default(),
    };

    let mut indices = vec![0usize; resolved.ranges.len()];
    if resolved.ranges.iter().any(|r| r.rows.is_empty()) {
        return Ok(output);
    }
    // Hash-based deduplication: the combination loop is quadratic in range
    // cardinalities already, so the answer-set membership probe must not
    // add another linear factor on top.
    let mut seen_sure: std::collections::HashSet<Tuple> = std::collections::HashSet::new();
    let mut seen_maybe: std::collections::HashSet<Tuple> = std::collections::HashSet::new();
    loop {
        output.stats.combinations += 1;
        let combined = combine(&resolved, &indices);
        let certainty = classify(&resolved, constraints, &combined, &mut output.stats)?;
        if certainty != Certainty::No {
            let projected = project_targets(&resolved, &combined);
            match certainty {
                Certainty::Sure => {
                    if seen_sure.insert(projected.clone()) {
                        output.sure.push(projected);
                    }
                }
                Certainty::Maybe => {
                    if seen_maybe.insert(projected.clone()) {
                        output.maybe.push(projected);
                    }
                }
                Certainty::No => {}
            }
        }
        // Advance the counter over range rows.
        let mut pos = 0;
        loop {
            if pos == indices.len() {
                return Ok(output);
            }
            indices[pos] += 1;
            if indices[pos] < resolved.ranges[pos].rows.len() {
                break;
            }
            indices[pos] = 0;
            pos += 1;
        }
    }
}

fn combine(resolved: &ResolvedQuery, indices: &[usize]) -> Tuple {
    let mut combined = Tuple::new();
    for (range, idx) in resolved.ranges.iter().zip(indices) {
        for (attr, value) in range.rows[*idx].cells() {
            combined.set(attr, Some(value.clone()));
        }
    }
    combined
}

fn project_targets(resolved: &ResolvedQuery, combined: &Tuple) -> Tuple {
    let mut out = Tuple::new();
    for (_, attr) in &resolved.targets {
        out.set(*attr, combined.get(*attr).cloned());
    }
    out
}

fn classify(
    resolved: &ResolvedQuery,
    constraints: &[WhereExpr],
    combined: &Tuple,
    stats: &mut UnknownStats,
) -> QueryResult<Certainty> {
    let Some(where_ast) = &resolved.where_ast else {
        return Ok(Certainty::Sure);
    };
    let formula = lower(resolved, where_ast, combined)?;
    let assumptions: Vec<Formula> = constraints
        .iter()
        .map(|c| lower(resolved, c, combined))
        .collect::<QueryResult<_>>()?;
    if formula.variables().is_empty() && assumptions.iter().all(|a| a.variables().is_empty()) {
        // Fully ground: an ordinary two-valued evaluation.
        let assignment = std::collections::BTreeMap::new();
        let holds = formula.eval(&assignment);
        return Ok(if holds {
            Certainty::Sure
        } else {
            Certainty::No
        });
    }
    stats.tautology_checks += 1;
    let (decision, dstats) = decide_with_assumptions(&assumptions, &formula);
    stats.assignments += dstats.assignments;
    Ok(match decision {
        Decision::Valid => Certainty::Sure,
        Decision::Satisfiable => Certainty::Maybe,
        Decision::Unsatisfiable => Certainty::No,
    })
}

/// Lowers a where-clause into a formula, substituting the known cells of the
/// combined range tuple and turning null cells into variables named after
/// their qualified attribute.
fn lower(resolved: &ResolvedQuery, expr: &WhereExpr, combined: &Tuple) -> QueryResult<Formula> {
    Ok(match expr {
        WhereExpr::Cmp { left, op, right } => Formula::Cmp {
            left: lower_term(resolved, left, combined)?,
            op: *op,
            right: lower_term(resolved, right, combined)?,
        },
        WhereExpr::And(a, b) => lower(resolved, a, combined)?.and(lower(resolved, b, combined)?),
        WhereExpr::Or(a, b) => lower(resolved, a, combined)?.or(lower(resolved, b, combined)?),
        WhereExpr::Not(inner) => lower(resolved, inner, combined)?.negate(),
    })
}

fn lower_term(resolved: &ResolvedQuery, term: &Term, combined: &Tuple) -> QueryResult<Operand> {
    Ok(match term {
        Term::Const(value) => Operand::Const(value.clone()),
        Term::Attr(attr_ref) => {
            let attr = lookup(&resolved.ranges, attr_ref)?;
            match combined.get(attr) {
                Some(value) => Operand::Const(value.clone()),
                None => Operand::Var(attr_ref.label()),
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nullrel_storage::SchemaBuilder;

    fn emp_db() -> Database {
        let mut db = Database::new();
        db.create_table(
            SchemaBuilder::new("EMP")
                .required_column("E#")
                .column("NAME")
                .column("SEX")
                .column("MGR#")
                .column("TEL#")
                .key(&["E#"]),
        )
        .unwrap();
        let u = db.universe().clone();
        let t = db.table_mut("EMP").unwrap();
        for (e, n, s, m) in [
            (1120, "SMITH", "M", 2235),
            (4335, "BROWN", "F", 2235),
            (8799, "GREEN", "M", 1255),
        ] {
            t.insert_named(
                &u,
                &[
                    ("E#", Value::int(e)),
                    ("NAME", Value::str(n)),
                    ("SEX", Value::str(s)),
                    ("MGR#", Value::int(m)),
                ],
            )
            .unwrap();
        }
        db
    }

    const FIGURE_1: &str = "range of e is EMP retrieve (e.NAME, e.E#) \
        where (e.SEX = \"F\" and e.TEL# > 2634000) or (e.TEL# < 2634000)";

    /// Experiment E4: under the *unknown* interpretation, BROWN's where
    /// clause is a tautology in the unknown TEL# (female, so either the
    /// number is > 2634000 or it is < 2634000 … except exactly 2634000).
    /// The paper treats the clause as a tautology because the two TEL#
    /// conditions are complements in its reading; with the literal `<`/`>`
    /// operators the clause is valid for the male rows' complement case
    /// only when the equality gap is closed. We therefore check both the
    /// literal query (BROWN is "maybe") and the gap-free variant (BROWN is
    /// "sure"), and that the `ni` evaluation excludes BROWN either way.
    #[test]
    fn figure1_unknown_interpretation_includes_brown_when_clause_is_a_tautology() {
        let db = emp_db();
        // Literal Figure 1: > and < leave the value 2634000 uncovered, so
        // the clause is satisfiable but not valid: BROWN lands in "maybe".
        let out = execute_unknown(&db, FIGURE_1, &[], 1_000).unwrap();
        assert!(out.maybe_contains(&[Some(Value::str("BROWN")), Some(Value::int(4335))]));
        assert!(!out.sure_contains(&[Some(Value::str("BROWN")), Some(Value::int(4335))]));

        // Gap-free variant (≥ instead of >): now the clause is a genuine
        // tautology for any female employee with an unknown TEL#, so BROWN
        // is a *sure* answer under the unknown interpretation — exactly the
        // behaviour the paper contrasts with the ni interpretation.
        let gap_free = "range of e is EMP retrieve (e.NAME, e.E#) \
            where (e.SEX = \"F\" and e.TEL# >= 2634000) or (e.TEL# < 2634000)";
        let out = execute_unknown(&db, gap_free, &[], 1_000).unwrap();
        assert!(out.sure_contains(&[Some(Value::str("BROWN")), Some(Value::int(4335))]));
        // Male employees' clause reduces to TEL# < 2634000, which is merely
        // satisfiable.
        assert!(out.maybe_contains(&[Some(Value::str("SMITH")), Some(Value::int(1120))]));
        assert!(out.stats.tautology_checks >= 3);
        assert!(out.stats.assignments > 0);

        // The ni evaluation excludes BROWN in both variants (experiment E4's
        // headline contrast).
        let ni = crate::eval::execute(&db, gap_free).unwrap();
        assert!(ni.is_empty());
    }

    /// Experiment E5 (Figure 2): with the integrity constraints supplied,
    /// the last two conjuncts are tautologies, so tuples that satisfy the
    /// first two conditions are *sure* answers even when MGR# values are
    /// unknown.
    #[test]
    fn figure2_constraints_turn_maybe_into_sure() {
        let mut db = emp_db();
        let u = db.universe().clone();
        let t = db.table_mut("EMP").unwrap();
        // The manager row, with an unknown MGR# (null).
        t.insert_named(
            &u,
            &[
                ("E#", Value::int(2235)),
                ("NAME", Value::str("JONES")),
                ("SEX", Value::str("M")),
            ],
        )
        .unwrap();
        let q = "range of e is EMP range of m is EMP retrieve (e.NAME) \
            where m.SEX = \"M\" and e.MGR# = m.E# and e.MGR# != e.E# and e.E# != m.MGR#";
        // Without constraint knowledge, SMITH is only a maybe: m.MGR# (JONES'
        // manager) is unknown, so e.E# != m.MGR# cannot be certified.
        let out = execute_unknown(&db, q, &[], 10_000).unwrap();
        assert!(out.maybe_contains(&[Some(Value::str("SMITH"))]));
        assert!(!out.sure_contains(&[Some(Value::str("SMITH"))]));

        // Supplying the schema constraints of the Appendix ("an employee
        // cannot be the manager of his manager", here phrased directly as
        // e.E# != m.MGR# whenever e.MGR# = m.E#) certifies the answer.
        let constraints = vec![
            parse_constraint("e.E# != m.MGR#"),
            parse_constraint("e.MGR# != e.E#"),
        ];
        let out = execute_unknown(&db, q, &constraints, 10_000).unwrap();
        assert!(out.sure_contains(&[Some(Value::str("SMITH"))]));
        assert!(out.sure_contains(&[Some(Value::str("BROWN"))]));
    }

    /// Helper: parse a single comparison as a constraint expression.
    fn parse_constraint(text: &str) -> WhereExpr {
        let query_text =
            format!("range of e is EMP range of m is EMP retrieve (e.NAME) where {text}");
        parse(&query_text).unwrap().where_clause.unwrap()
    }

    #[test]
    fn queries_without_nulls_reduce_to_ground_evaluation() {
        let db = emp_db();
        let q = "range of e is EMP retrieve (e.NAME) where e.SEX = \"M\"";
        let out = execute_unknown(&db, q, &[], 1_000).unwrap();
        assert_eq!(out.sure.len(), 2);
        assert!(out.maybe.is_empty());
        assert_eq!(
            out.stats.tautology_checks, 0,
            "no nulls, no tautology checks"
        );
        // Agreement with the ni evaluation on total data (Section 7).
        let ni = crate::eval::execute(&db, q).unwrap();
        assert_eq!(ni.len(), 2);
    }

    #[test]
    fn no_where_clause_everything_is_sure() {
        let db = emp_db();
        let out = execute_unknown(&db, "range of e is EMP retrieve (e.E#)", &[], 100).unwrap();
        assert_eq!(out.sure.len(), 3);
        assert!(out.maybe.is_empty());
    }

    #[test]
    fn budget_is_enforced() {
        let db = emp_db();
        let err = execute_unknown(
            &db,
            "range of e is EMP range of m is EMP retrieve (e.E#) where e.E# = m.MGR#",
            &[],
            2,
        )
        .unwrap_err();
        assert!(matches!(err, QueryError::BudgetExceeded { .. }));
    }
}
