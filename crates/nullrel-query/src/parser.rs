//! Recursive-descent parser for the QUEL subset.
//!
//! Grammar (keywords case-insensitive):
//!
//! ```text
//! query      := range+ retrieve [where]
//! range      := "range" "of" IDENT "is" IDENT
//! retrieve   := "retrieve" "(" attr_ref ("," attr_ref)* ")"
//! where      := "where" or_expr
//! or_expr    := and_expr ("or" and_expr)*
//! and_expr   := not_expr ("and" not_expr)*
//! not_expr   := "not" not_expr | primary
//! primary    := "(" or_expr ")" | comparison
//! comparison := term OP term
//! term       := attr_ref | literal
//! attr_ref   := IDENT "." IDENT
//! ```

use nullrel_core::tvl::CompareOp;

use crate::ast::{AttrRef, Query, RangeDecl, Term, WhereExpr};
use crate::error::{QueryError, QueryResult};
use crate::lexer::{lex, Token, TokenKind};

/// Parses a full query from source text.
pub fn parse(input: &str) -> QueryResult<Query> {
    let tokens = lex(input)?;
    let mut parser = Parser { tokens, pos: 0 };
    let query = parser.query()?;
    parser.expect_end()?;
    Ok(query)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn query(&mut self) -> QueryResult<Query> {
        let mut ranges = Vec::new();
        while self.peek_is(&TokenKind::Range) {
            ranges.push(self.range_decl()?);
        }
        if ranges.is_empty() {
            return Err(self.err("expected at least one 'range of' declaration"));
        }
        self.expect(&TokenKind::Retrieve, "expected 'retrieve'")?;
        self.expect(&TokenKind::LParen, "expected '(' after 'retrieve'")?;
        let mut targets = vec![self.attr_ref()?];
        while self.peek_is(&TokenKind::Comma) {
            self.advance();
            targets.push(self.attr_ref()?);
        }
        self.expect(&TokenKind::RParen, "expected ')' after the target list")?;
        let where_clause = if self.peek_is(&TokenKind::Where) {
            self.advance();
            Some(self.or_expr()?)
        } else {
            None
        };
        Ok(Query {
            ranges,
            targets,
            where_clause,
        })
    }

    fn range_decl(&mut self) -> QueryResult<RangeDecl> {
        self.expect(&TokenKind::Range, "expected 'range'")?;
        self.expect(&TokenKind::Of, "expected 'of'")?;
        let variable = self.ident("expected a range variable name")?;
        self.expect(&TokenKind::Is, "expected 'is'")?;
        let relation = self.ident("expected a relation name")?;
        Ok(RangeDecl { variable, relation })
    }

    fn or_expr(&mut self) -> QueryResult<WhereExpr> {
        let mut left = self.and_expr()?;
        while self.peek_is(&TokenKind::Or) {
            self.advance();
            let right = self.and_expr()?;
            left = left.or(right);
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> QueryResult<WhereExpr> {
        let mut left = self.not_expr()?;
        while self.peek_is(&TokenKind::And) {
            self.advance();
            let right = self.not_expr()?;
            left = left.and(right);
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> QueryResult<WhereExpr> {
        if self.peek_is(&TokenKind::Not) {
            self.advance();
            return Ok(self.not_expr()?.negate());
        }
        self.primary()
    }

    fn primary(&mut self) -> QueryResult<WhereExpr> {
        if self.peek_is(&TokenKind::LParen) {
            self.advance();
            let inner = self.or_expr()?;
            self.expect(&TokenKind::RParen, "expected ')'")?;
            return Ok(inner);
        }
        let left = self.term()?;
        let op = self.compare_op()?;
        let right = self.term()?;
        Ok(WhereExpr::Cmp { left, op, right })
    }

    fn term(&mut self) -> QueryResult<Term> {
        match self.peek().map(|t| t.kind.clone()) {
            Some(TokenKind::Literal(value)) => {
                self.advance();
                Ok(Term::Const(value))
            }
            Some(TokenKind::Ident(_)) => Ok(Term::Attr(self.attr_ref()?)),
            _ => Err(self.err("expected an attribute reference or a literal")),
        }
    }

    fn compare_op(&mut self) -> QueryResult<CompareOp> {
        let op = match self.peek().map(|t| &t.kind) {
            Some(TokenKind::Eq) => CompareOp::Eq,
            Some(TokenKind::Ne) => CompareOp::Ne,
            Some(TokenKind::Lt) => CompareOp::Lt,
            Some(TokenKind::Le) => CompareOp::Le,
            Some(TokenKind::Gt) => CompareOp::Gt,
            Some(TokenKind::Ge) => CompareOp::Ge,
            _ => return Err(self.err("expected a comparison operator")),
        };
        self.advance();
        Ok(op)
    }

    fn attr_ref(&mut self) -> QueryResult<AttrRef> {
        let variable = self.ident("expected a range variable")?;
        self.expect(&TokenKind::Dot, "expected '.' after the range variable")?;
        let attribute = self.ident("expected an attribute name")?;
        Ok(AttrRef {
            variable,
            attribute,
        })
    }

    fn ident(&mut self, message: &str) -> QueryResult<String> {
        match self.peek().map(|t| t.kind.clone()) {
            Some(TokenKind::Ident(name)) => {
                self.advance();
                Ok(name)
            }
            _ => Err(self.err(message)),
        }
    }

    fn expect(&mut self, kind: &TokenKind, message: &str) -> QueryResult<()> {
        if self.peek_is(kind) {
            self.advance();
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn expect_end(&self) -> QueryResult<()> {
        if self.pos == self.tokens.len() {
            Ok(())
        } else {
            Err(self.err("unexpected trailing tokens"))
        }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek_is(&self, kind: &TokenKind) -> bool {
        self.peek().map(|t| &t.kind) == Some(kind)
    }

    fn advance(&mut self) {
        self.pos += 1;
    }

    fn err(&self, message: &str) -> QueryError {
        QueryError::Parse {
            position: self
                .peek()
                .map(|t| t.position)
                .unwrap_or_else(|| self.tokens.last().map(|t| t.position + 1).unwrap_or(0)),
            message: message.to_owned(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nullrel_core::value::Value;

    /// The text of Figure 1, query Q_A.
    pub const FIGURE_1: &str = "\
        range of e is EMP\n\
        retrieve (e.NAME, e.E#)\n\
        where (e.SEX = \"F\" and e.TEL# > 2634000) or (e.TEL# < 2634000)";

    /// The text of Figure 2, query Q_B.
    pub const FIGURE_2: &str = "\
        range of e is EMP\n\
        range of m is EMP\n\
        retrieve (e.NAME)\n\
        where m.SEX = \"M\" and e.MGR# = m.E# and e.MGR# != e.E# and e.E# != m.MGR#";

    #[test]
    fn parses_figure_1() {
        let q = parse(FIGURE_1).unwrap();
        assert_eq!(q.ranges.len(), 1);
        assert_eq!(q.ranges[0].variable, "e");
        assert_eq!(q.ranges[0].relation, "EMP");
        assert_eq!(q.targets.len(), 2);
        assert_eq!(q.targets[1].attribute, "E#");
        let w = q.where_clause.unwrap();
        assert_eq!(w.atom_count(), 3);
        // Top level is an OR.
        assert!(matches!(w, WhereExpr::Or(..)));
    }

    #[test]
    fn parses_figure_2() {
        let q = parse(FIGURE_2).unwrap();
        assert_eq!(q.ranges.len(), 2);
        assert_eq!(q.targets.len(), 1);
        let w = q.where_clause.unwrap();
        assert_eq!(w.atom_count(), 4);
        // Left-associated ANDs.
        assert!(matches!(w, WhereExpr::And(..)));
        assert!(w.attr_refs().iter().any(|r| r.variable == "m"));
    }

    #[test]
    fn where_clause_is_optional() {
        let q = parse("range of p is PS retrieve (p.S#)").unwrap();
        assert!(q.where_clause.is_none());
        assert_eq!(q.targets[0].label(), "p.S#");
    }

    #[test]
    fn not_and_precedence() {
        let q = parse(
            "range of e is EMP retrieve (e.E#) \
             where not e.SEX = \"F\" or e.E# > 1 and e.E# < 9",
        )
        .unwrap();
        let w = q.where_clause.unwrap();
        // OR binds loosest: Or(Not(...), And(...)).
        match w {
            WhereExpr::Or(l, r) => {
                assert!(matches!(*l, WhereExpr::Not(_)));
                assert!(matches!(*r, WhereExpr::And(..)));
            }
            other => panic!("unexpected shape: {other:?}"),
        }
    }

    #[test]
    fn literal_on_the_left_is_allowed() {
        let q = parse("range of e is EMP retrieve (e.E#) where 100 <= e.E#").unwrap();
        match q.where_clause.unwrap() {
            WhereExpr::Cmp { left, op, .. } => {
                assert_eq!(left, Term::Const(Value::int(100)));
                assert_eq!(op, nullrel_core::tvl::CompareOp::Le);
            }
            other => panic!("unexpected shape: {other:?}"),
        }
    }

    #[test]
    fn syntax_errors_are_reported() {
        assert!(matches!(
            parse("retrieve (e.A)"),
            Err(QueryError::Parse { .. })
        ));
        assert!(matches!(
            parse("range of e is EMP retrieve ()"),
            Err(QueryError::Parse { .. })
        ));
        assert!(matches!(
            parse("range of e is EMP retrieve (e.A) where e.A ="),
            Err(QueryError::Parse { .. })
        ));
        assert!(matches!(
            parse("range of e is EMP retrieve (e.A) extra"),
            Err(QueryError::Parse { .. })
        ));
        assert!(matches!(
            parse("range of e is EMP retrieve (e.A) where e.A 5"),
            Err(QueryError::Parse { .. })
        ));
    }
}
