//! Planning: translating a resolved query into a relational-algebra
//! expression over x-relations.
//!
//! The translation follows the classical calculus → algebra correspondence
//! the paper relies on for efficient evaluation: the Cartesian product of
//! the range relations (whose scopes the analyzer has made disjoint), a
//! selection with the where-clause predicate under the three-valued `ni`
//! semantics, and a projection onto the target list.

use nullrel_core::algebra::Expr;
use nullrel_core::predicate::Predicate;
use nullrel_core::universe::AttrSet;

use crate::analyze::ResolvedQuery;

/// Builds the logical plan for a resolved query.
pub fn plan(resolved: &ResolvedQuery) -> Expr {
    let mut expr: Option<Expr> = None;
    for range in &resolved.ranges {
        let scan = Expr::literal(range.xrelation());
        expr = Some(match expr {
            None => scan,
            Some(prev) => prev.product(scan),
        });
    }
    let mut expr = expr.unwrap_or_else(|| Expr::literal(nullrel_core::XRelation::empty()));
    if let Some(predicate) = &resolved.predicate {
        expr = expr.select(predicate.clone());
    } else {
        expr = expr.select(Predicate::always());
    }
    let targets: AttrSet = resolved.targets.iter().map(|(_, attr)| *attr).collect();
    expr.project(targets)
}

/// Renders the plan with the query-local universe (for debugging and the
/// examples' `--explain` style output).
pub fn explain(resolved: &ResolvedQuery) -> String {
    plan(resolved).explain(&resolved.universe)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::resolve;
    use crate::parser::parse;
    use nullrel_core::algebra::NoSource;
    use nullrel_core::value::Value;
    use nullrel_storage::{Database, SchemaBuilder};

    fn ps_db() -> Database {
        let mut db = Database::new();
        db.create_table(SchemaBuilder::new("PS").column("S#").column("P#")).unwrap();
        let u = db.universe().clone();
        let t = db.table_mut("PS").unwrap();
        for (s, p) in [("s1", Some("p1")), ("s1", Some("p2")), ("s2", Some("p1")), ("s3", None)] {
            let mut cells = vec![("S#", Value::str(s))];
            if let Some(p) = p {
                cells.push(("P#", Value::str(p)));
            }
            t.insert_named(&u, &cells).unwrap();
        }
        db
    }

    #[test]
    fn plan_is_project_select_product_of_scans() {
        let db = ps_db();
        let query = parse(
            "range of a is PS range of b is PS retrieve (a.S#) where a.P# = b.P#",
        )
        .unwrap();
        let resolved = resolve(&db, &query).unwrap();
        let text = explain(&resolved);
        assert!(text.starts_with("Project"));
        assert!(text.contains("Select"));
        assert!(text.contains("Product"));
        // The plan evaluates without needing a named-relation source because
        // the scans are literals.
        let result = plan(&resolved).eval(&NoSource).unwrap();
        assert!(result.len() >= 2);
    }

    #[test]
    fn plan_without_where_clause_selects_everything() {
        let db = ps_db();
        let query = parse("range of a is PS retrieve (a.S#)").unwrap();
        let resolved = resolve(&db, &query).unwrap();
        let result = plan(&resolved).eval(&NoSource).unwrap();
        assert_eq!(result.len(), 3, "s1, s2, s3");
    }
}
