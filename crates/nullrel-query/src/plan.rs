//! Planning: translating a resolved query into a relational-algebra
//! expression over x-relations.
//!
//! The translation follows the classical calculus → algebra correspondence
//! the paper relies on for efficient evaluation: the Cartesian product of
//! the range relations (whose scopes the analyzer has made disjoint), a
//! selection with the where-clause predicate under the three-valued `ni`
//! semantics, and a projection onto the target list.
//!
//! Two plan shapes are produced. [`plan`] embeds each range's rows as a
//! literal x-relation — self-contained, evaluable against
//! [`nullrel_core::algebra::NoSource`], and the input of the differential
//! oracle. [`plan_access`] instead references the stored tables through
//! `Rename(Named)` scans, which lets the `nullrel-exec` engine choose real
//! access paths (index probes) from the catalog.

use nullrel_core::algebra::Expr;
use nullrel_core::predicate::Predicate;
use nullrel_core::universe::{AttrSet, Universe};
use nullrel_obs::Phase;
use nullrel_storage::Database;

use crate::analyze::ResolvedQuery;
use crate::error::QueryResult;
use crate::parser::parse;

/// Builds the logical plan for a resolved query with literal scans.
pub fn plan(resolved: &ResolvedQuery) -> Expr {
    build(resolved, |range| Expr::literal(range.xrelation()))
}

/// Builds the logical plan with named base-relation scans (each wrapped in
/// the range variable's attribute renaming), so the physical engine can
/// select access paths from the catalog the plan is evaluated against.
pub fn plan_access(resolved: &ResolvedQuery) -> Expr {
    build(resolved, |range| {
        Expr::named(&range.relation).rename(range.rename.clone())
    })
}

fn build(resolved: &ResolvedQuery, scan: impl Fn(&crate::analyze::ResolvedRange) -> Expr) -> Expr {
    let mut expr: Option<Expr> = None;
    for range in &resolved.ranges {
        let scan = scan(range);
        expr = Some(match expr {
            None => scan,
            Some(prev) => prev.product(scan),
        });
    }
    let mut expr = expr.unwrap_or_else(|| Expr::literal(nullrel_core::XRelation::empty()));
    if let Some(predicate) = &resolved.predicate {
        expr = expr.select(predicate.clone());
    } else {
        expr = expr.select(Predicate::always());
    }
    let targets: AttrSet = resolved.targets.iter().map(|(_, attr)| *attr).collect();
    expr.project(targets)
}

/// Renders the logical plan with the query-local universe (for debugging
/// and the examples' `--explain` style output).
pub fn explain(resolved: &ResolvedQuery) -> String {
    plan(resolved).explain(&resolved.universe)
}

/// The full `--explain` report for a query: the logical plan, the
/// optimizer rules that fired (cost-based join ordering included), and the
/// executed physical plan annotated with real access-path counters (rows
/// examined/returned, `ni` rows, index usage) next to the optimizer's
/// `est_rows` cardinality estimates, closed by the plan's mean q-error so
/// estimation drift is visible at a glance.
pub fn explain_physical(db: &Database, text: &str) -> QueryResult<String> {
    explain_physical_with(db, text, nullrel_exec::OptimizeOptions::default())
}

/// [`explain_physical`] with explicit engine options — in particular the
/// degree-of-parallelism ceiling: operators the engine fans out report
/// their granted degree and per-worker row counters
/// (`par=4 workers=[…/… …]`) in the physical section.
pub fn explain_physical_with(
    db: &Database,
    text: &str,
    options: nullrel_exec::OptimizeOptions,
) -> QueryResult<String> {
    let query = parse(text)?;
    let resolved = crate::analyze::resolve_lazy(db, &query)?;
    let logical = plan_access(&resolved);
    explain_physical_expr_with(db, &logical, &resolved.universe, options)
}

/// The full `--explain` report for an arbitrary algebra [`Expr`] evaluated
/// against the database's catalog. QUEL covers only
/// select/project/join plans, so set operators, division, and the
/// union-join — which the engine now streams natively — are explained
/// through this entry point.
pub fn explain_physical_expr(
    db: &Database,
    expr: &Expr,
    universe: &Universe,
) -> QueryResult<String> {
    explain_physical_expr_with(db, expr, universe, nullrel_exec::OptimizeOptions::default())
}

/// [`explain_physical_expr`] with explicit engine options. With
/// [`nullrel_exec::OptimizeOptions::adaptive`] set, the physical section
/// shows every executed stage (operator labels suffixed `@stageN`, their
/// `hist=` bucket annotations included) and the `re-opt@op` events that
/// re-planned the remaining stages.
pub fn explain_physical_expr_with(
    db: &Database,
    expr: &Expr,
    universe: &Universe,
    options: nullrel_exec::OptimizeOptions,
) -> QueryResult<String> {
    let optimized = nullrel_exec::optimize_with(expr, db, options);
    let stats = if options.adaptive.is_some() {
        let (_, stats) = nullrel_exec::execute_expr_with(expr, db, universe, options)?;
        stats
    } else {
        let pipeline = nullrel_exec::compile_with(
            &optimized.expr,
            db,
            universe,
            nullrel_core::tvl::Truth::True,
            options,
        )?;
        let (_, stats) = pipeline.run()?;
        stats
    };
    let mut out = String::new();
    out.push_str("logical:\n");
    out.push_str(&expr.explain(universe));
    if !optimized.applied.is_empty() {
        out.push_str("rules:\n");
        for rule in &optimized.applied {
            out.push_str("  ");
            out.push_str(rule);
            out.push('\n');
        }
        if stats.reoptimized() {
            // The rules above describe the *initial* static plan; the
            // re-opt events in the physical section replanned later
            // stages against observed statistics.
            out.push_str("  (initial plan — re-opt events below replanned later stages)\n");
        }
    }
    out.push_str("physical (executed):\n");
    out.push_str(&stats.render());
    out.push_str(&estimation_line(&stats));
    Ok(out)
}

/// The closing `estimation:` line of explain reports: the plan's mean
/// q-error when at least one operator carried a cardinality estimate,
/// `q-err=n/a` otherwise (e.g. literal-only plans with no catalog).
fn estimation_line(stats: &nullrel_exec::ExecStats) -> String {
    match stats.estimation_error() {
        Some(q) => format!(
            "estimation: mean q-error {q:.2} over {} operator(s)\n",
            stats.ops.iter().filter(|o| o.est_rows.is_some()).count()
        ),
        None => "estimation: q-err=n/a (no operator carried an estimate)\n".to_owned(),
    }
}

/// `EXPLAIN ANALYZE`: parses, plans, and **executes** the query with
/// per-tuple operator timing armed, then reports the executed physical
/// plan annotated with wall-clock self-time per operator, its share of
/// total query time, actual vs. estimated rows with per-operator q-error,
/// and granted vs. used parallelism — closed by a `phases:` line breaking
/// the query lifecycle into parse/plan/optimize/compile/run.
pub fn explain_analyze(db: &Database, text: &str) -> QueryResult<String> {
    explain_analyze_with(db, text, nullrel_exec::OptimizeOptions::default())
}

/// [`explain_analyze`] with explicit engine options (degree of
/// parallelism, adaptive staging, join-ordering strategy).
pub fn explain_analyze_with(
    db: &Database,
    text: &str,
    options: nullrel_exec::OptimizeOptions,
) -> QueryResult<String> {
    // Arm per-tuple timing before anything runs: every operator the
    // compiler builds is wrapped in a `TimedOp` while the guard lives.
    let _timing = nullrel_obs::TimingGuard::new();
    let _query_trace = nullrel_obs::begin_query(format!("EXPLAIN ANALYZE {text}"));
    let start = std::time::Instant::now();
    let (query, parse_d) = nullrel_obs::phase_timed(Phase::Parse, || parse(text));
    let query = query?;
    let (planned, plan_d) = nullrel_obs::phase_timed(Phase::Plan, || {
        let resolved = crate::analyze::resolve_lazy(db, &query)?;
        let logical = plan_access(&resolved);
        QueryResult::Ok((resolved, logical))
    });
    let (resolved, logical) = planned?;
    analyze_expr(
        db,
        &logical,
        &resolved.universe,
        options,
        Some((parse_d, plan_d)),
        start,
    )
}

/// [`explain_analyze`] for an arbitrary algebra [`Expr`] — how set
/// operators, division, and union-join plans (outside the QUEL subset)
/// are analyzed.
pub fn explain_analyze_expr(
    db: &Database,
    expr: &Expr,
    universe: &Universe,
) -> QueryResult<String> {
    explain_analyze_expr_with(db, expr, universe, nullrel_exec::OptimizeOptions::default())
}

/// [`explain_analyze_expr`] with explicit engine options.
pub fn explain_analyze_expr_with(
    db: &Database,
    expr: &Expr,
    universe: &Universe,
    options: nullrel_exec::OptimizeOptions,
) -> QueryResult<String> {
    let _timing = nullrel_obs::TimingGuard::new();
    let _query_trace = nullrel_obs::begin_query("EXPLAIN ANALYZE (expr)");
    analyze_expr(db, expr, universe, options, None, std::time::Instant::now())
}

fn analyze_expr(
    db: &Database,
    expr: &Expr,
    universe: &Universe,
    options: nullrel_exec::OptimizeOptions,
    parse_plan: Option<(std::time::Duration, std::time::Duration)>,
    start: std::time::Instant,
) -> QueryResult<String> {
    use nullrel_exec::fmt_duration;
    use std::time::Duration;
    let (optimized, optimize_d) = nullrel_obs::phase_timed(Phase::Optimize, || {
        nullrel_exec::optimize_with(expr, db, options)
    });
    let (stats, compile_d, run_d) = if options.adaptive.is_some() {
        // Adaptive execution interleaves compile and run per stage; the
        // whole staged loop is reported as run time.
        let run = std::time::Instant::now();
        let (_, stats) = nullrel_exec::execute_expr_with(expr, db, universe, options)?;
        (stats, Duration::ZERO, run.elapsed())
    } else {
        let (pipeline, compile_d) = nullrel_obs::phase_timed(Phase::Compile, || {
            nullrel_exec::compile_with(
                &optimized.expr,
                db,
                universe,
                nullrel_core::tvl::Truth::True,
                options,
            )
        });
        let pipeline = pipeline?;
        let (ran, run_d) = nullrel_obs::phase_timed(Phase::Run, || pipeline.run());
        let (_, stats) = ran?;
        (stats, compile_d, run_d)
    };
    let total = start.elapsed();
    nullrel_obs::recorder::annotate(|r| {
        r.rows_in = stats.rows_examined() as u64;
        r.rows_out = stats.rows_returned() as u64;
        r.batches = stats.batches() as u64;
        r.par_granted = stats.max_parallelism() as u32;
        r.par_used = stats.max_workers_used() as u32;
        r.q_error = stats.estimation_error();
        r.reopts = stats.reopts.len() as u32;
        r.mem_rows = stats.peak_mem_rows() as u64;
        r.mem_bytes = stats.peak_mem_bytes() as u64;
        r.plan = stats.render();
    });
    let mut out = String::new();
    out.push_str("logical:\n");
    out.push_str(&expr.explain(universe));
    if !optimized.applied.is_empty() {
        out.push_str("rules:\n");
        for rule in &optimized.applied {
            out.push_str("  ");
            out.push_str(rule);
            out.push('\n');
        }
    }
    out.push_str("physical (analyzed):\n");
    out.push_str(&stats.render_analyze(run_d));
    out.push_str(&estimation_line(&stats));
    out.push_str("phases:");
    if let Some((parse_d, plan_d)) = parse_plan {
        out.push_str(&format!(
            " parse={} plan={}",
            fmt_duration(parse_d),
            fmt_duration(plan_d)
        ));
    }
    out.push_str(&format!(
        " optimize={} compile={} run={} total={}\n",
        fmt_duration(optimize_d),
        if options.adaptive.is_some() {
            "(staged)".to_owned()
        } else {
            fmt_duration(compile_d)
        },
        fmt_duration(run_d),
        fmt_duration(total)
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::resolve;
    use crate::parser::parse;
    use nullrel_core::algebra::NoSource;
    use nullrel_core::value::Value;
    use nullrel_storage::{Database, SchemaBuilder};

    fn ps_db() -> Database {
        let mut db = Database::new();
        db.create_table(SchemaBuilder::new("PS").column("S#").column("P#"))
            .unwrap();
        let u = db.universe().clone();
        let t = db.table_mut("PS").unwrap();
        for (s, p) in [
            ("s1", Some("p1")),
            ("s1", Some("p2")),
            ("s2", Some("p1")),
            ("s3", None),
        ] {
            let mut cells = vec![("S#", Value::str(s))];
            if let Some(p) = p {
                cells.push(("P#", Value::str(p)));
            }
            t.insert_named(&u, &cells).unwrap();
        }
        db
    }

    #[test]
    fn plan_is_project_select_product_of_scans() {
        let db = ps_db();
        let query =
            parse("range of a is PS range of b is PS retrieve (a.S#) where a.P# = b.P#").unwrap();
        let resolved = resolve(&db, &query).unwrap();
        let text = explain(&resolved);
        assert!(text.starts_with("Project"));
        assert!(text.contains("Select"));
        assert!(text.contains("Product"));
        // The plan evaluates without needing a named-relation source because
        // the scans are literals.
        let result = plan(&resolved).eval(&NoSource).unwrap();
        assert!(result.len() >= 2);
    }

    /// Acceptance: queries over the full algebra explain to dedicated
    /// streaming operators — no fallback/oracle-scan node appears.
    #[test]
    fn explain_physical_expr_shows_streaming_set_operators() {
        use nullrel_core::predicate::Predicate;
        use nullrel_core::tvl::CompareOp;
        use nullrel_core::universe::attr_set;

        let db = ps_db();
        let u = db.universe().clone();
        let s = u.lookup("S#").unwrap();
        let p = u.lookup("P#").unwrap();
        let by = |k: &str| {
            Expr::named("PS")
                .select(Predicate::attr_const(s, CompareOp::Eq, k))
                .project(attr_set([p]))
        };
        let division = Expr::named("PS").divide(attr_set([s]), by("s2"));
        let report = explain_physical_expr(&db, &division, &u).unwrap();
        assert!(report.contains("Divide over [S#]"), "{report}");
        assert!(!report.contains("EvalScan"), "{report}");

        let setops = by("s1").difference(by("s2")).union(by("s3"));
        let report = explain_physical_expr(&db, &setops, &u).unwrap();
        assert!(report.contains("Union"), "{report}");
        assert!(report.contains("Difference"), "{report}");
        assert!(!report.contains("EvalScan"), "{report}");

        let uj = Expr::named("PS").union_join(Expr::named("PS"), attr_set([s]));
        let report = explain_physical_expr(&db, &uj, &u).unwrap();
        assert!(report.contains("UnionJoin on [S#]"), "{report}");
        assert!(!report.contains("EvalScan"), "{report}");
    }

    /// The parallel engine's degree is visible per operator in explain
    /// reports, with per-worker row counters.
    #[test]
    fn explain_physical_with_reports_parallel_degree() {
        use nullrel_exec::{OptimizeOptions, Parallelism};
        let db = ps_db();
        let options = OptimizeOptions {
            parallelism: Parallelism::Threads(4),
            parallel_row_threshold: 0,
            ..OptimizeOptions::default()
        };
        let report = explain_physical_with(
            &db,
            "range of a is PS retrieve (a.P#) where a.S# = \"s1\"",
            options,
        )
        .unwrap();
        assert!(report.contains("par=4"), "{report}");
        assert!(report.contains("workers=["), "{report}");
        // Default options keep the serial engine (no NULLREL_THREADS set
        // in unit tests): no degree annotations appear.
        let serial = explain_physical(&db, "range of a is PS retrieve (a.P#) where a.S# = \"s1\"");
        if std::env::var("NULLREL_THREADS").is_err() {
            assert!(!serial.unwrap().contains("par="), "serial by default");
        }
    }

    /// Satellite: explain reports estimated next to actual row counts and
    /// close with the plan's mean q-error.
    #[test]
    fn explain_physical_reports_estimates_and_q_error() {
        let db = ps_db();
        let report =
            explain_physical(&db, "range of a is PS retrieve (a.P#) where a.S# = \"s1\"").unwrap();
        assert!(report.contains("est="), "{report}");
        assert!(report.contains("estimation: mean q-error"), "{report}");
    }

    /// A three-range query goes through the cost-based join enumerator and
    /// the rule shows up in the explain report.
    #[test]
    fn explain_physical_shows_cost_based_join_ordering() {
        let db = ps_db();
        let report = explain_physical(
            &db,
            "range of a is PS range of b is PS range of c is PS retrieve (a.S#) \
             where a.P# = b.P# and b.S# = c.S#",
        )
        .unwrap();
        assert!(report.contains("cost-based-join-order"), "{report}");
        // The *executed* plan joins everything by hash — the only Product
        // is in the unoptimized logical section above it.
        let physical = report.split("physical (executed):").nth(1).unwrap();
        assert!(
            !physical.contains("Product"),
            "no Cartesian product:\n{report}"
        );
        assert!(physical.contains("HashJoin"), "{report}");
    }

    #[test]
    fn plan_without_where_clause_selects_everything() {
        let db = ps_db();
        let query = parse("range of a is PS retrieve (a.S#)").unwrap();
        let resolved = resolve(&db, &query).unwrap();
        let result = plan(&resolved).eval(&NoSource).unwrap();
        assert_eq!(result.len(), 3, "s1, s2, s3");
    }
}
