//! Tokenizer for the QUEL subset used by the paper's Figures 1 and 2.
//!
//! The accepted lexicon mirrors INGRES-era QUEL: keywords (`range`, `of`,
//! `is`, `retrieve`, `where`, `and`, `or`, `not`), identifiers that may
//! contain `#` (as in `E#`, `TEL#`), double-quoted string literals, integer
//! and floating-point numbers, the comparison operators
//! `= != < <= > >=`, and the punctuation `( ) , .`.

use nullrel_core::value::Value;

use crate::error::{QueryError, QueryResult};

/// One lexical token, tagged with its byte offset in the source text.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// Byte offset of the token's first character.
    pub position: usize,
}

/// The kinds of token the QUEL subset uses.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// `range`
    Range,
    /// `of`
    Of,
    /// `is`
    Is,
    /// `retrieve`
    Retrieve,
    /// `where`
    Where,
    /// `and`
    And,
    /// `or`
    Or,
    /// `not`
    Not,
    /// An identifier (range variable, relation name, or attribute name).
    Ident(String),
    /// A literal value (string or number).
    Literal(Value),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// Lexes the whole input into a token stream.
pub fn lex(input: &str) -> QueryResult<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        let start = i;
        match c {
            '(' => {
                tokens.push(Token {
                    kind: TokenKind::LParen,
                    position: start,
                });
                i += 1;
            }
            ')' => {
                tokens.push(Token {
                    kind: TokenKind::RParen,
                    position: start,
                });
                i += 1;
            }
            ',' => {
                tokens.push(Token {
                    kind: TokenKind::Comma,
                    position: start,
                });
                i += 1;
            }
            '.' => {
                tokens.push(Token {
                    kind: TokenKind::Dot,
                    position: start,
                });
                i += 1;
            }
            '=' => {
                tokens.push(Token {
                    kind: TokenKind::Eq,
                    position: start,
                });
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::Ne,
                        position: start,
                    });
                    i += 2;
                } else {
                    return Err(QueryError::Lex {
                        position: start,
                        message: "expected '=' after '!'".into(),
                    });
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::Le,
                        position: start,
                    });
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    tokens.push(Token {
                        kind: TokenKind::Ne,
                        position: start,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Lt,
                        position: start,
                    });
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::Ge,
                        position: start,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Gt,
                        position: start,
                    });
                    i += 1;
                }
            }
            '"' => {
                let mut j = i + 1;
                while j < bytes.len() && bytes[j] != b'"' {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(QueryError::Lex {
                        position: start,
                        message: "unterminated string literal".into(),
                    });
                }
                let text = &input[i + 1..j];
                tokens.push(Token {
                    kind: TokenKind::Literal(Value::str(text)),
                    position: start,
                });
                i = j + 1;
            }
            c if c.is_ascii_digit()
                || (c == '-' && bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit())) =>
            {
                let mut j = i + 1;
                let mut saw_dot = false;
                while j < bytes.len()
                    && ((bytes[j] as char).is_ascii_digit() || (bytes[j] == b'.' && !saw_dot))
                {
                    if bytes[j] == b'.' {
                        // A dot not followed by a digit terminates the number
                        // (it is the qualification dot of `e.NAME`).
                        if !bytes.get(j + 1).is_some_and(|b| b.is_ascii_digit()) {
                            break;
                        }
                        saw_dot = true;
                    }
                    j += 1;
                }
                let text = &input[i..j];
                let value = if saw_dot {
                    text.parse::<f64>()
                        .map(Value::float)
                        .map_err(|_| QueryError::Lex {
                            position: start,
                            message: format!("bad float literal {text:?}"),
                        })?
                } else {
                    text.parse::<i64>()
                        .map(Value::Int)
                        .map_err(|_| QueryError::Lex {
                            position: start,
                            message: format!("bad integer literal {text:?}"),
                        })?
                };
                tokens.push(Token {
                    kind: TokenKind::Literal(value),
                    position: start,
                });
                i = j;
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut j = i + 1;
                while j < bytes.len() {
                    let cj = bytes[j] as char;
                    if cj.is_alphanumeric() || cj == '_' || cj == '#' {
                        j += 1;
                    } else {
                        break;
                    }
                }
                let word = &input[i..j];
                let kind = match word.to_ascii_lowercase().as_str() {
                    "range" => TokenKind::Range,
                    "of" => TokenKind::Of,
                    "is" => TokenKind::Is,
                    "retrieve" => TokenKind::Retrieve,
                    "where" => TokenKind::Where,
                    "and" => TokenKind::And,
                    "or" => TokenKind::Or,
                    "not" => TokenKind::Not,
                    _ => TokenKind::Ident(word.to_owned()),
                };
                tokens.push(Token {
                    kind,
                    position: start,
                });
                i = j;
            }
            other => {
                return Err(QueryError::Lex {
                    position: start,
                    message: format!("unexpected character {other:?}"),
                });
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        lex(input).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_the_figure1_query() {
        let toks = kinds(
            "range of e is EMP\n\
             retrieve (e.NAME, e.E#)\n\
             where (e.SEX = \"F\" and e.TEL# > 2634000) or (e.TEL# < 2634000)",
        );
        assert_eq!(toks[0], TokenKind::Range);
        assert!(toks.contains(&TokenKind::Ident("EMP".into())));
        assert!(toks.contains(&TokenKind::Ident("TEL#".into())));
        assert!(toks.contains(&TokenKind::Literal(Value::str("F"))));
        assert!(toks.contains(&TokenKind::Literal(Value::int(2_634_000))));
        assert!(toks.contains(&TokenKind::Gt));
        assert!(toks.contains(&TokenKind::Or));
    }

    #[test]
    fn operators_and_punctuation() {
        assert_eq!(
            kinds("= != < <= > >= <> ( ) , ."),
            vec![
                TokenKind::Eq,
                TokenKind::Ne,
                TokenKind::Lt,
                TokenKind::Le,
                TokenKind::Gt,
                TokenKind::Ge,
                TokenKind::Ne,
                TokenKind::LParen,
                TokenKind::RParen,
                TokenKind::Comma,
                TokenKind::Dot,
            ]
        );
    }

    #[test]
    fn numbers_and_strings() {
        assert_eq!(
            kinds("42 -7 2.5 \"hello world\""),
            vec![
                TokenKind::Literal(Value::int(42)),
                TokenKind::Literal(Value::int(-7)),
                TokenKind::Literal(Value::float(2.5)),
                TokenKind::Literal(Value::str("hello world")),
            ]
        );
    }

    #[test]
    fn dotted_attribute_does_not_eat_the_dot_as_a_float() {
        let toks = kinds("e.E# = 12.m");
        // "12." followed by a letter: the 12 is an integer, the dot is a Dot.
        assert!(toks.contains(&TokenKind::Literal(Value::int(12))));
        assert_eq!(toks.iter().filter(|k| **k == TokenKind::Dot).count(), 2);
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert_eq!(
            kinds("RANGE Of IS Retrieve WHERE AND or NOT"),
            vec![
                TokenKind::Range,
                TokenKind::Of,
                TokenKind::Is,
                TokenKind::Retrieve,
                TokenKind::Where,
                TokenKind::And,
                TokenKind::Or,
                TokenKind::Not,
            ]
        );
    }

    #[test]
    fn lex_errors() {
        assert!(matches!(lex("a @ b"), Err(QueryError::Lex { .. })));
        assert!(matches!(lex("\"unterminated"), Err(QueryError::Lex { .. })));
        assert!(matches!(lex("a ! b"), Err(QueryError::Lex { .. })));
    }

    #[test]
    fn positions_are_byte_offsets() {
        let toks = lex("ab  cd").unwrap();
        assert_eq!(toks[0].position, 0);
        assert_eq!(toks[1].position, 4);
    }
}
