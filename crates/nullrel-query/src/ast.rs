//! The abstract syntax of the QUEL subset.
//!
//! A query has the three clauses shown in the paper's Figures 1 and 2: a
//! list of `range of <var> is <relation>` declarations, a `retrieve`
//! target list of qualified attributes, and an optional `where`
//! qualification built from comparisons, `and`, `or`, and `not`.

use nullrel_core::tvl::CompareOp;
use nullrel_core::value::Value;

/// A parsed query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// The `range of` declarations, in source order.
    pub ranges: Vec<RangeDecl>,
    /// The `retrieve` target list.
    pub targets: Vec<AttrRef>,
    /// The `where` qualification, if present.
    pub where_clause: Option<WhereExpr>,
}

/// A `range of <var> is <relation>` declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RangeDecl {
    /// The tuple variable name (`e`, `m`, …).
    pub variable: String,
    /// The relation the variable ranges over (`EMP`, `PS`, …).
    pub relation: String,
}

/// A qualified attribute reference `var.ATTR`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AttrRef {
    /// The range variable.
    pub variable: String,
    /// The attribute name within the variable's relation.
    pub attribute: String,
}

impl AttrRef {
    /// Builds a reference from variable and attribute names.
    pub fn new(variable: impl Into<String>, attribute: impl Into<String>) -> Self {
        AttrRef {
            variable: variable.into(),
            attribute: attribute.into(),
        }
    }

    /// The display label of the reference (`e.NAME`).
    pub fn label(&self) -> String {
        format!("{}.{}", self.variable, self.attribute)
    }
}

/// One side of a comparison in the `where` clause.
#[derive(Debug, Clone, PartialEq)]
pub enum Term {
    /// A qualified attribute.
    Attr(AttrRef),
    /// A literal constant.
    Const(Value),
}

/// A `where` qualification.
#[derive(Debug, Clone, PartialEq)]
pub enum WhereExpr {
    /// A relational expression `left θ right`.
    Cmp {
        /// Left term.
        left: Term,
        /// Comparison operator.
        op: CompareOp,
        /// Right term.
        right: Term,
    },
    /// Conjunction.
    And(Box<WhereExpr>, Box<WhereExpr>),
    /// Disjunction.
    Or(Box<WhereExpr>, Box<WhereExpr>),
    /// Negation.
    Not(Box<WhereExpr>),
}

impl WhereExpr {
    /// Conjunction helper.
    #[must_use]
    pub fn and(self, other: WhereExpr) -> WhereExpr {
        WhereExpr::And(Box::new(self), Box::new(other))
    }

    /// Disjunction helper.
    #[must_use]
    pub fn or(self, other: WhereExpr) -> WhereExpr {
        WhereExpr::Or(Box::new(self), Box::new(other))
    }

    /// Negation helper.
    #[must_use]
    pub fn negate(self) -> WhereExpr {
        WhereExpr::Not(Box::new(self))
    }

    /// Every attribute reference appearing in the expression.
    pub fn attr_refs(&self) -> Vec<&AttrRef> {
        let mut out = Vec::new();
        self.collect_attr_refs(&mut out);
        out
    }

    fn collect_attr_refs<'a>(&'a self, out: &mut Vec<&'a AttrRef>) {
        match self {
            WhereExpr::Cmp { left, right, .. } => {
                if let Term::Attr(a) = left {
                    out.push(a);
                }
                if let Term::Attr(a) = right {
                    out.push(a);
                }
            }
            WhereExpr::And(a, b) | WhereExpr::Or(a, b) => {
                a.collect_attr_refs(out);
                b.collect_attr_refs(out);
            }
            WhereExpr::Not(inner) => inner.collect_attr_refs(out),
        }
    }

    /// The number of comparison atoms in the expression (used by the
    /// tautology benchmark to size generated formulas).
    pub fn atom_count(&self) -> usize {
        match self {
            WhereExpr::Cmp { .. } => 1,
            WhereExpr::And(a, b) | WhereExpr::Or(a, b) => a.atom_count() + b.atom_count(),
            WhereExpr::Not(inner) => inner.atom_count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attr_ref_label() {
        assert_eq!(AttrRef::new("e", "TEL#").label(), "e.TEL#");
    }

    #[test]
    fn where_expr_helpers_and_traversal() {
        let expr = WhereExpr::Cmp {
            left: Term::Attr(AttrRef::new("e", "SEX")),
            op: CompareOp::Eq,
            right: Term::Const(Value::str("F")),
        }
        .and(WhereExpr::Cmp {
            left: Term::Attr(AttrRef::new("e", "TEL#")),
            op: CompareOp::Gt,
            right: Term::Const(Value::int(2_634_000)),
        })
        .or(WhereExpr::Cmp {
            left: Term::Attr(AttrRef::new("e", "TEL#")),
            op: CompareOp::Lt,
            right: Term::Const(Value::int(2_634_000)),
        }
        .negate());
        assert_eq!(expr.atom_count(), 3);
        let refs = expr.attr_refs();
        assert_eq!(refs.len(), 3);
        assert!(refs.iter().any(|r| r.attribute == "SEX"));
    }
}
