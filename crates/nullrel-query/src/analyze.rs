//! Semantic analysis: resolving a parsed query against a database.
//!
//! Each range variable gets its own copy of the ranged relation with every
//! attribute renamed to a fresh, variable-qualified attribute (`e.NAME`,
//! `m.E#`, …) interned into a query-local clone of the universe. This makes
//! the scopes of distinct range variables disjoint — exactly the
//! precondition the paper's Cartesian product needs — and lets the same
//! query text be evaluated both by the `ni` algebra (over x-relations) and
//! by the "unknown" baseline (over the raw stored rows, nulls included).

use std::collections::BTreeMap;

use nullrel_core::predicate::{Comparison, Operand as CoreOperand, Predicate};
use nullrel_core::tuple::Tuple;
use nullrel_core::universe::{AttrId, Universe};
use nullrel_core::xrel::XRelation;
use nullrel_storage::Database;

use crate::ast::{AttrRef, Query, Term, WhereExpr};
use crate::error::{QueryError, QueryResult};

/// A range variable resolved against the catalog.
#[derive(Debug, Clone)]
pub struct ResolvedRange {
    /// The range variable name.
    pub variable: String,
    /// The relation it ranges over.
    pub relation: String,
    /// Attribute name → qualified attribute id (`NAME` → id of `e.NAME`).
    pub attr_map: BTreeMap<String, AttrId>,
    /// Stored (base) attribute id → qualified attribute id. The physical
    /// planner uses this to map where-clause attributes back onto catalog
    /// columns for index selection.
    pub rename: BTreeMap<AttrId, AttrId>,
    /// The relation's rows with attributes renamed to the qualified ids,
    /// exactly as stored (nulls preserved, no minimisation).
    pub rows: Vec<Tuple>,
}

impl ResolvedRange {
    /// The rows as an x-relation (reduced to minimal form), for the `ni`
    /// algebra.
    pub fn xrelation(&self) -> XRelation {
        XRelation::from_tuples(self.rows.iter().cloned())
    }
}

/// A query resolved against a database.
#[derive(Debug, Clone)]
pub struct ResolvedQuery {
    /// The query-local universe: the database universe plus the qualified
    /// attribute names.
    pub universe: Universe,
    /// The resolved range variables, in declaration order.
    pub ranges: Vec<ResolvedRange>,
    /// The target list: display label plus qualified attribute id.
    pub targets: Vec<(String, AttrId)>,
    /// The where clause over qualified attribute ids, if present.
    pub predicate: Option<Predicate>,
    /// The original where clause AST (used by the "unknown" evaluator).
    pub where_ast: Option<WhereExpr>,
}

/// Resolves a parsed query against the database catalog.
pub fn resolve(db: &Database, query: &Query) -> QueryResult<ResolvedQuery> {
    resolve_impl(db, query, true)
}

/// Resolution without materialising `ResolvedRange::rows`. The engine path
/// (`plan_access`) reads the stored tables through its own access paths,
/// so copying and renaming every row during resolution would be pure
/// waste on the hot query path. Crate-private because the returned
/// `ResolvedQuery` must not be handed to the row-consuming evaluators
/// (`execute_resolved*`, the unknown interpreter).
pub(crate) fn resolve_lazy(db: &Database, query: &Query) -> QueryResult<ResolvedQuery> {
    resolve_impl(db, query, false)
}

fn resolve_impl(db: &Database, query: &Query, materialize: bool) -> QueryResult<ResolvedQuery> {
    let mut universe = db.universe().clone();
    let mut ranges: Vec<ResolvedRange> = Vec::with_capacity(query.ranges.len());

    for decl in &query.ranges {
        if ranges.iter().any(|r| r.variable == decl.variable) {
            return Err(QueryError::DuplicateVariable(decl.variable.clone()));
        }
        let table = db
            .table(&decl.relation)
            .map_err(|_| QueryError::UnknownRelation(decl.relation.clone()))?;
        let mut attr_map = BTreeMap::new();
        let mut rename: BTreeMap<AttrId, AttrId> = BTreeMap::new();
        for column in table.schema().columns() {
            let qualified_name = format!("{}.{}", decl.variable, column.name);
            let qualified = match &column.domain {
                Some(domain) => universe.intern_with_domain(&qualified_name, domain.clone()),
                None => universe.intern(&qualified_name),
            };
            attr_map.insert(column.name.clone(), qualified);
            rename.insert(column.attr, qualified);
        }
        let rows = if materialize {
            table.rows().map(|row| row.rename(&rename)).collect()
        } else {
            Vec::new()
        };
        ranges.push(ResolvedRange {
            variable: decl.variable.clone(),
            relation: decl.relation.clone(),
            attr_map,
            rename,
            rows,
        });
    }

    if query.targets.is_empty() {
        return Err(QueryError::EmptyTargetList);
    }
    let mut targets = Vec::with_capacity(query.targets.len());
    for target in &query.targets {
        targets.push((target.label(), lookup(&ranges, target)?));
    }

    let predicate = match &query.where_clause {
        Some(expr) => Some(lower_where(&ranges, expr)?),
        None => None,
    };

    Ok(ResolvedQuery {
        universe,
        ranges,
        targets,
        predicate,
        where_ast: query.where_clause.clone(),
    })
}

/// Resolves a qualified attribute reference to its query-local attribute id.
pub fn lookup(ranges: &[ResolvedRange], attr: &AttrRef) -> QueryResult<AttrId> {
    let range = ranges
        .iter()
        .find(|r| r.variable == attr.variable)
        .ok_or_else(|| QueryError::UnknownVariable(attr.variable.clone()))?;
    range
        .attr_map
        .get(&attr.attribute)
        .copied()
        .ok_or_else(|| QueryError::UnknownAttribute {
            variable: attr.variable.clone(),
            attribute: attr.attribute.clone(),
        })
}

fn lower_where(ranges: &[ResolvedRange], expr: &WhereExpr) -> QueryResult<Predicate> {
    Ok(match expr {
        WhereExpr::Cmp { left, op, right } => Predicate::Cmp(Comparison {
            left: lower_term(ranges, left)?,
            op: *op,
            right: lower_term(ranges, right)?,
        }),
        WhereExpr::And(a, b) => lower_where(ranges, a)?.and(lower_where(ranges, b)?),
        WhereExpr::Or(a, b) => lower_where(ranges, a)?.or(lower_where(ranges, b)?),
        WhereExpr::Not(inner) => lower_where(ranges, inner)?.negate(),
    })
}

fn lower_term(ranges: &[ResolvedRange], term: &Term) -> QueryResult<CoreOperand> {
    Ok(match term {
        Term::Attr(attr) => CoreOperand::Attr(lookup(ranges, attr)?),
        Term::Const(value) => CoreOperand::Const(value.clone()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use nullrel_core::value::Value;
    use nullrel_storage::SchemaBuilder;

    fn emp_db() -> Database {
        let mut db = Database::new();
        db.create_table(
            SchemaBuilder::new("EMP")
                .required_column("E#")
                .column("NAME")
                .column("SEX")
                .column("MGR#")
                .column("TEL#")
                .key(&["E#"]),
        )
        .unwrap();
        let u = db.universe().clone();
        let t = db.table_mut("EMP").unwrap();
        t.insert_named(
            &u,
            &[
                ("E#", Value::int(1120)),
                ("NAME", Value::str("SMITH")),
                ("SEX", Value::str("M")),
                ("MGR#", Value::int(2235)),
            ],
        )
        .unwrap();
        t.insert_named(
            &u,
            &[
                ("E#", Value::int(4335)),
                ("NAME", Value::str("BROWN")),
                ("SEX", Value::str("F")),
                ("MGR#", Value::int(2235)),
            ],
        )
        .unwrap();
        db
    }

    #[test]
    fn resolves_figure1_style_query() {
        let db = emp_db();
        let query = parse(
            "range of e is EMP retrieve (e.NAME, e.E#) \
             where (e.SEX = \"F\" and e.TEL# > 2634000) or (e.TEL# < 2634000)",
        )
        .unwrap();
        let resolved = resolve(&db, &query).unwrap();
        assert_eq!(resolved.ranges.len(), 1);
        assert_eq!(resolved.ranges[0].rows.len(), 2);
        assert_eq!(resolved.targets.len(), 2);
        assert_eq!(resolved.targets[0].0, "e.NAME");
        assert!(resolved.predicate.is_some());
        assert!(resolved.universe.lookup("e.TEL#").is_some());
        // The qualified ids are distinct from the base ids.
        let base = db.universe().lookup("NAME").unwrap();
        assert_ne!(resolved.targets[0].1, base);
    }

    #[test]
    fn self_join_gets_disjoint_scopes() {
        let db = emp_db();
        let query = parse(
            "range of e is EMP range of m is EMP retrieve (e.NAME) \
             where e.MGR# = m.E#",
        )
        .unwrap();
        let resolved = resolve(&db, &query).unwrap();
        assert_eq!(resolved.ranges.len(), 2);
        let e_scope = resolved.ranges[0].xrelation().scope();
        let m_scope = resolved.ranges[1].xrelation().scope();
        assert!(e_scope.intersection(&m_scope).next().is_none());
    }

    #[test]
    fn resolution_errors() {
        let db = emp_db();
        let q = parse("range of e is NOPE retrieve (e.NAME)").unwrap();
        assert!(matches!(
            resolve(&db, &q),
            Err(QueryError::UnknownRelation(_))
        ));

        let q = parse("range of e is EMP retrieve (x.NAME)").unwrap();
        assert!(matches!(
            resolve(&db, &q),
            Err(QueryError::UnknownVariable(_))
        ));

        let q = parse("range of e is EMP retrieve (e.GHOST)").unwrap();
        assert!(matches!(
            resolve(&db, &q),
            Err(QueryError::UnknownAttribute { .. })
        ));

        let q = parse("range of e is EMP range of e is EMP retrieve (e.NAME)").unwrap();
        assert!(matches!(
            resolve(&db, &q),
            Err(QueryError::DuplicateVariable(_))
        ));
    }
}
