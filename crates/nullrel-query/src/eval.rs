//! Query evaluation under the paper's `ni` discipline: the lower bound
//! `‖Q‖∗` of Section 5.
//!
//! [`execute`] parses, resolves, plans, and evaluates a QUEL query against a
//! [`Database`]. The result contains only tuples whose qualification
//! evaluates to TRUE; FALSE and `ni` tuples are discarded alike, which is
//! what makes the evaluation a single pass needing no tautology analysis.

use nullrel_core::algebra::NoSource;
use nullrel_core::tuple::Tuple;
use nullrel_core::universe::{AttrId, Universe};
use nullrel_core::value::Value;
use nullrel_storage::Database;

use crate::analyze::{resolve, ResolvedQuery};
use crate::ast::Query;
use crate::error::QueryResult;
use crate::parser::parse;
use crate::plan::plan;

/// The result of evaluating a query: named columns plus result tuples.
#[derive(Debug, Clone)]
pub struct QueryOutput {
    /// Column labels, in target-list order (`e.NAME`, `e.E#`, …).
    pub columns: Vec<String>,
    /// The qualified attribute id of each column.
    pub column_attrs: Vec<AttrId>,
    /// The result tuples (a minimal representation: duplicates and
    /// subsumed tuples have been removed, as the algebra prescribes).
    pub rows: Vec<Tuple>,
    /// The query-local universe, for rendering.
    pub universe: Universe,
}

impl QueryOutput {
    /// The number of result tuples.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the result is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// True if some result tuple has exactly these cells in column order
    /// (`None` matches a null cell).
    pub fn contains_row(&self, cells: &[Option<Value>]) -> bool {
        self.rows.iter().any(|row| {
            self.column_attrs
                .iter()
                .zip(cells.iter())
                .all(|(attr, want)| row.get(*attr) == want.as_ref())
        })
    }

    /// The values of one column across all result tuples (nulls skipped).
    pub fn column_values(&self, label: &str) -> Vec<Value> {
        let Some(idx) = self.columns.iter().position(|c| c == label) else {
            return Vec::new();
        };
        let attr = self.column_attrs[idx];
        self.rows
            .iter()
            .filter_map(|row| row.get(attr).cloned())
            .collect()
    }

    /// Renders the result as an ASCII table with `-` for nulls.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.columns.join(" | "));
        out.push('\n');
        out.push_str(&"-".repeat(self.columns.join(" | ").len().max(4)));
        out.push('\n');
        for row in &self.rows {
            let cells: Vec<String> = self
                .column_attrs
                .iter()
                .map(|attr| {
                    row.get(*attr)
                        .map(|v| v.to_string())
                        .unwrap_or_else(|| "-".to_owned())
                })
                .collect();
            out.push_str(&cells.join(" | "));
            out.push('\n');
        }
        if self.rows.is_empty() {
            out.push_str("(empty)\n");
        }
        out
    }
}

/// Parses and executes a query under the `ni` lower-bound semantics.
pub fn execute(db: &Database, text: &str) -> QueryResult<QueryOutput> {
    let query = parse(text)?;
    execute_query(db, &query)
}

/// Executes an already-parsed query under the `ni` lower-bound semantics.
pub fn execute_query(db: &Database, query: &Query) -> QueryResult<QueryOutput> {
    let resolved = resolve(db, query)?;
    execute_resolved(&resolved)
}

/// Executes a resolved query (exposed so the benchmarks can separate parse
/// and plan cost from evaluation cost).
pub fn execute_resolved(resolved: &ResolvedQuery) -> QueryResult<QueryOutput> {
    let expr = plan(resolved);
    let result = expr.eval(&NoSource)?;
    Ok(QueryOutput {
        columns: resolved.targets.iter().map(|(label, _)| label.clone()).collect(),
        column_attrs: resolved.targets.iter().map(|(_, attr)| *attr).collect(),
        rows: result.into_tuples(),
        universe: resolved.universe.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nullrel_storage::SchemaBuilder;

    /// Builds the EMP relation of Table II (the TEL# column exists but every
    /// value is ni).
    pub fn emp_table_ii_db() -> Database {
        let mut db = Database::new();
        db.create_table(
            SchemaBuilder::new("EMP")
                .required_column("E#")
                .column("NAME")
                .column("SEX")
                .column("MGR#")
                .column("TEL#")
                .key(&["E#"]),
        )
        .unwrap();
        let u = db.universe().clone();
        let t = db.table_mut("EMP").unwrap();
        for (e, n, s, m) in [
            (1120, "SMITH", "M", 2235),
            (4335, "BROWN", "F", 2235),
            (8799, "GREEN", "M", 1255),
        ] {
            t.insert_named(
                &u,
                &[
                    ("E#", Value::int(e)),
                    ("NAME", Value::str(n)),
                    ("SEX", Value::str(s)),
                    ("MGR#", Value::int(m)),
                ],
            )
            .unwrap();
        }
        db
    }

    /// Figure 1 / query Q_A: under the `ni` interpretation, employees with a
    /// null TEL# are *not* in the lower bound, so the answer is empty.
    #[test]
    fn figure1_lower_bound_is_empty_on_table_ii() {
        let db = emp_table_ii_db();
        let out = execute(
            &db,
            "range of e is EMP retrieve (e.NAME, e.E#) \
             where (e.SEX = \"F\" and e.TEL# > 2634000) or (e.TEL# < 2634000)",
        )
        .unwrap();
        assert!(out.is_empty());
        assert_eq!(out.columns, vec!["e.NAME", "e.E#"]);
        assert!(out.render().contains("(empty)"));
    }

    /// Once a telephone number is recorded, the same query returns the row.
    #[test]
    fn figure1_returns_rows_once_information_arrives() {
        let mut db = emp_table_ii_db();
        let u = db.universe().clone();
        let e_no = u.lookup("E#").unwrap();
        let tel = u.lookup("TEL#").unwrap();
        db.table_mut("EMP")
            .unwrap()
            .update_where(
                &nullrel_core::Predicate::attr_const(e_no, nullrel_core::CompareOp::Eq, 4335),
                &[(tel, Some(Value::int(2_639_452)))],
            )
            .unwrap();
        let out = execute(
            &db,
            "range of e is EMP retrieve (e.NAME, e.E#) \
             where (e.SEX = \"F\" and e.TEL# > 2634000) or (e.TEL# < 2634000)",
        )
        .unwrap();
        assert_eq!(out.len(), 1);
        assert!(out.contains_row(&[Some(Value::str("BROWN")), Some(Value::int(4335))]));
        assert_eq!(out.column_values("e.NAME"), vec![Value::str("BROWN")]);
        assert!(out.render().contains("BROWN"));
    }

    /// Figure 2 / query Q_B on total data: the self-join finds employees with
    /// a male manager who do not manage themselves or their managers.
    #[test]
    fn figure2_self_join() {
        let mut db = emp_table_ii_db();
        let u = db.universe().clone();
        // Add the managers referenced by MGR# so the join has partners.
        let t = db.table_mut("EMP").unwrap();
        t.insert_named(
            &u,
            &[
                ("E#", Value::int(2235)),
                ("NAME", Value::str("JONES")),
                ("SEX", Value::str("M")),
                ("MGR#", Value::int(1255)),
            ],
        )
        .unwrap();
        t.insert_named(
            &u,
            &[
                ("E#", Value::int(1255)),
                ("NAME", Value::str("ADAMS")),
                ("SEX", Value::str("F")),
                ("MGR#", Value::int(2235)),
            ],
        )
        .unwrap();
        let out = execute(
            &db,
            "range of e is EMP range of m is EMP retrieve (e.NAME) \
             where m.SEX = \"M\" and e.MGR# = m.E# and e.MGR# != e.E# and e.E# != m.MGR#",
        )
        .unwrap();
        // SMITH, BROWN (manager JONES, male) and ADAMS' manager JONES is male
        // but ADAMS manages JONES' manager? ADAMS(1255) manages 2235; JONES'
        // MGR# is 1255 = ADAMS' E#, so ADAMS is excluded by the last
        // condition. GREEN's manager 1255 is ADAMS (female) — excluded.
        let names = out.column_values("e.NAME");
        assert!(names.contains(&Value::str("SMITH")));
        assert!(names.contains(&Value::str("BROWN")));
        assert!(!names.contains(&Value::str("GREEN")));
        assert!(!names.contains(&Value::str("ADAMS")));
    }

    #[test]
    fn query_without_where_projects_everything() {
        let db = emp_table_ii_db();
        let out = execute(&db, "range of e is EMP retrieve (e.SEX)").unwrap();
        // Projection collapses duplicates: M and F.
        assert_eq!(out.len(), 2);
        assert!(out.contains_row(&[Some(Value::str("M"))]));
        assert!(out.contains_row(&[Some(Value::str("F"))]));
        assert!(out.column_values("e.GHOST").is_empty());
    }

    #[test]
    fn errors_propagate_through_execute() {
        let db = emp_table_ii_db();
        assert!(execute(&db, "range of e is NOPE retrieve (e.X)").is_err());
        assert!(execute(&db, "not a query at all").is_err());
    }
}
