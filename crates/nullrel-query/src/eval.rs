//! Query evaluation under the paper's `ni` discipline: the lower bound
//! `‖Q‖∗` of Section 5.
//!
//! [`execute`] parses, resolves, plans, and evaluates a QUEL query against a
//! [`Database`]. The result contains only tuples whose qualification
//! evaluates to TRUE; FALSE and `ni` tuples are discarded alike, which is
//! what makes the evaluation a single pass needing no tautology analysis.
//!
//! Evaluation runs through the `nullrel-exec` engine: the logical plan is
//! optimized (selection/projection pushdown — including through
//! union/difference branches — product → hash join, dangling-free
//! union-join → hash join), compiled onto physical operators with catalog
//! access paths, and executed as a pipeline. The engine covers the whole
//! algebra natively — set operators, division, and the union-join stream
//! through dedicated operators rather than escaping to a tree-walk
//! fallback. The per-operator counters — the engine-level continuation of
//! [`nullrel_storage::scan::ScanStats`] — are returned on
//! [`QueryOutput::stats`]. The original tree-walk evaluation survives as
//! [`execute_resolved_naive`], the correctness oracle of the differential
//! tests and benchmarks (and nothing else: the engine never calls it).

use nullrel_core::algebra::NoSource;
use nullrel_core::tuple::Tuple;
use nullrel_core::tvl::Truth;
use nullrel_core::universe::{AttrId, Universe};
use nullrel_core::value::Value;
use nullrel_exec::ExecStats;
use nullrel_obs::Phase;
use nullrel_storage::Database;

use crate::analyze::ResolvedQuery;
use crate::ast::Query;
use crate::error::QueryResult;
use crate::parser::parse;
use crate::plan::{plan, plan_access};

/// The result of evaluating a query: named columns plus result tuples.
#[derive(Debug, Clone)]
pub struct QueryOutput {
    /// Column labels, in target-list order (`e.NAME`, `e.E#`, …).
    pub columns: Vec<String>,
    /// The qualified attribute id of each column.
    pub column_attrs: Vec<AttrId>,
    /// The result tuples (a minimal representation: duplicates and
    /// subsumed tuples have been removed, as the algebra prescribes).
    pub rows: Vec<Tuple>,
    /// The query-local universe, for rendering.
    pub universe: Universe,
    /// Per-operator execution counters of the physical pipeline that
    /// produced the result (empty for the naive tree-walk path).
    pub stats: ExecStats,
}

impl QueryOutput {
    /// The executed physical plan, one operator per line, annotated with
    /// access-path counters.
    pub fn physical_plan(&self) -> String {
        self.stats.render()
    }
    /// The number of result tuples.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the result is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// True if some result tuple has exactly these cells in column order
    /// (`None` matches a null cell).
    pub fn contains_row(&self, cells: &[Option<Value>]) -> bool {
        self.rows.iter().any(|row| {
            self.column_attrs
                .iter()
                .zip(cells.iter())
                .all(|(attr, want)| row.get(*attr) == want.as_ref())
        })
    }

    /// The values of one column across all result tuples (nulls skipped).
    pub fn column_values(&self, label: &str) -> Vec<Value> {
        let Some(idx) = self.columns.iter().position(|c| c == label) else {
            return Vec::new();
        };
        let attr = self.column_attrs[idx];
        self.rows
            .iter()
            .filter_map(|row| row.get(attr).cloned())
            .collect()
    }

    /// Renders the result as an ASCII table with `-` for nulls.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.columns.join(" | "));
        out.push('\n');
        out.push_str(&"-".repeat(self.columns.join(" | ").len().max(4)));
        out.push('\n');
        for row in &self.rows {
            let cells: Vec<String> = self
                .column_attrs
                .iter()
                .map(|attr| {
                    row.get(*attr)
                        .map(|v| v.to_string())
                        .unwrap_or_else(|| "-".to_owned())
                })
                .collect();
            out.push_str(&cells.join(" | "));
            out.push('\n');
        }
        if self.rows.is_empty() {
            out.push_str("(empty)\n");
        }
        out
    }
}

/// Parses and executes a query under the `ni` lower-bound semantics,
/// through the physical engine with catalog access paths.
pub fn execute(db: &Database, text: &str) -> QueryResult<QueryOutput> {
    execute_with(db, text, nullrel_exec::OptimizeOptions::default())
}

/// [`execute`] with explicit engine options — in particular
/// [`nullrel_exec::OptimizeOptions::adaptive`], which makes execution
/// staged with cardinality feedback (re-optimization events land in
/// [`QueryOutput::stats`] and the `--explain` report). The differential
/// suite `tests/adaptive_differential.rs` pins adaptive and static
/// execution to byte-identical outputs.
pub fn execute_with(
    db: &Database,
    text: &str,
    options: nullrel_exec::OptimizeOptions,
) -> QueryResult<QueryOutput> {
    let _query_trace = nullrel_obs::begin_query(text);
    let query = nullrel_obs::phase(Phase::Parse, || parse(text))?;
    let (resolved, expr) = nullrel_obs::phase(Phase::Plan, || {
        let resolved = crate::analyze::resolve_lazy(db, &query)?;
        let expr = plan_access(&resolved);
        QueryResult::Ok((resolved, expr))
    })?;
    let (rel, stats) = nullrel_exec::execute_expr_with(&expr, db, &resolved.universe, options)?;
    Ok(output(resolved, rel.into_tuples(), stats))
}

/// A query parsed, resolved, and logically planned once, ready to re-run
/// against any database state sharing the schema it was resolved under —
/// the cacheable unit of the query service's per-session prepared-query
/// cache. The physical stages (optimize, compile) deliberately stay per
/// execution: they consult the target snapshot's statistics and indexes,
/// which move epoch to epoch.
#[derive(Debug, Clone)]
pub struct Prepared {
    /// The query text (the cache key and trace label).
    pub text: String,
    /// The resolved query: query-local universe, range scopes, targets.
    pub resolved: ResolvedQuery,
    /// The logical access plan over the resolved scopes.
    pub expr: nullrel_core::algebra::Expr,
    /// [`Database::schema_version`] at preparation time. A snapshot with a
    /// different schema version may resolve differently (tables or columns
    /// created, dropped, or renamed) — holders must re-prepare.
    pub schema_version: u64,
}

impl Prepared {
    /// True when this prepared query is still valid against `db`: the
    /// schema has not evolved since resolution.
    pub fn valid_for(&self, db: &Database) -> bool {
        self.schema_version == db.schema_version()
    }
}

/// Parses, resolves, and logically plans a query without executing it —
/// the front half of [`execute_with`], split off so a session can pay
/// parse/resolve/plan once and [`execute_prepared`] many times.
pub fn prepare(db: &Database, text: &str) -> QueryResult<Prepared> {
    let query = nullrel_obs::phase(Phase::Parse, || parse(text))?;
    let (resolved, expr) = nullrel_obs::phase(Phase::Plan, || {
        let resolved = crate::analyze::resolve_lazy(db, &query)?;
        let expr = plan_access(&resolved);
        QueryResult::Ok((resolved, expr))
    })?;
    Ok(Prepared {
        text: text.to_owned(),
        resolved,
        expr,
        schema_version: db.schema_version(),
    })
}

/// Runs a [`Prepared`] query against `db` in the requested truth band,
/// skipping parse/resolve/plan. The caller is responsible for validity
/// ([`Prepared::valid_for`]); executing a stale prepared query against an
/// evolved schema returns whatever the old plan still means, exactly like
/// re-running a stale statement handle would.
pub fn execute_prepared(
    db: &Database,
    prepared: &Prepared,
    band: Truth,
    options: nullrel_exec::OptimizeOptions,
) -> QueryResult<QueryOutput> {
    let label = if band == Truth::Ni {
        format!("MAYBE {}", prepared.text)
    } else {
        prepared.text.clone()
    };
    let _query_trace = nullrel_obs::begin_query(label);
    if band == Truth::Ni {
        nullrel_obs::recorder::annotate(|r| r.band = "MAYBE");
    }
    let (rel, stats) = nullrel_exec::execute_expr_band_with(
        &prepared.expr,
        db,
        &prepared.resolved.universe,
        band,
        options,
    )?;
    Ok(output(prepared.resolved.clone(), rel.into_tuples(), stats))
}

/// Executes an already-parsed query under the `ni` lower-bound semantics.
pub fn execute_query(db: &Database, query: &Query) -> QueryResult<QueryOutput> {
    let _query_trace = nullrel_obs::begin_query("(pre-parsed query)");
    // Lazy resolution: the engine reads the tables through its own access
    // paths, so the per-range row copies would never be looked at.
    let (resolved, expr) = nullrel_obs::phase(Phase::Plan, || {
        let resolved = crate::analyze::resolve_lazy(db, query)?;
        let expr = plan_access(&resolved);
        QueryResult::Ok((resolved, expr))
    })?;
    let (rel, stats) = nullrel_exec::execute_expr(&expr, db, &resolved.universe)?;
    Ok(output(resolved, rel.into_tuples(), stats))
}

/// Parses and executes a query, returning the **MAYBE band**: the tuples
/// whose qualification evaluates to `ni` rather than TRUE. The band is
/// requested through the engine ([`nullrel_exec::execute_expr_band`]); the
/// plan is executed as written, since the optimizer's rewrite rules are
/// lower-bound arguments.
pub fn execute_maybe(db: &Database, text: &str) -> QueryResult<QueryOutput> {
    let _query_trace = nullrel_obs::begin_query(format!("MAYBE {text}"));
    nullrel_obs::recorder::annotate(|r| r.band = "MAYBE");
    let query = nullrel_obs::phase(Phase::Parse, || parse(text))?;
    let (resolved, expr) = nullrel_obs::phase(Phase::Plan, || {
        let resolved = crate::analyze::resolve_lazy(db, &query)?;
        let expr = plan_access(&resolved);
        QueryResult::Ok((resolved, expr))
    })?;
    let (rel, stats) = nullrel_exec::execute_expr_band(&expr, db, &resolved.universe, Truth::Ni)?;
    Ok(output(resolved, rel.into_tuples(), stats))
}

/// Executes a resolved query through the engine over its literal plan
/// (exposed so the benchmarks can separate parse and plan cost from
/// evaluation cost; no catalog is available on this path, so scans stream
/// the resolved rows without index selection).
pub fn execute_resolved(resolved: &ResolvedQuery) -> QueryResult<QueryOutput> {
    let _query_trace = nullrel_obs::begin_query("(resolved query)");
    let expr = nullrel_obs::phase(Phase::Plan, || plan(resolved));
    let (rel, stats) = nullrel_exec::execute_expr(&expr, &NoSource, &resolved.universe)?;
    Ok(output(resolved.clone(), rel.into_tuples(), stats))
}

/// The seed's tree-walk evaluation (`Expr::eval` over the literal plan):
/// a full Cartesian product of the range relations. Kept as the
/// correctness oracle for the engine's differential tests and as the
/// baseline of the `e12_physical_vs_naive` benchmark.
pub fn execute_resolved_naive(resolved: &ResolvedQuery) -> QueryResult<QueryOutput> {
    let expr = plan(resolved);
    let result = expr.eval(&NoSource)?;
    Ok(output(
        resolved.clone(),
        result.into_tuples(),
        ExecStats::default(),
    ))
}

fn output(resolved: ResolvedQuery, rows: Vec<Tuple>, stats: ExecStats) -> QueryOutput {
    // Every engine entry point funnels through here, so this is where the
    // flight record learns what the execution actually did. The closure
    // only runs while a record is in flight (recorder enabled and a
    // `begin_query` scope open on this thread).
    nullrel_obs::recorder::annotate(|r| {
        r.rows_in = stats.rows_examined() as u64;
        r.rows_out = rows.len() as u64;
        r.batches = stats.batches() as u64;
        r.par_granted = stats.max_parallelism() as u32;
        r.par_used = stats.max_workers_used() as u32;
        r.q_error = stats.estimation_error();
        r.reopts = stats.reopts.len() as u32;
        r.mem_rows = stats.peak_mem_rows() as u64;
        r.mem_bytes = stats.peak_mem_bytes() as u64;
        r.plan = stats.render();
    });
    QueryOutput {
        columns: resolved
            .targets
            .iter()
            .map(|(label, _)| label.clone())
            .collect(),
        column_attrs: resolved.targets.iter().map(|(_, attr)| *attr).collect(),
        rows,
        universe: resolved.universe,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nullrel_storage::SchemaBuilder;

    /// Builds the EMP relation of Table II (the TEL# column exists but every
    /// value is ni).
    pub fn emp_table_ii_db() -> Database {
        let mut db = Database::new();
        db.create_table(
            SchemaBuilder::new("EMP")
                .required_column("E#")
                .column("NAME")
                .column("SEX")
                .column("MGR#")
                .column("TEL#")
                .key(&["E#"]),
        )
        .unwrap();
        let u = db.universe().clone();
        let t = db.table_mut("EMP").unwrap();
        for (e, n, s, m) in [
            (1120, "SMITH", "M", 2235),
            (4335, "BROWN", "F", 2235),
            (8799, "GREEN", "M", 1255),
        ] {
            t.insert_named(
                &u,
                &[
                    ("E#", Value::int(e)),
                    ("NAME", Value::str(n)),
                    ("SEX", Value::str(s)),
                    ("MGR#", Value::int(m)),
                ],
            )
            .unwrap();
        }
        db
    }

    /// Figure 1 / query Q_A: under the `ni` interpretation, employees with a
    /// null TEL# are *not* in the lower bound, so the answer is empty.
    #[test]
    fn figure1_lower_bound_is_empty_on_table_ii() {
        let db = emp_table_ii_db();
        let out = execute(
            &db,
            "range of e is EMP retrieve (e.NAME, e.E#) \
             where (e.SEX = \"F\" and e.TEL# > 2634000) or (e.TEL# < 2634000)",
        )
        .unwrap();
        assert!(out.is_empty());
        assert_eq!(out.columns, vec!["e.NAME", "e.E#"]);
        assert!(out.render().contains("(empty)"));
    }

    /// Once a telephone number is recorded, the same query returns the row.
    #[test]
    fn figure1_returns_rows_once_information_arrives() {
        let mut db = emp_table_ii_db();
        let u = db.universe().clone();
        let e_no = u.lookup("E#").unwrap();
        let tel = u.lookup("TEL#").unwrap();
        db.table_mut("EMP")
            .unwrap()
            .update_where(
                &nullrel_core::Predicate::attr_const(e_no, nullrel_core::CompareOp::Eq, 4335),
                &[(tel, Some(Value::int(2_639_452)))],
            )
            .unwrap();
        let out = execute(
            &db,
            "range of e is EMP retrieve (e.NAME, e.E#) \
             where (e.SEX = \"F\" and e.TEL# > 2634000) or (e.TEL# < 2634000)",
        )
        .unwrap();
        assert_eq!(out.len(), 1);
        assert!(out.contains_row(&[Some(Value::str("BROWN")), Some(Value::int(4335))]));
        assert_eq!(out.column_values("e.NAME"), vec![Value::str("BROWN")]);
        assert!(out.render().contains("BROWN"));
    }

    /// Figure 2 / query Q_B on total data: the self-join finds employees with
    /// a male manager who do not manage themselves or their managers.
    #[test]
    fn figure2_self_join() {
        let mut db = emp_table_ii_db();
        let u = db.universe().clone();
        // Add the managers referenced by MGR# so the join has partners.
        let t = db.table_mut("EMP").unwrap();
        t.insert_named(
            &u,
            &[
                ("E#", Value::int(2235)),
                ("NAME", Value::str("JONES")),
                ("SEX", Value::str("M")),
                ("MGR#", Value::int(1255)),
            ],
        )
        .unwrap();
        t.insert_named(
            &u,
            &[
                ("E#", Value::int(1255)),
                ("NAME", Value::str("ADAMS")),
                ("SEX", Value::str("F")),
                ("MGR#", Value::int(2235)),
            ],
        )
        .unwrap();
        let out = execute(
            &db,
            "range of e is EMP range of m is EMP retrieve (e.NAME) \
             where m.SEX = \"M\" and e.MGR# = m.E# and e.MGR# != e.E# and e.E# != m.MGR#",
        )
        .unwrap();
        // SMITH, BROWN (manager JONES, male) and ADAMS' manager JONES is male
        // but ADAMS manages JONES' manager? ADAMS(1255) manages 2235; JONES'
        // MGR# is 1255 = ADAMS' E#, so ADAMS is excluded by the last
        // condition. GREEN's manager 1255 is ADAMS (female) — excluded.
        let names = out.column_values("e.NAME");
        assert!(names.contains(&Value::str("SMITH")));
        assert!(names.contains(&Value::str("BROWN")));
        assert!(!names.contains(&Value::str("GREEN")));
        assert!(!names.contains(&Value::str("ADAMS")));
    }

    #[test]
    fn query_without_where_projects_everything() {
        let db = emp_table_ii_db();
        let out = execute(&db, "range of e is EMP retrieve (e.SEX)").unwrap();
        // Projection collapses duplicates: M and F.
        assert_eq!(out.len(), 2);
        assert!(out.contains_row(&[Some(Value::str("M"))]));
        assert!(out.contains_row(&[Some(Value::str("F"))]));
        assert!(out.column_values("e.GHOST").is_empty());
    }

    #[test]
    fn errors_propagate_through_execute() {
        let db = emp_table_ii_db();
        assert!(execute(&db, "range of e is NOPE retrieve (e.X)").is_err());
        assert!(execute(&db, "not a query at all").is_err());
    }

    /// Acceptance: a two-range equi-join query executes via `HashJoin`
    /// (visible in the physical plan) and agrees with the tree-walk oracle.
    #[test]
    fn equi_join_queries_run_as_hash_joins() {
        let db = emp_table_ii_db();
        let text = "range of e is EMP range of m is EMP retrieve (e.NAME) \
                    where e.MGR# = m.E#";
        let out = execute(&db, text).unwrap();
        assert!(
            out.stats.used_hash_join(),
            "expected a hash join:\n{}",
            out.physical_plan()
        );
        assert!(out.physical_plan().contains("HashJoin e.MGR# = m.E#"));
        // No Product operator remains in the plan.
        assert!(!out.physical_plan().contains("Product"));

        let resolved = resolve(&db, &parse(text).unwrap()).unwrap();
        let oracle = execute_resolved_naive(&resolved).unwrap();
        assert_eq!(out.rows, oracle.rows);
        assert!(
            oracle.stats.ops.is_empty(),
            "the oracle bypasses the engine"
        );
    }

    /// Acceptance: `ScanStats` flow from the storage access path through
    /// the engine into `QueryOutput`.
    #[test]
    fn index_selection_reports_access_path_counters() {
        let mut db = emp_table_ii_db();
        let e_no = db.universe().lookup("E#").unwrap();
        db.table_mut("EMP")
            .unwrap()
            .create_index(vec![e_no])
            .unwrap();
        let out = execute(&db, "range of e is EMP retrieve (e.NAME) where e.E# = 4335").unwrap();
        assert_eq!(out.len(), 1);
        assert!(out.stats.used_index(), "plan:\n{}", out.physical_plan());
        assert_eq!(out.stats.rows_examined(), 1, "index probe touches one row");
        assert!(out.physical_plan().contains("IndexScan EMP [E# = 4335]"));

        // Without the index the same query scans all rows.
        let db2 = emp_table_ii_db();
        let out2 = execute(
            &db2,
            "range of e is EMP retrieve (e.NAME) where e.E# = 4335",
        )
        .unwrap();
        assert_eq!(out2.rows, out.rows);
        assert!(!out2.stats.used_index());
        assert_eq!(out2.stats.rows_examined(), 3);
    }

    /// The MAYBE band of Figure 1 on Table II: every employee's telephone
    /// is `ni`, so all three rows are possible answers.
    #[test]
    fn maybe_band_is_requested_through_the_engine() {
        let db = emp_table_ii_db();
        let maybe = execute_maybe(
            &db,
            "range of e is EMP retrieve (e.NAME, e.E#) \
             where (e.SEX = \"F\" and e.TEL# > 2634000) or (e.TEL# < 2634000)",
        )
        .unwrap();
        assert_eq!(maybe.len(), 3);
        assert_eq!(maybe.stats.ni_rows(), 3);
        // The sure band stays empty, as in the seed test above.
        let sure = execute(&db, FIGURE_1_LIKE).unwrap();
        assert!(sure.is_empty());
    }

    const FIGURE_1_LIKE: &str = "range of e is EMP retrieve (e.NAME, e.E#) \
         where (e.SEX = \"F\" and e.TEL# > 2634000) or (e.TEL# < 2634000)";

    /// A prepared query re-runs identically to the one-shot path in both
    /// bands, tracks schema versions for invalidation, and keeps seeing
    /// fresh data across DML (which must not invalidate it).
    #[test]
    fn prepared_queries_replay_both_bands_and_track_schema() {
        let mut db = emp_table_ii_db();
        let prepared = prepare(&db, FIGURE_1_LIKE).unwrap();
        assert!(prepared.valid_for(&db));
        assert_eq!(prepared.schema_version, db.schema_version());

        let opts = nullrel_exec::OptimizeOptions::default();
        let sure = execute_prepared(&db, &prepared, Truth::True, opts).unwrap();
        assert_eq!(sure.rows, execute(&db, FIGURE_1_LIKE).unwrap().rows);
        assert_eq!(sure.columns, vec!["e.NAME", "e.E#"]);
        let maybe = execute_prepared(&db, &prepared, Truth::Ni, opts).unwrap();
        assert_eq!(maybe.rows, execute_maybe(&db, FIGURE_1_LIKE).unwrap().rows);
        assert_eq!(maybe.len(), 3);

        // DML: still valid, and the prepared plan sees the new data.
        let u = db.universe().clone();
        let tel = u.lookup("TEL#").unwrap();
        let e_no = u.lookup("E#").unwrap();
        db.table_mut("EMP")
            .unwrap()
            .update_where(
                &nullrel_core::Predicate::attr_const(e_no, nullrel_core::CompareOp::Eq, 4335),
                &[(tel, Some(Value::int(2_639_452)))],
            )
            .unwrap();
        assert!(prepared.valid_for(&db), "DML must not invalidate");
        let after = execute_prepared(&db, &prepared, Truth::True, opts).unwrap();
        assert_eq!(after.len(), 1);
        assert!(after.contains_row(&[Some(Value::str("BROWN")), Some(Value::int(4335))]));

        // DDL: schema evolution invalidates.
        let (table, universe) = db.table_and_universe_mut("EMP").unwrap();
        table.add_column(universe, "DEPT", None).unwrap();
        assert!(!prepared.valid_for(&db), "schema evolution invalidates");
    }

    use crate::analyze::resolve;
    use crate::eval::execute_maybe;
    use crate::eval::execute_resolved_naive;
}
