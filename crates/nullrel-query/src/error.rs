//! Error types for the query layer.

use std::fmt;

use nullrel_core::error::CoreError;
use nullrel_storage::error::StorageError;

/// Result alias for query operations.
pub type QueryResult<T> = Result<T, QueryError>;

/// Errors raised while lexing, parsing, analysing, planning, or evaluating a
/// query.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// A character that cannot start any token.
    Lex {
        /// Byte offset of the offending character.
        position: usize,
        /// Description of the problem.
        message: String,
    },
    /// A syntax error.
    Parse {
        /// Byte offset where the error was detected.
        position: usize,
        /// Description of the problem.
        message: String,
    },
    /// A range variable was used but never declared with `range of`.
    UnknownVariable(String),
    /// A range declaration referenced a relation the database does not have.
    UnknownRelation(String),
    /// An attribute reference does not exist in the range variable's
    /// relation.
    UnknownAttribute {
        /// The range variable.
        variable: String,
        /// The attribute name.
        attribute: String,
    },
    /// The query declared the same range variable twice.
    DuplicateVariable(String),
    /// The query has no target list.
    EmptyTargetList,
    /// The number of range-tuple combinations (or substitutions) exceeds the
    /// evaluation budget.
    BudgetExceeded {
        /// What would have been required.
        required: u128,
        /// The configured limit.
        limit: u128,
    },
    /// A core-library error.
    Core(CoreError),
    /// A storage-layer error.
    Storage(StorageError),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Lex { position, message } => {
                write!(f, "lex error at byte {position}: {message}")
            }
            QueryError::Parse { position, message } => {
                write!(f, "parse error at byte {position}: {message}")
            }
            QueryError::UnknownVariable(v) => write!(f, "unknown range variable {v:?}"),
            QueryError::UnknownRelation(r) => write!(f, "unknown relation {r:?}"),
            QueryError::UnknownAttribute {
                variable,
                attribute,
            } => write!(f, "relation of {variable:?} has no attribute {attribute:?}"),
            QueryError::DuplicateVariable(v) => {
                write!(f, "range variable {v:?} declared more than once")
            }
            QueryError::EmptyTargetList => write!(f, "the retrieve clause lists no attributes"),
            QueryError::BudgetExceeded { required, limit } => write!(
                f,
                "evaluation would require {required} combinations, exceeding the limit of {limit}"
            ),
            QueryError::Core(err) => write!(f, "{err}"),
            QueryError::Storage(err) => write!(f, "{err}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<CoreError> for QueryError {
    fn from(err: CoreError) -> Self {
        QueryError::Core(err)
    }
}

impl From<StorageError> for QueryError {
    fn from(err: StorageError) -> Self {
        QueryError::Storage(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: QueryError = CoreError::EmptyAttributeList.into();
        assert!(matches!(e, QueryError::Core(_)));
        let e: QueryError = StorageError::UnknownTable("T".into()).into();
        assert!(e.to_string().contains("T"));
        let e = QueryError::UnknownAttribute {
            variable: "e".into(),
            attribute: "TEL#".into(),
        };
        assert!(e.to_string().contains("TEL#"));
        assert!(QueryError::EmptyTargetList.to_string().contains("retrieve"));
    }
}
