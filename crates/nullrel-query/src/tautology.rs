//! Tautology (validity) detection for where-clauses with unknown nulls —
//! the machinery the paper's Appendix argues a system would need under the
//! "unknown" interpretation, and which the `ni` interpretation makes
//! unnecessary.
//!
//! A where-clause with nulls substituted by variables becomes a [`Formula`]
//! over comparison atoms. Deciding whether a tuple must be included in the
//! correct lower bound `‖Q‖∗` under the *unknown* interpretation requires
//! deciding whether the formula is **valid** (true under every legal
//! assignment of the null variables). Two procedures are provided:
//!
//! * [`propositional_tautology`] — treats every comparison atom as an
//!   independent proposition and checks validity by exhaustive assignment
//!   enumeration. This is sound but incomplete (it cannot see that
//!   `x > k ∨ x < k ∨ x = k` is valid) and its cost is exponential in the
//!   number of atoms — the NP-hardness the Appendix cites.
//! * [`decide`] / [`decide_with_assumptions`] — a complete decision
//!   procedure for formulas whose atoms compare variables and constants from
//!   a totally ordered domain, based on test-point enumeration: every
//!   variable ranges over a finite grid containing every constant of the
//!   formula, its integer neighbours, and sentinel values below and above
//!   all constants. Integrity constraints (Figure 2's "an employee cannot
//!   manage himself") enter as assumptions.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use nullrel_core::tvl::CompareOp;
use nullrel_core::value::Value;

/// One side of a comparison atom.
#[derive(Debug, Clone, PartialEq)]
pub enum Operand {
    /// A null variable (named after the cell it fills in, e.g. `e.TEL#`).
    Var(String),
    /// A known constant.
    Const(Value),
}

/// A quantifier-free formula over comparison atoms.
#[derive(Debug, Clone, PartialEq)]
pub enum Formula {
    /// The constant TRUE.
    True,
    /// The constant FALSE.
    False,
    /// A comparison atom.
    Cmp {
        /// Left operand.
        left: Operand,
        /// Comparison operator.
        op: CompareOp,
        /// Right operand.
        right: Operand,
    },
    /// Conjunction.
    And(Box<Formula>, Box<Formula>),
    /// Disjunction.
    Or(Box<Formula>, Box<Formula>),
    /// Negation.
    Not(Box<Formula>),
}

impl Formula {
    /// Conjunction helper.
    #[must_use]
    pub fn and(self, other: Formula) -> Formula {
        Formula::And(Box::new(self), Box::new(other))
    }

    /// Disjunction helper.
    #[must_use]
    pub fn or(self, other: Formula) -> Formula {
        Formula::Or(Box::new(self), Box::new(other))
    }

    /// Negation helper.
    #[must_use]
    pub fn negate(self) -> Formula {
        Formula::Not(Box::new(self))
    }

    /// A comparison atom.
    pub fn cmp(left: Operand, op: CompareOp, right: Operand) -> Formula {
        Formula::Cmp { left, op, right }
    }

    /// The variables occurring in the formula.
    pub fn variables(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut BTreeSet<String>) {
        match self {
            Formula::True | Formula::False => {}
            Formula::Cmp { left, right, .. } => {
                if let Operand::Var(v) = left {
                    out.insert(v.clone());
                }
                if let Operand::Var(v) = right {
                    out.insert(v.clone());
                }
            }
            Formula::And(a, b) | Formula::Or(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            Formula::Not(inner) => inner.collect_vars(out),
        }
    }

    /// The constants occurring in the formula.
    pub fn constants(&self) -> Vec<Value> {
        let mut out = Vec::new();
        self.collect_consts(&mut out);
        out
    }

    fn collect_consts(&self, out: &mut Vec<Value>) {
        match self {
            Formula::True | Formula::False => {}
            Formula::Cmp { left, right, .. } => {
                if let Operand::Const(v) = left {
                    out.push(v.clone());
                }
                if let Operand::Const(v) = right {
                    out.push(v.clone());
                }
            }
            Formula::And(a, b) | Formula::Or(a, b) => {
                a.collect_consts(out);
                b.collect_consts(out);
            }
            Formula::Not(inner) => inner.collect_consts(out),
        }
    }

    /// The comparison atoms in left-to-right order.
    pub fn atoms(&self) -> Vec<&Formula> {
        let mut out = Vec::new();
        self.collect_atoms(&mut out);
        out
    }

    fn collect_atoms<'a>(&'a self, out: &mut Vec<&'a Formula>) {
        match self {
            Formula::Cmp { .. } => out.push(self),
            Formula::And(a, b) | Formula::Or(a, b) => {
                a.collect_atoms(out);
                b.collect_atoms(out);
            }
            Formula::Not(inner) => inner.collect_atoms(out),
            Formula::True | Formula::False => {}
        }
    }

    /// Evaluates the formula under a complete assignment of the variables.
    /// Comparisons between incompatible types evaluate to false.
    pub fn eval(&self, assignment: &BTreeMap<String, Value>) -> bool {
        match self {
            Formula::True => true,
            Formula::False => false,
            Formula::Cmp { left, op, right } => {
                let l = resolve(left, assignment);
                let r = resolve(right, assignment);
                match (l, r) {
                    (Some(l), Some(r)) => match l.compare(&r) {
                        Ok(ord) => op.test(ord),
                        Err(_) => false,
                    },
                    // Unbound variables should not occur; treat as false.
                    _ => false,
                }
            }
            Formula::And(a, b) => a.eval(assignment) && b.eval(assignment),
            Formula::Or(a, b) => a.eval(assignment) || b.eval(assignment),
            Formula::Not(inner) => !inner.eval(assignment),
        }
    }
}

fn resolve(op: &Operand, assignment: &BTreeMap<String, Value>) -> Option<Value> {
    match op {
        Operand::Const(v) => Some(v.clone()),
        Operand::Var(name) => assignment.get(name).cloned(),
    }
}

/// The outcome of deciding a formula.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// True under every assignment (a tautology given the assumptions).
    Valid,
    /// True under some assignments and false under others.
    Satisfiable,
    /// False under every assignment.
    Unsatisfiable,
}

/// Statistics from a decision, used by benchmark E10.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecideStats {
    /// Number of complete variable assignments evaluated.
    pub assignments: usize,
    /// Number of candidate values per variable grid (maximum over
    /// variables).
    pub grid_size: usize,
}

/// Checks whether the formula is a **propositional** tautology: valid when
/// every comparison atom is treated as an independent boolean. Sound but
/// incomplete; exponential in the number of distinct atoms.
pub fn propositional_tautology(formula: &Formula) -> (bool, DecideStats) {
    // Collect distinct atoms (structural equality).
    let mut atoms: Vec<Formula> = Vec::new();
    for atom in formula.atoms() {
        if !atoms.contains(atom) {
            atoms.push(atom.clone());
        }
    }
    let n = atoms.len();
    let mut stats = DecideStats {
        assignments: 0,
        grid_size: 2,
    };
    // Enumerate all 2^n truth assignments of the atoms.
    for mask in 0..(1u64 << n.min(63)) {
        stats.assignments += 1;
        let truth = eval_propositional(formula, &atoms, mask);
        if !truth {
            return (false, stats);
        }
    }
    (true, stats)
}

fn eval_propositional(formula: &Formula, atoms: &[Formula], mask: u64) -> bool {
    match formula {
        Formula::True => true,
        Formula::False => false,
        Formula::Cmp { .. } => {
            let idx = atoms
                .iter()
                .position(|a| a == formula)
                .expect("atom collected");
            mask & (1 << idx) != 0
        }
        Formula::And(a, b) => {
            eval_propositional(a, atoms, mask) && eval_propositional(b, atoms, mask)
        }
        Formula::Or(a, b) => {
            eval_propositional(a, atoms, mask) || eval_propositional(b, atoms, mask)
        }
        Formula::Not(inner) => !eval_propositional(inner, atoms, mask),
    }
}

/// Decides a formula with no assumptions.
pub fn decide(formula: &Formula) -> (Decision, DecideStats) {
    decide_with_assumptions(&[], formula)
}

/// Decides `(∧ assumptions) → formula` over the test-point grid:
///
/// * [`Decision::Valid`] — the formula holds under every assignment that
///   satisfies the assumptions (or the assumptions are unsatisfiable);
/// * [`Decision::Satisfiable`] — it holds under some but not all;
/// * [`Decision::Unsatisfiable`] — it holds under none.
pub fn decide_with_assumptions(
    assumptions: &[Formula],
    formula: &Formula,
) -> (Decision, DecideStats) {
    // Gather variables and constants from the formula and the assumptions.
    let mut vars = formula.variables();
    let mut consts = formula.constants();
    for a in assumptions {
        vars.extend(a.variables());
        consts.extend(a.constants());
    }
    let grid = candidate_grid(&consts);
    let vars: Vec<String> = vars.into_iter().collect();
    // Give each variable a candidate list restricted to its inferred type;
    // a variable whose type cannot be inferred ranges over the whole grid.
    let types = infer_variable_types(assumptions, formula);
    let grids: Vec<Vec<Value>> = vars
        .iter()
        .map(|v| {
            // A variable with no type evidence at all is assumed to range
            // over an integer-like ordered domain (any single ordered domain
            // gives the same validity answers for pure comparison formulas).
            let ty = types
                .get(v)
                .copied()
                .flatten()
                .unwrap_or(nullrel_core::universe::DomainType::Int);
            let filtered: Vec<Value> = grid.iter().filter(|val| ty.matches(val)).cloned().collect();
            if filtered.is_empty() {
                grid.clone()
            } else {
                filtered
            }
        })
        .collect();
    let mut stats = DecideStats {
        assignments: 0,
        grid_size: grids.iter().map(Vec::len).max().unwrap_or(grid.len()),
    };

    let mut seen_true = false;
    let mut seen_false = false;
    let mut any_assumption_model = false;

    let mut indices = vec![0usize; vars.len()];
    loop {
        let assignment: BTreeMap<String, Value> = vars
            .iter()
            .enumerate()
            .map(|(pos, v)| (v.clone(), grids[pos][indices[pos]].clone()))
            .collect();
        stats.assignments += 1;
        let assumptions_hold = assumptions.iter().all(|a| a.eval(&assignment));
        if assumptions_hold {
            any_assumption_model = true;
            if formula.eval(&assignment) {
                seen_true = true;
            } else {
                seen_false = true;
            }
            if seen_true && seen_false {
                return (Decision::Satisfiable, stats);
            }
        }
        // Advance the mixed-radix counter; with no variables run exactly once.
        if vars.is_empty() {
            break;
        }
        let mut pos = 0;
        loop {
            if pos == vars.len() {
                indices.clear();
                break;
            }
            indices[pos] += 1;
            if indices[pos] < grids[pos].len() {
                break;
            }
            indices[pos] = 0;
            pos += 1;
        }
        if indices.is_empty() {
            break;
        }
    }
    let decision = if !any_assumption_model {
        // Vacuously valid: no legal assignment satisfies the constraints.
        Decision::Valid
    } else if seen_true && !seen_false {
        Decision::Valid
    } else if seen_false && !seen_true {
        Decision::Unsatisfiable
    } else {
        Decision::Satisfiable
    };
    (decision, stats)
}

/// Builds the shared test-point grid: every constant, its integer/float
/// neighbours, and sentinel values of every type below and above all
/// constants. Variables of a dense or discrete ordered domain take all
/// their order-positions relative to the constants somewhere in this grid,
/// which is what makes the procedure complete for comparison formulas; the
/// per-variable type filter in [`decide_with_assumptions`] keeps variables
/// from being assigned values outside their domain's type.
fn candidate_grid(consts: &[Value]) -> Vec<Value> {
    fn push(grid: &mut Vec<Value>, v: Value) {
        if !grid.contains(&v) {
            grid.push(v);
        }
    }
    let mut grid: Vec<Value> = Vec::new();
    for c in consts {
        match c {
            Value::Int(i) => {
                push(&mut grid, Value::Int(*i));
                push(&mut grid, Value::Int(i.saturating_sub(1)));
                push(&mut grid, Value::Int(i.saturating_add(1)));
            }
            Value::Float(f) => {
                push(&mut grid, Value::float(f.get()));
                push(&mut grid, Value::float(f.get() - 1.0));
                push(&mut grid, Value::float(f.get() + 1.0));
            }
            Value::Str(s) => {
                push(&mut grid, Value::str(s.clone()));
            }
            Value::Bool(b) => {
                push(&mut grid, Value::Bool(*b));
                push(&mut grid, Value::Bool(!b));
            }
        }
    }
    // Type-specific sentinels below and above every constant.
    push(&mut grid, Value::Int(i64::MIN / 2));
    push(&mut grid, Value::Int(i64::MAX / 2));
    push(&mut grid, Value::str("\u{0}"));
    push(&mut grid, Value::str("\u{10FFFF}~sentinel"));
    push(&mut grid, Value::Bool(false));
    push(&mut grid, Value::Bool(true));
    grid
}

/// Infers the runtime type of each variable from the atoms it appears in:
/// a variable compared with a constant takes the constant's type, and type
/// information flows across variable-to-variable comparisons. Conflicting
/// evidence leaves the variable untyped (it then ranges over the full grid).
fn infer_variable_types(
    assumptions: &[Formula],
    formula: &Formula,
) -> BTreeMap<String, Option<nullrel_core::universe::DomainType>> {
    use nullrel_core::universe::DomainType;

    let mut types: BTreeMap<String, Option<DomainType>> = BTreeMap::new();
    let mut links: Vec<(String, String)> = Vec::new();
    let mut atoms: Vec<&Formula> = formula.atoms();
    for a in assumptions {
        atoms.extend(a.atoms());
    }
    let record = |types: &mut BTreeMap<String, Option<DomainType>>, var: &str, ty: DomainType| {
        match types.get(var) {
            Some(Some(existing)) if *existing != ty => {
                // Numeric cross-typing (int vs float) is harmless; anything
                // else marks the variable as mixed.
                let numeric = |t: DomainType| matches!(t, DomainType::Int | DomainType::Float);
                if !(numeric(*existing) && numeric(ty)) {
                    types.insert(var.to_owned(), None);
                }
            }
            Some(Some(_)) => {}
            Some(None) => {}
            None => {
                types.insert(var.to_owned(), Some(ty));
            }
        }
    };
    for atom in &atoms {
        if let Formula::Cmp { left, right, .. } = atom {
            match (left, right) {
                (Operand::Var(v), Operand::Const(c)) | (Operand::Const(c), Operand::Var(v)) => {
                    record(&mut types, v, nullrel_core::universe::DomainType::of(c));
                }
                (Operand::Var(a), Operand::Var(b)) => {
                    links.push((a.clone(), b.clone()));
                    types.entry(a.clone()).or_insert(None);
                    types.entry(b.clone()).or_insert(None);
                }
                _ => {}
            }
        }
    }
    // Propagate across links to a fixed point (the link graph is tiny).
    for _ in 0..links.len() + 1 {
        let mut changed = false;
        for (a, b) in &links {
            let ta = types.get(a).copied().flatten();
            let tb = types.get(b).copied().flatten();
            match (ta, tb) {
                (Some(t), None) if types.insert(b.clone(), Some(t)) != Some(Some(t)) => {
                    changed = true;
                }
                (None, Some(t)) if types.insert(a.clone(), Some(t)) != Some(Some(t)) => {
                    changed = true;
                }
                _ => {}
            }
        }
        if !changed {
            break;
        }
    }
    types
}

#[cfg(test)]
mod tests {
    use super::*;

    fn var(name: &str) -> Operand {
        Operand::Var(name.into())
    }

    fn int(v: i64) -> Operand {
        Operand::Const(Value::int(v))
    }

    /// Figure 1's where clause with SEX known to be "F" and TEL# unknown:
    /// (TRUE ∧ x > 2634000) ∨ x < 2634000 — satisfiable but *not* valid,
    /// because x may equal 2634000 exactly.
    #[test]
    fn figure1_clause_without_equality_is_not_valid() {
        let x = || var("e.TEL#");
        let f = Formula::cmp(x(), CompareOp::Gt, int(2_634_000)).or(Formula::cmp(
            x(),
            CompareOp::Lt,
            int(2_634_000),
        ));
        let (d, stats) = decide(&f);
        assert_eq!(d, Decision::Satisfiable);
        assert!(stats.assignments >= 2);
    }

    /// x > k ∨ x ≤ k is a genuine tautology over any ordered domain; the
    /// test-point method finds it, the propositional abstraction cannot.
    #[test]
    fn arithmetic_tautology_needs_the_ordered_decision_procedure() {
        let x = || var("x");
        let f =
            Formula::cmp(x(), CompareOp::Gt, int(10)).or(Formula::cmp(x(), CompareOp::Le, int(10)));
        assert_eq!(decide(&f).0, Decision::Valid);
        let (prop, _) = propositional_tautology(&f);
        assert!(!prop, "propositionally the two atoms are independent");
    }

    /// p ∨ ¬p is valid both propositionally and over the ordered domain.
    #[test]
    fn propositional_tautology_is_detected() {
        let p = Formula::cmp(var("x"), CompareOp::Eq, int(5));
        let f = p.clone().or(p.negate());
        assert!(propositional_tautology(&f).0);
        assert_eq!(decide(&f).0, Decision::Valid);
    }

    /// The Appendix's inequality example: `t.A > 3 ∧ (t.B < 12 ∨ t.B > t.A)`
    /// is a tautology in B whenever A is known to satisfy 3 < A < 12.
    #[test]
    fn appendix_inequality_example() {
        let b = || var("t.B");
        // A is known: say A = 7.
        let f = Formula::cmp(int(7), CompareOp::Gt, int(3)).and(
            Formula::cmp(b(), CompareOp::Lt, int(12)).or(Formula::cmp(b(), CompareOp::Gt, int(7))),
        );
        assert_eq!(decide(&f).0, Decision::Valid);
        // With A = 20 the clause is merely satisfiable in B.
        let f2 = Formula::cmp(int(20), CompareOp::Gt, int(3)).and(
            Formula::cmp(b(), CompareOp::Lt, int(12)).or(Formula::cmp(b(), CompareOp::Gt, int(20))),
        );
        assert_eq!(decide(&f2).0, Decision::Satisfiable);
    }

    /// Figure 2's schema-constraint tautology: given the integrity
    /// constraints MGR# ≠ E# (no self-management) and E# ≠ m.MGR# (no
    /// mutual management) as assumptions, the last two conjuncts of Q_B are
    /// valid for any substitution of the nulls.
    #[test]
    fn figure2_constraints_make_the_residue_valid() {
        let e_mgr = || var("e.MGR#");
        let e_no = || var("e.E#");
        let m_mgr = || var("m.MGR#");
        let residue = Formula::cmp(e_mgr(), CompareOp::Ne, e_no()).and(Formula::cmp(
            e_no(),
            CompareOp::Ne,
            m_mgr(),
        ));
        // Without the constraints the residue is merely satisfiable.
        assert_eq!(decide(&residue).0, Decision::Satisfiable);
        // With the constraints assumed it is valid.
        let constraints = vec![
            Formula::cmp(e_mgr(), CompareOp::Ne, e_no()),
            Formula::cmp(e_no(), CompareOp::Ne, m_mgr()),
        ];
        assert_eq!(
            decide_with_assumptions(&constraints, &residue).0,
            Decision::Valid
        );
    }

    #[test]
    fn unsatisfiable_formulas_are_detected() {
        let x = || var("x");
        let f =
            Formula::cmp(x(), CompareOp::Gt, int(10)).and(Formula::cmp(x(), CompareOp::Lt, int(5)));
        assert_eq!(decide(&f).0, Decision::Unsatisfiable);
        // Discrete gap: x > 4 ∧ x < 5 has no integer solution.
        let g =
            Formula::cmp(x(), CompareOp::Gt, int(4)).and(Formula::cmp(x(), CompareOp::Lt, int(5)));
        assert_eq!(decide(&g).0, Decision::Unsatisfiable);
        // But x > 4 ∧ x < 6 does (x = 5).
        let h =
            Formula::cmp(x(), CompareOp::Gt, int(4)).and(Formula::cmp(x(), CompareOp::Lt, int(6)));
        assert_eq!(decide(&h).0, Decision::Satisfiable);
    }

    #[test]
    fn unsatisfiable_assumptions_make_everything_vacuously_valid() {
        let x = || var("x");
        let contradictory = vec![
            Formula::cmp(x(), CompareOp::Gt, int(10)),
            Formula::cmp(x(), CompareOp::Lt, int(5)),
        ];
        let f = Formula::cmp(x(), CompareOp::Eq, int(0));
        assert_eq!(
            decide_with_assumptions(&contradictory, &f).0,
            Decision::Valid
        );
    }

    #[test]
    fn ground_formulas_and_constants() {
        assert_eq!(decide(&Formula::True).0, Decision::Valid);
        assert_eq!(decide(&Formula::False).0, Decision::Unsatisfiable);
        let ground = Formula::cmp(int(3), CompareOp::Lt, int(5));
        assert_eq!(decide(&ground).0, Decision::Valid);
        let ground_false = Formula::cmp(int(5), CompareOp::Lt, int(3));
        assert_eq!(decide(&ground_false).0, Decision::Unsatisfiable);
    }

    #[test]
    fn string_comparisons_and_type_clashes() {
        let s = || var("s");
        let f = Formula::cmp(s(), CompareOp::Eq, Operand::Const(Value::str("F"))).or(Formula::cmp(
            s(),
            CompareOp::Ne,
            Operand::Const(Value::str("F")),
        ));
        assert_eq!(decide(&f).0, Decision::Valid);
        // Comparing a string constant with an int constant is never true.
        let clash = Formula::cmp(
            Operand::Const(Value::str("F")),
            CompareOp::Eq,
            Operand::Const(Value::int(1)),
        );
        assert_eq!(decide(&clash).0, Decision::Unsatisfiable);
    }

    #[test]
    fn variable_to_variable_equality_orders() {
        let x = || var("x");
        let y = || var("y");
        // x = y ∨ x < y ∨ x > y is valid (trichotomy).
        let f = Formula::cmp(x(), CompareOp::Eq, y())
            .or(Formula::cmp(x(), CompareOp::Lt, y()))
            .or(Formula::cmp(x(), CompareOp::Gt, y()));
        assert_eq!(decide(&f).0, Decision::Valid);
        // x < y ∧ y < x is unsatisfiable.
        let g = Formula::cmp(x(), CompareOp::Lt, y()).and(Formula::cmp(y(), CompareOp::Lt, x()));
        assert_eq!(decide(&g).0, Decision::Unsatisfiable);
    }

    #[test]
    fn formula_introspection() {
        let f = Formula::cmp(var("a"), CompareOp::Lt, int(3)).and(Formula::cmp(
            var("b"),
            CompareOp::Gt,
            int(4),
        ));
        assert_eq!(f.variables().len(), 2);
        assert_eq!(f.constants().len(), 2);
        assert_eq!(f.atoms().len(), 2);
    }
}
