//! Abrupt-disconnect behavior: a client that vanishes without `QUIT`
//! must release its session slot (the active-sessions gauge returns to
//! baseline), be counted in the disconnect counter, and leave no
//! prepared-cache state behind (a reconnect re-prepares from scratch).
//!
//! This file owns its test process (one `#[test]`): the session gauge
//! and counters are process-wide, so sharing a binary with other serve
//! tests would race their sessions against our baseline reads.

use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use nullrel_core::value::Value;
use nullrel_serve::{metrics, start, Client, ServeConfig};
use nullrel_storage::{Database, SchemaBuilder, VersionedDatabase};

const QUERY: &str = "range of e is EMP retrieve (e.NAME) where e.E# = 1";

fn emp_db() -> Database {
    let mut db = Database::new();
    db.create_table(
        SchemaBuilder::new("EMP")
            .required_column("E#")
            .column("NAME")
            .key(&["E#"]),
    )
    .unwrap();
    let u = db.universe().clone();
    let t = db.table_mut("EMP").unwrap();
    for i in 0..4 {
        t.insert_named(
            &u,
            &[("E#", Value::int(i)), ("NAME", Value::str(format!("E{i}")))],
        )
        .unwrap();
    }
    db
}

/// Polls `cond` for up to five seconds — worker threads notice a dead
/// socket on their next read, not instantly.
fn eventually(what: &str, cond: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline {
        if cond() {
            return;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!("timed out waiting for {what}");
}

#[test]
fn killed_sockets_release_sessions_and_count_disconnects() {
    let server = start(
        Arc::new(VersionedDatabase::new(emp_db())),
        ServeConfig::pinned_for_tests(),
    )
    .unwrap();
    let addr = server.addr();
    assert_eq!(metrics::ACTIVE_SESSIONS.get(), 0);
    let disconnects = metrics::DISCONNECTS.get();

    // A session that runs a query (populating its prepared cache), then
    // vanishes mid-stream: socket dropped, no QUIT.
    {
        let mut client = Client::connect(addr).unwrap();
        let out = client.send(&format!("QUEL {QUERY}")).unwrap().unwrap();
        assert_eq!(out[0], "rows=1");
        eventually("session to register", || {
            metrics::ACTIVE_SESSIONS.get() == 1
        });
    } // <- dropped here, connection dies abruptly
    eventually("gauge release after kill", || {
        metrics::ACTIVE_SESSIONS.get() == 0
    });
    eventually("disconnect counted", || {
        metrics::DISCONNECTS.get() == disconnects + 1
    });

    // Killing the socket mid-request (bytes written, no newline) is the
    // harsher variant: the worker wakes up on EOF with a partial line.
    {
        let mut raw = TcpStream::connect(addr).unwrap();
        raw.write_all(b"QUEL range of e is EMP retr").unwrap();
        raw.flush().unwrap();
        std::thread::sleep(Duration::from_millis(50));
    } // <- dropped mid-request
    eventually("gauge release after mid-request kill", || {
        metrics::ACTIVE_SESSIONS.get() == 0
    });
    eventually("second disconnect counted", || {
        metrics::DISCONNECTS.get() == disconnects + 2
    });

    // The prepared cache died with the session: a new session preparing
    // the same text misses (per-session cache, nothing leaked across).
    let misses = metrics::PREPARED_MISSES.get();
    let hits = metrics::PREPARED_HITS.get();
    let mut fresh = Client::connect(addr).unwrap();
    fresh.send(&format!("QUEL {QUERY}")).unwrap().unwrap();
    assert_eq!(metrics::PREPARED_MISSES.get(), misses + 1);
    assert_eq!(metrics::PREPARED_HITS.get(), hits, "no stale cache hit");

    // A clean QUIT is not a disconnect.
    fresh.send("QUIT").unwrap().unwrap();
    eventually("gauge release after QUIT", || {
        metrics::ACTIVE_SESSIONS.get() == 0
    });
    assert_eq!(metrics::DISCONNECTS.get(), disconnects + 2);
    server.stop();
}
