//! Golden-file transcript of the wire-served debug surfaces: `TOP`,
//! `SLOW`, `TRACE LAST`, `HEALTH`, and `RESET STATS` as a client sees
//! them. Timing values are masked (`<n>us` → `Tus`, chrome `ts`/`dur` →
//! `T`); counts, fingerprints, and plan renderings are deterministic for
//! the scripted request sequence. Re-bless with `UPDATE_GOLDEN=1`.
//!
//! This file owns its test process (one `#[test]`): the flight recorder
//! and the slow-query log are process-wide, so the transcript is only
//! reproducible when nothing else runs queries in the same process.

use std::path::PathBuf;
use std::sync::Arc;

use nullrel_core::value::Value;
use nullrel_serve::{start, Client, ServeConfig};
use nullrel_storage::{Database, SchemaBuilder, VersionedDatabase};

const JOIN_QUERY: &str = "range of e is EMP range of m is EMP retrieve (e.NAME) \
                          where m.SEX = \"M\" and e.MGR# = m.E#";

const MAYBE_QUERY: &str = "range of e is EMP retrieve (e.NAME) where e.MGR# = 1";

/// The e12 EMP shape at n=24 — the same fixture as the explain snapshots.
fn emp_db() -> Database {
    let mut db = Database::new();
    db.create_table(
        SchemaBuilder::new("EMP")
            .required_column("E#")
            .column("NAME")
            .column("SEX")
            .column("MGR#")
            .key(&["E#"]),
    )
    .unwrap();
    let u = db.universe().clone();
    let t = db.table_mut("EMP").unwrap();
    for i in 0..24 {
        let mut cells = vec![
            ("E#", Value::int(i)),
            ("NAME", Value::str(format!("EMP{i}"))),
            ("SEX", Value::str(if i % 2 == 0 { "M" } else { "F" })),
        ];
        if i % 7 != 0 {
            cells.push(("MGR#", Value::int(i / 3)));
        }
        t.insert_named(&u, &cells).unwrap();
    }
    db
}

/// Masks `key=<digits>us` tokens and the `uptime_s=` reading.
fn mask_line(line: &str) -> String {
    line.split(' ')
        .map(|tok| {
            if let Some((key, value)) = tok.split_once('=') {
                if let Some(digits) = value.strip_suffix("us") {
                    if !digits.is_empty() && digits.bytes().all(|b| b.is_ascii_digit()) {
                        return format!("{key}=Tus");
                    }
                }
                if key == "uptime_s" && value.bytes().all(|b| b.is_ascii_digit()) {
                    return "uptime_s=T".to_owned();
                }
            }
            tok.to_owned()
        })
        .collect::<Vec<_>>()
        .join(" ")
}

/// Masks one chrome-trace JSON line: timestamps and durations become
/// `T`, and instant events (sub-microsecond spans flip between instant
/// and interval across runs) are normalized to the interval form.
fn mask_trace_line(line: &str) -> String {
    let mut out = String::new();
    let mut rest = line;
    for key in ["\"ts\":", "\"dur\":"] {
        let mut masked = String::new();
        while let Some(pos) = rest.find(key) {
            let value_at = pos + key.len();
            let end = rest[value_at..]
                .find(|c: char| !c.is_ascii_digit())
                .map(|e| value_at + e)
                .unwrap_or(rest.len());
            masked.push_str(&rest[..value_at]);
            masked.push('T');
            rest = &rest[end..];
        }
        masked.push_str(rest);
        out = masked;
        rest = &out;
    }
    out.replace("\"ph\":\"i\",\"s\":\"t\"", "\"ph\":\"X\"")
        .replace(",\"dur\":T", "")
}

/// Compares against `tests/golden/<name>.txt`, rewriting the file
/// instead when `UPDATE_GOLDEN` is set.
fn check_golden(name: &str, actual: &str) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.txt"));
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|_| panic!("missing golden file {path:?} — run once with UPDATE_GOLDEN=1"));
    assert_eq!(
        expected, actual,
        "snapshot drift in {name} (re-bless with UPDATE_GOLDEN=1 if intended)"
    );
}

#[test]
fn debug_surfaces_over_the_wire() {
    // Arm the slow log at 0 ms so every request leaves a trace for
    // `TRACE LAST` (the server runs in this process).
    nullrel_obs::set_slow_query_ms(Some(0));
    let server = start(
        Arc::new(VersionedDatabase::new(emp_db())),
        ServeConfig::pinned_for_tests(),
    )
    .unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    // The scripted session. `TOP 1`/`SLOW 1` ask for one entry because
    // only the dominant shape (the join, ~100× costlier than the control
    // commands around it) has a deterministic rank; further ranks order
    // by wall-clock and would flap. TRACE LAST follows the MAYBE request
    // directly, so the trace it serves is that request's.
    let script: &[&str] = &[
        "RESET STATS",
        &format!("QUEL {JOIN_QUERY}"),
        "TOP 1",
        "SLOW 1",
        &format!("QUEL {JOIN_QUERY}"),
        &format!("MAYBE {MAYBE_QUERY}"),
        "TRACE LAST",
        "HEALTH",
        "TOP five",
        "TRACE ALL",
    ];
    let mut transcript = String::new();
    for request in script {
        transcript.push_str(&format!("> {request}\n"));
        match client.send(request).unwrap() {
            Ok(lines) => {
                let trace = *request == "TRACE LAST";
                for line in &lines {
                    let masked = if trace {
                        mask_trace_line(line)
                    } else {
                        mask_line(line)
                    };
                    transcript.push_str(&masked);
                    transcript.push('\n');
                }
            }
            Err(message) => transcript.push_str(&format!("ERR {message}\n")),
        }
    }
    check_golden("debug_surfaces_over_the_wire", &transcript);

    // Differential (non-golden) checks against the recorder directly:
    // the served records carry the session annotations.
    let recent = nullrel_obs::recorder::recent(16);
    let (join_fp, _) = nullrel_obs::recorder::fingerprint(&format!("QUEL {JOIN_QUERY}"));
    let joins: Vec<_> = recent.iter().filter(|r| r.fingerprint == join_fp).collect();
    assert_eq!(joins.len(), 2, "both join executions recorded");
    // `recent` is newest-first: the replay hit the prepared cache, the
    // first execution planned from scratch.
    assert!(joins[0].prepared_hit && !joins[1].prepared_hit);
    assert!(joins.iter().all(|r| r.epoch == Some(0)));
    assert!(joins.iter().all(|r| r.band == "TRUE"));
    let maybe = recent
        .iter()
        .find(|r| r.text.starts_with("MAYBE"))
        .expect("MAYBE request recorded");
    assert_eq!(maybe.band, "MAYBE");

    nullrel_obs::set_slow_query_ms(None);
    server.stop();
}
