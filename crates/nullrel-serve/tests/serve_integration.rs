//! Loopback integration tests: a real `TcpListener` server, real client
//! sockets, the full wire protocol — QUEL/EXPLAIN/metrics round trips in
//! both truth bands, concurrent sessions, snapshot pinning under
//! concurrent commits, and session-thread saturation behavior.

use std::sync::Arc;

use nullrel_core::value::Value;
use nullrel_serve::{start, Client, ServeConfig};
use nullrel_storage::{Database, SchemaBuilder, VersionedDatabase};

const FIGURE_2_LIKE: &str = "range of e is EMP range of m is EMP retrieve (e.NAME) \
                             where m.SEX = \"M\" and e.MGR# = m.E#";

/// The e12 EMP shape at n=24 (every i%7==0 row has a ni MGR#).
fn emp_db() -> Database {
    let mut db = Database::new();
    db.create_table(
        SchemaBuilder::new("EMP")
            .required_column("E#")
            .column("NAME")
            .column("SEX")
            .column("MGR#")
            .key(&["E#"]),
    )
    .unwrap();
    let u = db.universe().clone();
    let t = db.table_mut("EMP").unwrap();
    for i in 0..24 {
        let mut cells = vec![
            ("E#", Value::int(i)),
            ("NAME", Value::str(format!("EMP{i}"))),
            ("SEX", Value::str(if i % 2 == 0 { "M" } else { "F" })),
        ];
        if i % 7 != 0 {
            cells.push(("MGR#", Value::int(i / 3)));
        }
        t.insert_named(&u, &cells).unwrap();
    }
    db
}

fn serve() -> nullrel_serve::ServerHandle {
    start(
        Arc::new(VersionedDatabase::new(emp_db())),
        ServeConfig::pinned_for_tests(),
    )
    .expect("bind loopback server")
}

#[test]
fn quel_round_trips_in_both_bands() {
    let server = serve();
    let mut client = Client::connect(server.addr()).unwrap();

    let sure = client
        .send("QUEL range of e is EMP retrieve (e.NAME) where e.MGR# = 3")
        .unwrap()
        .unwrap();
    assert_eq!(sure[0], "rows=3");
    assert_eq!(sure[1], "e.NAME");
    assert!(sure.contains(&"EMP9".to_owned()), "{sure:?}");

    // The maybe band: rows whose MGR# is ni qualify possibly.
    let maybe = client
        .send("MAYBE range of e is EMP retrieve (e.NAME) where e.MGR# = 3")
        .unwrap()
        .unwrap();
    assert_eq!(maybe[0], "rows=4", "i %% 7 == 0 rows have ni MGR#");
    assert!(maybe.contains(&"EMP0".to_owned()), "{maybe:?}");

    // A join runs over the same session (prepared-cache misses then hits).
    let join = client
        .send(&format!("QUEL {FIGURE_2_LIKE}"))
        .unwrap()
        .unwrap();
    let join_again = client
        .send(&format!("QUEL {FIGURE_2_LIKE}"))
        .unwrap()
        .unwrap();
    assert_eq!(join, join_again);

    assert_eq!(client.send("QUIT").unwrap().unwrap(), Vec::<String>::new());
}

#[test]
fn algebra_expressions_run_over_the_wire() {
    let server = serve();
    let mut client = Client::connect(server.addr()).unwrap();
    let out = client
        .send("EXPR (project (NAME) (select (= SEX \"F\") (scan EMP)))")
        .unwrap()
        .unwrap();
    assert_eq!(out[0], "rows=12");
    assert!(out.contains(&"NAME=EMP1".to_owned()), "{out:?}");

    // Set difference through the s-expression surface: M minus M = empty.
    let empty = client
        .send("EXPR (diff (project (NAME) (select (= SEX \"M\") (scan EMP))) (project (NAME) (scan EMP)))")
        .unwrap()
        .unwrap();
    assert_eq!(empty, vec!["rows=0".to_owned()]);

    // The maybe band of a selection over the ni column.
    let maybe = client
        .send("EXPRMAYBE (project (E#) (select (> MGR# 0) (scan EMP)))")
        .unwrap()
        .unwrap();
    assert_eq!(maybe[0], "rows=4", "the ni-MGR# rows: {maybe:?}");
}

#[test]
fn explain_analyze_and_metrics_render_over_the_wire() {
    let server = serve();
    let mut client = Client::connect(server.addr()).unwrap();

    let explain = client
        .send(&format!("EXPLAIN {FIGURE_2_LIKE}"))
        .unwrap()
        .unwrap();
    let report = explain.join("\n");
    assert!(report.contains("HashJoin"), "{report}");
    assert!(report.contains("est="), "{report}");

    let analyze = client
        .send(&format!("ANALYZE {FIGURE_2_LIKE}"))
        .unwrap()
        .unwrap();
    let report = analyze.join("\n");
    assert!(report.contains("time="), "{report}");

    let metrics = client.send("METRICS").unwrap().unwrap();
    let text = metrics.join("\n");
    for metric in [
        "nullrel_serve_connections_total",
        "nullrel_serve_active_sessions",
        "nullrel_serve_requests_total",
        "nullrel_serve_quel_latency_us",
        "nullrel_commits_total",
        "nullrel_queries_executed_total",
    ] {
        assert!(text.contains(metric), "missing {metric} in METRICS output");
    }
}

#[test]
fn pinned_sessions_freeze_while_commits_land() {
    let server = serve();
    let mut reader = Client::connect(server.addr()).unwrap();
    let mut writer = Client::connect(server.addr()).unwrap();

    let pin = reader.send("PIN").unwrap().unwrap();
    assert_eq!(pin, vec!["pinned=0".to_owned()]);
    let frozen = reader
        .send("QUEL range of e is EMP retrieve (e.E#)")
        .unwrap()
        .unwrap();
    assert_eq!(frozen[0], "rows=24");

    // A writer session commits through the wire; the server epoch moves.
    let commit = writer
        .send("INSERT EMP E#=100 NAME=\"NEW\" SEX=\"M\" MGR#=3")
        .unwrap()
        .unwrap();
    assert_eq!(commit, vec!["epoch=1 rows=1".to_owned()]);
    let epoch = writer.send("EPOCH").unwrap().unwrap();
    assert_eq!(epoch[0], "epoch=1");

    // The pinned reader still sees epoch 0; after UNPIN it catches up.
    let still = reader
        .send("QUEL range of e is EMP retrieve (e.E#)")
        .unwrap()
        .unwrap();
    assert_eq!(still[0], "rows=24", "pinned snapshot is frozen");
    reader.send("UNPIN").unwrap().unwrap();
    let fresh = reader
        .send("QUEL range of e is EMP retrieve (e.E#)")
        .unwrap()
        .unwrap();
    assert_eq!(fresh[0], "rows=25");

    // DELETE commits too, and reports the affected-row count.
    let removed = writer.send("DELETE EMP E# = 100").unwrap().unwrap();
    assert_eq!(removed, vec!["epoch=2 rows=1".to_owned()]);
}

#[test]
fn concurrent_sessions_read_consistent_snapshots_while_a_writer_commits() {
    let server = serve();
    let addr = server.addr();
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));

    // A writer thread commits inserts and deletes of the same row over and
    // over: every committed state has either 24 or 25 rows — never
    // anything in between, and never a torn read.
    let writer_stop = Arc::clone(&stop);
    let writer = std::thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        let mut commits = 0u32;
        while !writer_stop.load(std::sync::atomic::Ordering::Relaxed) {
            client
                .send("INSERT EMP E#=500 NAME=\"CHURN\" SEX=\"M\" MGR#=1")
                .unwrap()
                .unwrap();
            client.send("DELETE EMP E# = 500").unwrap().unwrap();
            commits += 2;
        }
        commits
    });

    let readers: Vec<_> = (0..4)
        .map(|_| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let mut reads = 0u32;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let out = client
                        .send("QUEL range of e is EMP retrieve (e.E#)")
                        .unwrap()
                        .unwrap();
                    assert!(
                        out[0] == "rows=24" || out[0] == "rows=25",
                        "torn read: {}",
                        out[0]
                    );
                    reads += 1;
                }
                reads
            })
        })
        .collect();

    std::thread::sleep(std::time::Duration::from_millis(300));
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let commits = writer.join().unwrap();
    let reads: u32 = readers.into_iter().map(|r| r.join().unwrap()).sum();
    assert!(commits > 0, "writer made progress");
    assert!(reads > 0, "readers made progress");
    assert!(server.database().epoch() >= u64::from(commits));
}

#[test]
fn protocol_errors_never_kill_the_session() {
    let server = serve();
    let mut client = Client::connect(server.addr()).unwrap();
    assert!(client.send("FROBNICATE").unwrap().is_err());
    assert!(client.send("QUEL garbage query").unwrap().is_err());
    assert!(client.send("EXPR (scan NOPE_UNBALANCED").unwrap().is_err());
    assert!(client.send("INSERT NOPE X=1").unwrap().is_err());
    // The session survives all of it.
    let out = client
        .send("QUEL range of e is EMP retrieve (e.SEX)")
        .unwrap()
        .unwrap();
    assert_eq!(out[0], "rows=2");
}

#[test]
fn sessions_beyond_the_worker_pool_queue_up() {
    // threads=4 in the test config; open more sessions than workers and
    // use them round-robin — the queued connections are served as earlier
    // sessions quit.
    let server = serve();
    let addr = server.addr();
    let mut clients: Vec<Client> = (0..4).map(|_| Client::connect(addr).unwrap()).collect();
    for client in &mut clients {
        let out = client
            .send("QUEL range of e is EMP retrieve (e.SEX)")
            .unwrap()
            .unwrap();
        assert_eq!(out[0], "rows=2");
    }
    // A fifth connection waits in the accept queue until a worker frees.
    let mut fifth = Client::connect(addr).unwrap();
    clients.remove(0).send("QUIT").unwrap().unwrap();
    let out = fifth
        .send("QUEL range of e is EMP retrieve (e.SEX)")
        .unwrap()
        .unwrap();
    assert_eq!(out[0], "rows=2");
}
