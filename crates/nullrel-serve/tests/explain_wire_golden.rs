//! Golden-file snapshot of the server-side `EXPLAIN ANALYZE` output as it
//! crosses the wire — the serve-layer continuation of
//! `nullrel-query/tests/explain_snapshots.rs`, masked with the same
//! conventions (durations → `T`, percentages → `P%`, worker spreads →
//! `workers=[masked]`). Re-bless with `UPDATE_GOLDEN=1 cargo test`.
//!
//! The server runs the pinned test options (serial, vectorized, default
//! batch), so the snapshot is stable across the CI matrix legs.

use std::path::PathBuf;
use std::sync::Arc;

use nullrel_core::value::Value;
use nullrel_serve::{start, Client, ServeConfig};
use nullrel_storage::{Database, SchemaBuilder, VersionedDatabase};

const JOIN_QUERY: &str = "range of e is EMP range of m is EMP retrieve (e.NAME) \
                          where m.SEX = \"M\" and e.MGR# = m.E#";

/// Keys whose values are wall-clock readings and must be masked.
const DURATION_KEYS: &[&str] = &[
    "time=",
    "self=",
    "parse=",
    "plan=",
    "optimize=",
    "compile=",
    "run=",
    "total=",
];

/// The e12 EMP shape at n=24 — the same fixture as the query-layer
/// explain snapshots, so the two golden sets stay comparable.
fn emp_db() -> Database {
    let mut db = Database::new();
    db.create_table(
        SchemaBuilder::new("EMP")
            .required_column("E#")
            .column("NAME")
            .column("SEX")
            .column("MGR#")
            .key(&["E#"]),
    )
    .unwrap();
    let u = db.universe().clone();
    let t = db.table_mut("EMP").unwrap();
    for i in 0..24 {
        let mut cells = vec![
            ("E#", Value::int(i)),
            ("NAME", Value::str(format!("EMP{i}"))),
            ("SEX", Value::str(if i % 2 == 0 { "M" } else { "F" })),
        ];
        if i % 7 != 0 {
            cells.push(("MGR#", Value::int(i / 3)));
        }
        t.insert_named(&u, &cells).unwrap();
    }
    db
}

/// Replaces scheduling-dependent substrings with stable tokens (same
/// masking as the query-layer snapshot harness).
fn mask(report: &str) -> String {
    let mut out = String::new();
    for line in report.lines() {
        let mut masked = String::new();
        let mut rest = line;
        while let Some(pos) = rest.find("workers=[") {
            let end = rest[pos..]
                .find(']')
                .map(|e| pos + e + 1)
                .unwrap_or(rest.len());
            masked.push_str(&rest[..pos]);
            masked.push_str("workers=[masked]");
            rest = &rest[end..];
        }
        masked.push_str(rest);
        let tokens: Vec<String> = masked
            .split(' ')
            .map(|tok| {
                for key in DURATION_KEYS {
                    if let Some(pos) = tok.find(key) {
                        let value_at = pos + key.len();
                        let trailer: String = tok[value_at..]
                            .chars()
                            .rev()
                            .take_while(|c| *c == ']')
                            .collect();
                        return format!("{}T{trailer}", &tok[..value_at]);
                    }
                }
                if tok.ends_with('%') && tok.starts_with(|c: char| c.is_ascii_digit()) {
                    return "P%".to_owned();
                }
                tok.to_owned()
            })
            .collect();
        out.push_str(&tokens.join(" "));
        out.push('\n');
    }
    out
}

/// Compares against `tests/golden/<name>.txt`, rewriting the file instead
/// when `UPDATE_GOLDEN` is set.
fn check_golden(name: &str, actual: &str) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.txt"));
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|_| panic!("missing golden file {path:?} — run once with UPDATE_GOLDEN=1"));
    assert_eq!(
        expected, actual,
        "snapshot drift in {name} (re-bless with UPDATE_GOLDEN=1 if intended)"
    );
}

#[test]
fn analyze_join_over_the_wire() {
    let server = start(
        Arc::new(VersionedDatabase::new(emp_db())),
        ServeConfig::pinned_for_tests(),
    )
    .unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let lines = client
        .send(&format!("ANALYZE {JOIN_QUERY}"))
        .unwrap()
        .expect("ANALYZE succeeds");
    let report = lines.join("\n");
    check_golden("analyze_join_over_the_wire", &mask(&report));
}
