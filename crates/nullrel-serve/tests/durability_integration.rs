//! Durability over the wire: a server with a data directory attached
//! must make acknowledged `INSERT`/`DELETE` commits survive a restart —
//! the in-process version of the CI recovery-smoke job's kill -9 — and
//! report its WAL and snapshot state through `HEALTH`.

use std::path::PathBuf;
use std::sync::Arc;

use nullrel_serve::{start, Client, ServeConfig, ServerHandle};
use nullrel_storage::{FsyncMode, LogicalOp, TableSpec, VersionedDatabase};

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "nullrel-serve-durable-{}-{}",
        name,
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Opens a durable database in `dir` (creating the EMP-like schema on
/// first boot) and serves it on a loopback port.
fn serve_durable(dir: &PathBuf) -> ServerHandle {
    let vdb = VersionedDatabase::open_with(dir, FsyncMode::Off, u64::MAX).unwrap();
    if vdb.pin().db().table_names().is_empty() {
        vdb.commit_ops(&[LogicalOp::CreateTable(TableSpec {
            name: "EMP".into(),
            columns: vec![
                nullrel_storage::ColumnSpec {
                    name: "E#".into(),
                    domain: None,
                    nullable: false,
                },
                nullrel_storage::ColumnSpec {
                    name: "NAME".into(),
                    domain: None,
                    nullable: true,
                },
            ],
            key: vec!["E#".into()],
        })])
        .unwrap();
    }
    let config = ServeConfig {
        data_dir: Some(dir.clone()),
        ..ServeConfig::pinned_for_tests()
    };
    start(Arc::new(vdb), config).expect("bind loopback server")
}

#[test]
fn acknowledged_wire_commits_survive_a_server_restart() {
    let dir = scratch("restart");

    // Boot one: create the table and insert rows over the wire — one
    // with a ni NAME, so the MAYBE band has something to say after
    // recovery too.
    let server = serve_durable(&dir);
    {
        let mut client = Client::connect(server.addr()).unwrap();
        let ack = client
            .send("INSERT EMP E#=1 NAME=\"alice\"")
            .unwrap()
            .unwrap();
        assert_eq!(ack[0], "epoch=2 rows=1");
        client.send("INSERT EMP E#=2").unwrap().unwrap();
        client
            .send("INSERT EMP E#=3 NAME=\"carol\"")
            .unwrap()
            .unwrap();
        client.send("DELETE EMP NAME = \"carol\"").unwrap().unwrap();

        // HEALTH reports the durability readings while running.
        let health = client.send("HEALTH").unwrap().unwrap();
        assert!(
            health
                .iter()
                .any(|l| l.starts_with("wal_bytes=") && !l.ends_with("=off")),
            "{health:?}"
        );
        assert!(
            health.iter().any(|l| l.starts_with("last_snapshot_epoch=")),
            "{health:?}"
        );
    }
    let epoch_before = server.database().epoch();
    server.stop();

    // Boot two over the same directory: recovery replays the WAL. The
    // client lives in a block so its socket closes before `stop()` —
    // a worker parked in `read_line` only notices shutdown once its
    // connection ends.
    let server = serve_durable(&dir);
    assert_eq!(server.database().epoch(), epoch_before);
    {
        let mut client = Client::connect(server.addr()).unwrap();
        let sure = client
            .send("QUEL range of e is EMP retrieve (e.E#, e.NAME) where e.NAME = \"alice\"")
            .unwrap()
            .unwrap();
        assert_eq!(sure[0], "rows=1", "{sure:?}");
        // The ni-NAME row (E# = 2) qualifies possibly-but-not-surely —
        // recovery preserved the MAYBE band.
        let maybe = client
            .send("MAYBE range of e is EMP retrieve (e.E#) where e.NAME = \"alice\"")
            .unwrap()
            .unwrap();
        assert_eq!(maybe[0], "rows=1", "{maybe:?}");
        assert!(maybe.contains(&"2".to_owned()), "{maybe:?}");
        // carol stays deleted.
        let gone = client
            .send("QUEL range of e is EMP retrieve (e.E#) where e.NAME = \"carol\"")
            .unwrap()
            .unwrap();
        assert_eq!(gone[0], "rows=0", "{gone:?}");
    }
    server.stop();

    let _ = std::fs::remove_dir_all(&dir);
}
