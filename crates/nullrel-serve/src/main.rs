//! The `nullrel-serve` binary: loads an optional schema/data script,
//! binds the configured address, and serves until interrupted.
//!
//! ```text
//! NULLREL_SERVE_ADDR=127.0.0.1:7878 NULLREL_SERVE_THREADS=8 nullrel-serve [script.txt]
//! ```
//!
//! Each optional argument is a `NAME=FILE` pair loading one relation in
//! the `nullrel-storage` loader's whitespace-table format (header line of
//! column names, `-` for `ni`) as table `NAME`. Without arguments, the
//! server starts on the paper's Table II `EMP` example so there is
//! something to query.

use std::sync::Arc;

use nullrel_core::value::Value;
use nullrel_storage::{Database, SchemaBuilder, VersionedDatabase};

fn table_ii_db() -> Database {
    let mut db = Database::new();
    db.create_table(
        SchemaBuilder::new("EMP")
            .required_column("E#")
            .column("NAME")
            .column("SEX")
            .column("MGR#")
            .column("TEL#")
            .key(&["E#"]),
    )
    .expect("seed schema");
    let u = db.universe().clone();
    let t = db.table_mut("EMP").expect("seed table");
    for (e, n, s, m) in [
        (1120, "SMITH", "M", 2235),
        (4335, "BROWN", "F", 2235),
        (8799, "GREEN", "M", 1255),
    ] {
        t.insert_named(
            &u,
            &[
                ("E#", Value::int(e)),
                ("NAME", Value::str(n)),
                ("SEX", Value::str(s)),
                ("MGR#", Value::int(m)),
            ],
        )
        .expect("seed row");
    }
    db
}

fn load_table(db: &mut Database, spec: &str) {
    let (name, path) = spec
        .split_once('=')
        .unwrap_or_else(|| panic!("expected NAME=FILE, got {spec}"));
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    let relation = nullrel_storage::loader::parse_relation(db.universe_mut(), &text)
        .unwrap_or_else(|e| panic!("cannot parse {path}: {e}"));
    let mut builder = SchemaBuilder::new(name);
    for attr in relation.attrs() {
        let column = db.universe().name(*attr).expect("just interned").to_owned();
        builder = builder.column(column);
    }
    db.create_table(builder)
        .unwrap_or_else(|e| panic!("cannot create {name}: {e}"));
    let table = db.table_mut(name).expect("just created");
    for tuple in relation.tuples() {
        table
            .insert(tuple.clone())
            .unwrap_or_else(|e| panic!("cannot load {name}: {e}"));
    }
}

fn seed_db(specs: &[String]) -> Database {
    if specs.is_empty() {
        table_ii_db()
    } else {
        let mut db = Database::new();
        for spec in specs {
            load_table(&mut db, spec);
        }
        db
    }
}

fn main() {
    let config = nullrel_serve::ServeConfig::from_env();
    let specs: Vec<String> = std::env::args().skip(1).collect();
    let vdb = match &config.data_dir {
        // Durable: recover whatever the directory holds (snapshot + WAL
        // replay). Seed the example tables only into a *fresh* directory —
        // a recovered database already has its state, possibly evolved
        // far from the seed.
        Some(dir) => {
            let vdb = VersionedDatabase::open(dir)
                .unwrap_or_else(|e| panic!("cannot open data dir {}: {e}", dir.display()));
            if vdb.pin().db().table_names().is_empty() {
                let seed = seed_db(&specs);
                vdb.commit(move |db| {
                    *db = seed;
                    Ok(())
                })
                .expect("seed durable database");
            }
            Arc::new(vdb)
        }
        None => Arc::new(VersionedDatabase::new(seed_db(&specs))),
    };
    let durable = vdb.durability_status();
    let handle = nullrel_serve::start(vdb, config).expect("bind query service");
    eprintln!(
        "nullrel-serve listening on {} ({} tables, epoch {}{})",
        handle.addr(),
        handle.database().pin().db().table_names().len(),
        handle.database().epoch(),
        match &durable {
            Some(d) => format!(", durable at {}", d.data_dir.display()),
            None => String::new(),
        }
    );
    // Serve until killed: the accept loop and workers own the process.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
