//! An s-expression surface for the generalized relational algebra, so
//! clients can run operators QUEL does not reach (set operators, division,
//! the union-join) over the wire.
//!
//! Grammar (attribute names resolve against the snapshot's universe):
//!
//! ```text
//! expr ::= (scan NAME)
//!        | (select pred expr)
//!        | (project (ATTR…) expr)
//!        | (product expr expr)
//!        | (union expr expr)
//!        | (diff expr expr)
//!        | (ujoin (ATTR…) expr expr)
//!        | (divide (ATTR…) expr expr)
//! pred ::= (and pred pred) | (or pred pred) | (not pred)
//!        | (op operand operand)            op ∈ { = != < <= > >= }
//! operand ::= "string" | integer | ATTR
//! ```
//!
//! A comparison with two attribute operands becomes an attribute-attribute
//! predicate; one constant operand becomes attribute-constant (flipping
//! the operator when the constant is on the left).

use std::collections::BTreeMap;

use nullrel_core::algebra::Expr;
use nullrel_core::predicate::Predicate;
use nullrel_core::tvl::CompareOp;
use nullrel_core::universe::{attr_set, AttrId, Universe};
use nullrel_core::value::Value;

/// One s-expression node: an atom or a parenthesized list.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Sexp {
    Atom(String),
    Str(String),
    List(Vec<Sexp>),
}

fn tokenize(text: &str) -> Result<Vec<Sexp>, String> {
    let mut stack: Vec<Vec<Sexp>> = vec![Vec::new()];
    let mut chars = text.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '(' => stack.push(Vec::new()),
            ')' => {
                let done = stack.pop().ok_or("unbalanced ')'")?;
                stack
                    .last_mut()
                    .ok_or("unbalanced ')'")?
                    .push(Sexp::List(done));
            }
            '"' => {
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('"') => break,
                        Some(ch) => s.push(ch),
                        None => return Err("unterminated string".to_owned()),
                    }
                }
                stack
                    .last_mut()
                    .expect("stack never empty")
                    .push(Sexp::Str(s));
            }
            c if c.is_whitespace() => {}
            c => {
                let mut atom = String::new();
                atom.push(c);
                while let Some(&n) = chars.peek() {
                    if n.is_whitespace() || n == '(' || n == ')' || n == '"' {
                        break;
                    }
                    atom.push(n);
                    chars.next();
                }
                stack
                    .last_mut()
                    .expect("stack never empty")
                    .push(Sexp::Atom(atom));
            }
        }
    }
    if stack.len() != 1 {
        return Err("unbalanced '('".to_owned());
    }
    Ok(stack.pop().expect("checked"))
}

/// Parses an algebra expression from its s-expression text. Attribute
/// names resolve against `universe` (the snapshot's catalog universe).
pub fn parse_expr(text: &str, universe: &Universe) -> Result<Expr, String> {
    let mut top = tokenize(text)?;
    match (top.pop(), top.is_empty()) {
        (Some(node), true) => build_expr(&node, universe),
        _ => Err("expected exactly one expression".to_owned()),
    }
}

fn build_expr(node: &Sexp, universe: &Universe) -> Result<Expr, String> {
    let items = match node {
        Sexp::List(items) if !items.is_empty() => items,
        _ => return Err("expected an (operator …) form".to_owned()),
    };
    let head = match &items[0] {
        Sexp::Atom(a) => a.to_ascii_lowercase(),
        _ => return Err("operator must be an atom".to_owned()),
    };
    let arity = |n: usize| {
        if items.len() == n + 1 {
            Ok(())
        } else {
            Err(format!("{head} takes {n} arguments"))
        }
    };
    match head.as_str() {
        "scan" => {
            arity(1)?;
            match &items[1] {
                Sexp::Atom(name) => Ok(Expr::named(name)),
                _ => Err("scan takes a relation name".to_owned()),
            }
        }
        "select" => {
            arity(2)?;
            let pred = build_pred(&items[1], universe)?;
            Ok(build_expr(&items[2], universe)?.select(pred))
        }
        "project" => {
            arity(2)?;
            let attrs = attr_list(&items[1], universe)?;
            Ok(build_expr(&items[2], universe)?.project(attr_set(attrs)))
        }
        "product" | "union" | "diff" => {
            arity(2)?;
            let left = build_expr(&items[1], universe)?;
            let right = build_expr(&items[2], universe)?;
            Ok(match head.as_str() {
                "product" => left.product(right),
                "union" => left.union(right),
                _ => left.difference(right),
            })
        }
        "ujoin" | "divide" => {
            arity(3)?;
            let attrs = attr_set(attr_list(&items[1], universe)?);
            let left = build_expr(&items[2], universe)?;
            let right = build_expr(&items[3], universe)?;
            Ok(if head == "ujoin" {
                left.union_join(right, attrs)
            } else {
                left.divide(attrs, right)
            })
        }
        other => Err(format!("unknown operator {other}")),
    }
}

fn attr_list(node: &Sexp, universe: &Universe) -> Result<Vec<AttrId>, String> {
    let items = match node {
        Sexp::List(items) => items.as_slice(),
        single => std::slice::from_ref(single),
    };
    items
        .iter()
        .map(|item| match item {
            Sexp::Atom(name) => lookup(name, universe),
            _ => Err("attribute lists hold bare names".to_owned()),
        })
        .collect()
}

fn lookup(name: &str, universe: &Universe) -> Result<AttrId, String> {
    universe
        .lookup(name)
        .ok_or_else(|| format!("unknown attribute {name}"))
}

fn build_pred(node: &Sexp, universe: &Universe) -> Result<Predicate, String> {
    let items = match node {
        Sexp::List(items) if !items.is_empty() => items,
        _ => return Err("expected a (predicate …) form".to_owned()),
    };
    let head = match &items[0] {
        Sexp::Atom(a) => a.to_ascii_lowercase(),
        _ => return Err("predicate operator must be an atom".to_owned()),
    };
    match head.as_str() {
        "and" | "or" => {
            if items.len() != 3 {
                return Err(format!("{head} takes 2 predicates"));
            }
            let left = build_pred(&items[1], universe)?;
            let right = build_pred(&items[2], universe)?;
            Ok(if head == "and" {
                left.and(right)
            } else {
                left.or(right)
            })
        }
        "not" => {
            if items.len() != 2 {
                return Err("not takes 1 predicate".to_owned());
            }
            Ok(build_pred(&items[1], universe)?.negate())
        }
        op => {
            let op = compare_op(op)?;
            if items.len() != 3 {
                return Err("comparisons take 2 operands".to_owned());
            }
            comparison(op, &items[1], &items[2], universe)
        }
    }
}

fn compare_op(op: &str) -> Result<CompareOp, String> {
    Ok(match op {
        "=" => CompareOp::Eq,
        "!=" => CompareOp::Ne,
        "<" => CompareOp::Lt,
        "<=" => CompareOp::Le,
        ">" => CompareOp::Gt,
        ">=" => CompareOp::Ge,
        other => return Err(format!("unknown comparison {other}")),
    })
}

fn flip(op: CompareOp) -> CompareOp {
    match op {
        CompareOp::Lt => CompareOp::Gt,
        CompareOp::Le => CompareOp::Ge,
        CompareOp::Gt => CompareOp::Lt,
        CompareOp::Ge => CompareOp::Le,
        same => same,
    }
}

enum Operand {
    Attr(AttrId),
    Const(Value),
}

fn operand(node: &Sexp, universe: &Universe) -> Result<Operand, String> {
    match node {
        Sexp::Str(s) => Ok(Operand::Const(Value::str(s))),
        Sexp::Atom(a) => {
            if let Ok(n) = a.parse::<i64>() {
                Ok(Operand::Const(Value::int(n)))
            } else {
                lookup(a, universe).map(Operand::Attr)
            }
        }
        Sexp::List(_) => Err("operands are attributes, strings, or integers".to_owned()),
    }
}

fn comparison(
    op: CompareOp,
    left: &Sexp,
    right: &Sexp,
    universe: &Universe,
) -> Result<Predicate, String> {
    match (operand(left, universe)?, operand(right, universe)?) {
        (Operand::Attr(a), Operand::Attr(b)) => Ok(Predicate::attr_attr(a, op, b)),
        (Operand::Attr(a), Operand::Const(v)) => Ok(Predicate::attr_const(a, op, v)),
        (Operand::Const(v), Operand::Attr(a)) => Ok(Predicate::attr_const(a, flip(op), v)),
        (Operand::Const(_), Operand::Const(_)) => {
            Err("comparisons need at least one attribute".to_owned())
        }
    }
}

/// Renders a result relation for the wire: the first line is `rows=<n>`,
/// then one line per tuple with `ATTR=value` cells in attribute order
/// (missing cells are `ni` and omitted, per the x-relation reading).
pub fn render_rows(tuples: &[nullrel_core::tuple::Tuple], universe: &Universe) -> Vec<String> {
    let mut lines = Vec::with_capacity(tuples.len() + 1);
    lines.push(format!("rows={}", tuples.len()));
    for t in tuples {
        let mut cells: BTreeMap<AttrId, String> = BTreeMap::new();
        for (attr, value) in t.cells() {
            let name = universe
                .name(attr)
                .map(str::to_owned)
                .unwrap_or_else(|_| format!("#{}", attr.index()));
            cells.insert(attr, format!("{name}={value}"));
        }
        let rendered: Vec<String> = cells.into_values().collect();
        lines.push(rendered.join(" "));
    }
    lines
}

#[cfg(test)]
mod tests {
    use super::*;

    fn universe() -> Universe {
        let mut u = Universe::new();
        u.intern("S#");
        u.intern("P#");
        u
    }

    #[test]
    fn scans_selects_and_projections_parse() {
        let u = universe();
        let expr = parse_expr(
            "(project (S#) (select (and (= P# \"p1\") (!= S# \"s9\")) (scan PS)))",
            &u,
        )
        .unwrap();
        let rendered = expr.explain(&u);
        assert!(rendered.contains("PS"), "plan: {rendered}");
    }

    #[test]
    fn set_operators_and_division_parse() {
        let u = universe();
        for text in [
            "(union (scan A) (scan B))",
            "(diff (scan A) (scan B))",
            "(product (scan A) (scan B))",
            "(ujoin (S#) (scan A) (scan B))",
            "(divide (P#) (scan PS) (project (P#) (scan PS)))",
        ] {
            parse_expr(text, &u).unwrap_or_else(|e| panic!("{text}: {e}"));
        }
    }

    #[test]
    fn constants_flip_onto_the_attribute_side() {
        let u = universe();
        let left = parse_expr("(select (< S# 5) (scan PS))", &u).unwrap();
        let right = parse_expr("(select (> 5 S#) (scan PS))", &u).unwrap();
        assert_eq!(left.explain(&u), right.explain(&u));
    }

    #[test]
    fn malformed_expressions_error_out() {
        let u = universe();
        for text in [
            "",
            "(scan)",
            "(scan A extra)",
            "(select (= S# 1))",
            "(frobnicate (scan A))",
            "(select (= \"a\" \"b\") (scan A))",
            "(select (= NOPE 1) (scan A))",
            "((scan A))",
            "(scan A",
            "(scan \"A)",
        ] {
            assert!(parse_expr(text, &u).is_err(), "should fail: {text}");
        }
    }
}
