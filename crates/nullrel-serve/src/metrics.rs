//! The query service's metric statics: connection/session gauges,
//! per-command latency histograms, and prepared-cache counters — all
//! registered into the process-wide `nullrel-obs` registry so the wire's
//! `METRICS` command (and any scraper of `render_prometheus`) sees them
//! next to the engine catalog.

use std::sync::OnceLock;
use std::time::Instant;

use nullrel_obs::metrics::{Counter, Gauge, Histogram};

/// When [`crate::start`] brought the service up — the `HEALTH` command's
/// uptime reference.
static STARTED: OnceLock<Instant> = OnceLock::new();

/// Stamps the server-start instant (first call wins; later servers in the
/// same process — tests — keep the original epoch, so uptime stays
/// monotonic).
pub fn mark_started() {
    let _ = STARTED.set(Instant::now());
}

/// Whole seconds since [`mark_started`]; `0` before any server started.
pub fn uptime_s() -> u64 {
    STARTED.get().map_or(0, |t| t.elapsed().as_secs())
}

/// Connections accepted since process start.
pub static CONNECTIONS: Counter = Counter::new(
    "nullrel_serve_connections_total",
    "TCP connections accepted by the query service",
);

/// Currently open sessions.
pub static ACTIVE_SESSIONS: Gauge = Gauge::new(
    "nullrel_serve_active_sessions",
    "Currently open query-service sessions",
);

/// Requests received (every parsed or unparsable line counts).
pub static REQUESTS: Counter = Counter::new(
    "nullrel_serve_requests_total",
    "Requests received by the query service",
);

/// Requests answered with `ERR`.
pub static ERRORS: Counter = Counter::new(
    "nullrel_serve_errors_total",
    "Requests the query service answered with ERR",
);

/// Prepared-cache hits (a QUEL/MAYBE text replayed without re-planning).
pub static PREPARED_HITS: Counter = Counter::new(
    "nullrel_serve_prepared_hits_total",
    "Prepared-query cache hits",
);

/// Prepared-cache misses (first sight of a text, or post-eviction).
pub static PREPARED_MISSES: Counter = Counter::new(
    "nullrel_serve_prepared_misses_total",
    "Prepared-query cache misses",
);

/// Prepared entries dropped because the schema evolved under them.
pub static PREPARED_INVALIDATIONS: Counter = Counter::new(
    "nullrel_serve_prepared_invalidations_total",
    "Prepared-query cache entries invalidated by schema evolution",
);

/// Sessions that ended without `QUIT` — the client vanished mid-stream
/// (EOF, read error, or a response write failing).
pub static DISCONNECTS: Counter = Counter::new(
    "nullrel_serve_disconnects_total",
    "Sessions ended abruptly, without QUIT",
);

/// Pinned sessions force-re-pinned past the staleness bound.
pub static STALE_REPINS: Counter = Counter::new(
    "nullrel_serve_stale_repins_total",
    "Pinned sessions re-pinned forward past the staleness bound",
);

/// `QUEL` request latency.
pub static QUEL_LATENCY: Histogram = Histogram::new(
    "nullrel_serve_quel_latency_us",
    "QUEL request latency, microseconds",
);

/// `MAYBE` request latency.
pub static MAYBE_LATENCY: Histogram = Histogram::new(
    "nullrel_serve_maybe_latency_us",
    "MAYBE request latency, microseconds",
);

/// `EXPR`/`EXPRMAYBE` request latency.
pub static EXPR_LATENCY: Histogram = Histogram::new(
    "nullrel_serve_expr_latency_us",
    "EXPR/EXPRMAYBE request latency, microseconds",
);

/// `EXPLAIN` request latency.
pub static EXPLAIN_LATENCY: Histogram = Histogram::new(
    "nullrel_serve_explain_latency_us",
    "EXPLAIN request latency, microseconds",
);

/// `ANALYZE` request latency.
pub static ANALYZE_LATENCY: Histogram = Histogram::new(
    "nullrel_serve_analyze_latency_us",
    "EXPLAIN ANALYZE request latency, microseconds",
);

/// `INSERT`/`DELETE` (commit) request latency.
pub static WRITE_LATENCY: Histogram = Histogram::new(
    "nullrel_serve_write_latency_us",
    "INSERT/DELETE request latency, microseconds",
);

/// Control-command (`PIN`/`UNPIN`/`EPOCH`/`METRICS`) latency.
pub static CONTROL_LATENCY: Histogram = Histogram::new(
    "nullrel_serve_control_latency_us",
    "Control command latency, microseconds",
);

/// The latency histogram for one command class (see
/// [`crate::protocol::Request::command_name`]).
pub fn command_latency(command: &str) -> &'static Histogram {
    match command {
        "quel" => &QUEL_LATENCY,
        "maybe" => &MAYBE_LATENCY,
        "expr" => &EXPR_LATENCY,
        "explain" => &EXPLAIN_LATENCY,
        "analyze" => &ANALYZE_LATENCY,
        "write" => &WRITE_LATENCY,
        _ => &CONTROL_LATENCY,
    }
}

/// Registers every serve metric (and the storage layer's commit counter)
/// with the process registry. Idempotent; called from server start and
/// from the tests that scrape `METRICS`.
pub fn register() {
    use nullrel_obs::metrics as reg;
    reg::register_counter(&CONNECTIONS);
    reg::register_gauge(&ACTIVE_SESSIONS);
    reg::register_counter(&REQUESTS);
    reg::register_counter(&ERRORS);
    reg::register_counter(&PREPARED_HITS);
    reg::register_counter(&PREPARED_MISSES);
    reg::register_counter(&PREPARED_INVALIDATIONS);
    reg::register_counter(&DISCONNECTS);
    reg::register_counter(&STALE_REPINS);
    reg::register_histogram(&QUEL_LATENCY);
    reg::register_histogram(&MAYBE_LATENCY);
    reg::register_histogram(&EXPR_LATENCY);
    reg::register_histogram(&EXPLAIN_LATENCY);
    reg::register_histogram(&ANALYZE_LATENCY);
    reg::register_histogram(&WRITE_LATENCY);
    reg::register_histogram(&CONTROL_LATENCY);
    nullrel_storage::version::register_metrics();
}
