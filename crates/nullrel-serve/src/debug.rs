//! The wire-served debug surfaces: renderers behind `TOP`, `SLOW`,
//! `TRACE LAST`, `HEALTH`, and `RESET STATS`.
//!
//! Everything here reads the process-wide `nullrel-obs` flight recorder
//! and slow-query log — the same state an embedded engine sees — and
//! renders it as plain `OK`-framed text, so an operator with `nc` and no
//! tooling can answer *what is this server doing* (`HEALTH`), *which
//! query shapes dominate* (`TOP`), *what ran slowly just now* (`SLOW`),
//! and *where did the time go inside it* (`TRACE LAST`).
//!
//! Durations are always rendered as `<n>us` so test harnesses can mask
//! them with one token rule; counts, fingerprints, and plan renderings
//! are deterministic for a fixed request sequence.

use nullrel_obs::recorder;

/// Default entry count for `TOP` and `SLOW` when the client sends none.
pub const DEFAULT_DEBUG_ENTRIES: usize = 10;

fn fmt_us(us: u64) -> String {
    format!("{us}us")
}

/// Renders the `TOP [n]` view: the workload log's top shapes by
/// cumulative wall-clock, with per-shape latency quantiles and the last
/// physical plan seen for the shape.
pub fn render_top(n: Option<usize>) -> Vec<String> {
    let n = n.unwrap_or(DEFAULT_DEBUG_ENTRIES);
    let stats = recorder::stats();
    let entries = recorder::workload_top(n);
    let mut lines = vec![format!(
        "shapes={} tracked={} evicted={}",
        entries.len(),
        stats.fingerprints,
        stats.evicted
    )];
    for (i, e) in entries.iter().enumerate() {
        lines.push(format!(
            "#{} count={} total={} p50={} p95={} p99={} max={} rows={} fp={:016x}",
            i + 1,
            e.count,
            fmt_us(e.total_us),
            fmt_us(e.p50_us()),
            fmt_us(e.p95_us()),
            fmt_us(e.p99_us()),
            fmt_us(e.max_us),
            e.rows_out,
            e.fingerprint
        ));
        lines.push(format!("  text: {}", e.text));
        for plan_line in e.last_plan.lines() {
            lines.push(format!("  plan: {plan_line}"));
        }
    }
    lines
}

/// Renders the `SLOW [n]` view: the slowest flight records currently in
/// the ring, one record per block, slowest first.
pub fn render_slow(n: Option<usize>) -> Vec<String> {
    let n = n.unwrap_or(DEFAULT_DEBUG_ENTRIES);
    let records = recorder::slowest(n);
    let mut lines = vec![format!("records={}", records.len())];
    for (i, r) in records.iter().enumerate() {
        let epoch = r
            .epoch
            .map(|e| e.to_string())
            .unwrap_or_else(|| "-".to_owned());
        let q_error = r
            .q_error
            .map(|q| format!("{q:.2}"))
            .unwrap_or_else(|| "-".to_owned());
        lines.push(format!(
            "#{} total={} band={} rows={}->{} batches={} par={}/{} mem={}r/{}B \
             prepared={} reopts={} q-err={} epoch={} fp={:016x}",
            i + 1,
            fmt_us(r.total_us),
            r.band,
            r.rows_in,
            r.rows_out,
            r.batches,
            r.par_granted,
            r.par_used,
            r.mem_rows,
            r.mem_bytes,
            r.prepared_hit,
            r.reopts,
            q_error,
            epoch,
            r.fingerprint
        ));
        lines.push(format!(
            "  phases: parse={} plan={} optimize={} compile={} run={}",
            fmt_us(r.phase_us[0]),
            fmt_us(r.phase_us[1]),
            fmt_us(r.phase_us[2]),
            fmt_us(r.phase_us[3]),
            fmt_us(r.phase_us[4])
        ));
        lines.push(format!("  text: {}", r.text));
    }
    lines
}

/// Renders the `TRACE LAST` view: the most recent slow-query trace in
/// chrome://tracing JSON. Errors with an arming hint when the slow log
/// holds nothing (the trace machinery is opt-in, unlike the recorder).
pub fn render_trace_last() -> Result<Vec<String>, String> {
    match nullrel_obs::slow_log().latest() {
        Some(trace) => Ok(trace
            .chrome_trace_json()
            .lines()
            .map(str::to_owned)
            .collect()),
        None => Err(
            "no trace captured; set NULLREL_SLOW_MS (0 traces every query) and rerun".to_owned(),
        ),
    }
}

/// Renders the `HEALTH` view: process uptime, the served epoch, live
/// sessions, the slow-log arming threshold, recorder health, and the
/// durability readings (`off` when the server runs purely in memory).
pub fn render_health(
    epoch: u64,
    durability: Option<&nullrel_storage::DurabilityStatus>,
) -> Vec<String> {
    let stats = recorder::stats();
    let slow_ms = nullrel_obs::slow_query_ms()
        .map(|ms| ms.to_string())
        .unwrap_or_else(|| "off".to_owned());
    let (wal_bytes, last_snapshot_epoch) = match durability {
        Some(d) => (d.wal_bytes.to_string(), d.last_snapshot_epoch.to_string()),
        None => ("off".to_owned(), "off".to_owned()),
    };
    vec![
        format!("uptime_s={}", crate::metrics::uptime_s()),
        format!("epoch={epoch}"),
        format!("sessions={}", crate::metrics::ACTIVE_SESSIONS.get()),
        format!("slow_ms={slow_ms}"),
        format!("recorder={}", if stats.enabled { "on" } else { "off" }),
        format!("recorded={}", stats.recorded),
        format!("ring={}", stats.ring_len),
        format!("fingerprints={}", stats.fingerprints),
        format!("evicted={}", stats.evicted),
        format!("slow_traces={}", nullrel_obs::slow_log().len()),
        format!("wal_bytes={wal_bytes}"),
        format!("last_snapshot_epoch={last_snapshot_epoch}"),
    ]
}

/// Executes `RESET STATS`: clears the flight ring, the workload log, and
/// the slow-query trace ring. Lifetime counters (`recorded`, `evicted`)
/// survive, as do queries currently in flight — they land in the emptied
/// structures when they complete (including the `RESET STATS` request's
/// own record, which finishes after the clear).
pub fn reset_stats() -> Vec<String> {
    recorder::reset();
    nullrel_obs::slow_log().clear();
    vec!["cleared=ring,workload,slowlog".to_owned()]
}

#[cfg(test)]
mod tests {
    use super::*;

    // Renderer shape checks only — end-to-end content is covered by the
    // wire golden test (`tests/debug_wire_golden.rs`), which owns its
    // process and can therefore script the recorder deterministically.

    #[test]
    fn health_renders_every_field() {
        let lines = render_health(7, None);
        let keys = [
            "uptime_s=",
            "epoch=7",
            "sessions=",
            "slow_ms=",
            "recorder=",
            "recorded=",
            "ring=",
            "fingerprints=",
            "evicted=",
            "slow_traces=",
            "wal_bytes=off",
            "last_snapshot_epoch=off",
        ];
        assert_eq!(lines.len(), keys.len());
        for (line, key) in lines.iter().zip(keys) {
            assert!(line.starts_with(key), "{line} should start with {key}");
        }
    }

    #[test]
    fn health_reports_durability_when_attached() {
        let status = nullrel_storage::DurabilityStatus {
            wal_bytes: 321,
            last_snapshot_epoch: 5,
            data_dir: std::path::PathBuf::from("/tmp/x"),
        };
        let lines = render_health(7, Some(&status));
        assert!(lines.contains(&"wal_bytes=321".to_owned()));
        assert!(lines.contains(&"last_snapshot_epoch=5".to_owned()));
    }

    #[test]
    fn top_and_slow_lead_with_counts() {
        assert!(render_top(Some(0))[0].starts_with("shapes=0"));
        assert_eq!(render_slow(Some(0))[0], "records=0");
    }
}
