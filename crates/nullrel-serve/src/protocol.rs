//! The wire protocol: newline-delimited requests, line-counted responses.
//!
//! A session is a plain TCP byte stream. The client sends one request per
//! line; the server answers every request with exactly one response:
//!
//! ```text
//! OK <n>\n <line>\n × n      -- success, n payload lines follow
//! ERR <message>\n            -- failure, message is always one line
//! BYE\n                      -- acknowledges QUIT; the server closes
//! ```
//!
//! The line count makes responses self-delimiting, so a client never has
//! to sniff payload shapes — it reads the header, then exactly `n` lines.
//!
//! ## Commands
//!
//! ```text
//! QUEL <query>                  sure band (TRUE) of a QUEL query
//! MAYBE <query>                 maybe band (ni) of a QUEL query
//! EXPR <s-expression>           sure band of an algebra expression
//! EXPRMAYBE <s-expression>      maybe band of an algebra expression
//! EXPLAIN <query>               optimizer + physical plan report
//! ANALYZE <query>               EXPLAIN ANALYZE: timed instrumented run
//! INSERT <table> <col>=<val>…   commit one row (quoted strings, ints; omitted columns are ni)
//! DELETE <table> <col> <op> <val>   commit deletions matching one comparison
//! PIN                           freeze the session on the current snapshot
//! UNPIN                         follow the latest committed snapshot again
//! EPOCH                         report current/pinned epochs + schema version
//! METRICS                       the process metrics, Prometheus format
//! TOP [n]                       workload log: top query shapes by total time
//! SLOW [n]                      flight ring: slowest recent queries
//! TRACE LAST                    latest slow-query trace, chrome://tracing JSON
//! HEALTH                        uptime, epoch, sessions, recorder health
//! RESET STATS                   clear the flight ring, workload log, slow log
//! QUIT                          end the session
//! ```
//!
//! Verbs are case-insensitive; everything after the verb is passed through
//! verbatim (queries may contain any byte but `\n`).

use std::io::{self, Write};

/// One parsed client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// `QUEL <query>` — sure band.
    Quel(String),
    /// `MAYBE <query>` — maybe band.
    Maybe(String),
    /// `EXPR <s-expression>` — sure band of an algebra expression.
    Expr(String),
    /// `EXPRMAYBE <s-expression>` — maybe band of an algebra expression.
    ExprMaybe(String),
    /// `EXPLAIN <query>`.
    Explain(String),
    /// `ANALYZE <query>` — EXPLAIN ANALYZE.
    Analyze(String),
    /// `INSERT <table> <col>=<val> …`.
    Insert(String),
    /// `DELETE <table> <col> <op> <val>`.
    Delete(String),
    /// `PIN`.
    Pin,
    /// `UNPIN`.
    Unpin,
    /// `EPOCH`.
    Epoch,
    /// `METRICS`.
    Metrics,
    /// `TOP [n]` — the workload log's top shapes by cumulative time.
    Top(Option<usize>),
    /// `SLOW [n]` — the slowest flight records currently retained.
    Slow(Option<usize>),
    /// `TRACE LAST` — the latest slow-query trace as chrome JSON.
    TraceLast,
    /// `HEALTH` — process and recorder health.
    Health,
    /// `RESET STATS` — clear the flight ring, workload log, and slow log.
    ResetStats,
    /// `QUIT`.
    Quit,
}

impl Request {
    /// Parses one request line. Empty lines and unknown verbs are errors
    /// (reported to the client as `ERR`, never dropped silently).
    pub fn parse(line: &str) -> Result<Request, String> {
        let line = line.trim();
        if line.is_empty() {
            return Err("empty request".to_owned());
        }
        let (verb, rest) = match line.find(char::is_whitespace) {
            Some(at) => (&line[..at], line[at..].trim_start()),
            None => (line, ""),
        };
        let arg = |name: &str| {
            if rest.is_empty() {
                Err(format!("{name} needs an argument"))
            } else {
                Ok(rest.to_owned())
            }
        };
        let bare = |req: Request| {
            if rest.is_empty() {
                Ok(req)
            } else {
                Err(format!("{verb} takes no argument"))
            }
        };
        let top_n = |name: &str, make: fn(Option<usize>) -> Request| {
            if rest.is_empty() {
                Ok(make(None))
            } else {
                rest.parse::<usize>()
                    .map(|n| make(Some(n)))
                    .map_err(|_| format!("{name} takes an optional count, got {rest}"))
            }
        };
        match verb.to_ascii_uppercase().as_str() {
            "QUEL" => arg("QUEL").map(Request::Quel),
            "MAYBE" => arg("MAYBE").map(Request::Maybe),
            "EXPR" => arg("EXPR").map(Request::Expr),
            "EXPRMAYBE" => arg("EXPRMAYBE").map(Request::ExprMaybe),
            "EXPLAIN" => arg("EXPLAIN").map(Request::Explain),
            "ANALYZE" => arg("ANALYZE").map(Request::Analyze),
            "INSERT" => arg("INSERT").map(Request::Insert),
            "DELETE" => arg("DELETE").map(Request::Delete),
            "PIN" => bare(Request::Pin),
            "UNPIN" => bare(Request::Unpin),
            "EPOCH" => bare(Request::Epoch),
            "METRICS" => bare(Request::Metrics),
            "TOP" => top_n("TOP", Request::Top),
            "SLOW" => top_n("SLOW", Request::Slow),
            "TRACE" => {
                if rest.eq_ignore_ascii_case("LAST") {
                    Ok(Request::TraceLast)
                } else {
                    Err("expected TRACE LAST".to_owned())
                }
            }
            "HEALTH" => bare(Request::Health),
            "RESET" => {
                if rest.eq_ignore_ascii_case("STATS") {
                    Ok(Request::ResetStats)
                } else {
                    Err("expected RESET STATS".to_owned())
                }
            }
            "QUIT" => bare(Request::Quit),
            other => Err(format!("unknown command {other}")),
        }
    }

    /// The command's label in the per-command latency metrics.
    pub fn command_name(&self) -> &'static str {
        match self {
            Request::Quel(_) => "quel",
            Request::Maybe(_) => "maybe",
            Request::Expr(_) | Request::ExprMaybe(_) => "expr",
            Request::Explain(_) => "explain",
            Request::Analyze(_) => "analyze",
            Request::Insert(_) | Request::Delete(_) => "write",
            Request::Pin
            | Request::Unpin
            | Request::Epoch
            | Request::Metrics
            | Request::Top(_)
            | Request::Slow(_)
            | Request::TraceLast
            | Request::Health
            | Request::ResetStats
            | Request::Quit => "control",
        }
    }
}

/// Writes an `OK` response: the header with the line count, then the
/// payload lines. Interior newlines in payload entries are split into
/// further lines so the advertised count always matches what is sent.
pub fn write_ok(out: &mut impl Write, lines: &[String]) -> io::Result<()> {
    let flat: Vec<&str> = lines.iter().flat_map(|l| l.split('\n')).collect();
    // One buffered write per response: a multi-write reply interacts with
    // Nagle's algorithm and delayed ACKs (the second small segment waits
    // for the first's ACK), turning sub-millisecond queries into ~40ms
    // round trips.
    let mut buf = format!("OK {}\n", flat.len());
    for line in flat {
        buf.push_str(line);
        buf.push('\n');
    }
    out.write_all(buf.as_bytes())?;
    out.flush()
}

/// Writes an `ERR` response; the message is flattened to one line.
pub fn write_err(out: &mut impl Write, message: &str) -> io::Result<()> {
    let flat = message.replace(['\n', '\r'], " ");
    out.write_all(format!("ERR {flat}\n").as_bytes())?;
    out.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verbs_parse_case_insensitively_with_verbatim_arguments() {
        assert_eq!(
            Request::parse("quel range of e is EMP retrieve (e.NAME)").unwrap(),
            Request::Quel("range of e is EMP retrieve (e.NAME)".to_owned())
        );
        assert_eq!(
            Request::parse("  MAYBE x  ").unwrap(),
            Request::Maybe("x".to_owned())
        );
        assert_eq!(Request::parse("PIN").unwrap(), Request::Pin);
        assert_eq!(Request::parse("metrics").unwrap(), Request::Metrics);
        assert_eq!(Request::parse("QUIT").unwrap(), Request::Quit);
    }

    #[test]
    fn debug_verbs_parse_with_optional_counts() {
        assert_eq!(Request::parse("TOP").unwrap(), Request::Top(None));
        assert_eq!(Request::parse("top 5").unwrap(), Request::Top(Some(5)));
        assert_eq!(Request::parse("SLOW 12").unwrap(), Request::Slow(Some(12)));
        assert_eq!(Request::parse("trace last").unwrap(), Request::TraceLast);
        assert_eq!(Request::parse("HEALTH").unwrap(), Request::Health);
        assert_eq!(Request::parse("reset stats").unwrap(), Request::ResetStats);
        assert!(Request::parse("TOP five").is_err(), "non-numeric count");
        assert!(Request::parse("TRACE ALL").is_err(), "only TRACE LAST");
        assert!(Request::parse("RESET").is_err(), "RESET needs STATS");
        assert!(Request::parse("HEALTH now").is_err(), "HEALTH is bare");
        assert_eq!(Request::Top(None).command_name(), "control");
    }

    #[test]
    fn malformed_requests_are_rejected() {
        assert!(Request::parse("").is_err());
        assert!(Request::parse("   ").is_err());
        assert!(Request::parse("QUEL").is_err(), "missing argument");
        assert!(Request::parse("PIN now").is_err(), "unexpected argument");
        assert!(Request::parse("FROBNICATE x").is_err(), "unknown verb");
    }

    #[test]
    fn responses_are_line_counted_and_newline_safe() {
        let mut buf = Vec::new();
        write_ok(&mut buf, &["a".to_owned(), "b\nc".to_owned()]).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), "OK 3\na\nb\nc\n");

        let mut buf = Vec::new();
        write_err(&mut buf, "boom\nline two").unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), "ERR boom line two\n");
    }
}
