//! # nullrel-serve
//!
//! A multi-session TCP query service over the `nullrel` engine — the
//! network front end the ROADMAP's production story calls for, built on
//! `std` alone (the workspace is offline; no async runtime, no protocol
//! dependencies).
//!
//! * **Snapshot concurrency.** The served state is a
//!   [`nullrel_storage::VersionedDatabase`]: sessions read from pinned
//!   epoch-stamped snapshots and never block writers; `INSERT`/`DELETE`
//!   commands are serialized through the copy-on-write commit path, which
//!   bumps the epoch; old versions retire when their last reader drops.
//! * **Sessions.** Each accepted connection becomes a [`session::Session`]
//!   with its own snapshot-pinning mode (`PIN`/`UNPIN`) and a
//!   prepared-query cache: a repeated `QUEL`/`MAYBE` text is parsed,
//!   resolved, and logically planned once, then replayed against the
//!   session's snapshot until schema evolution invalidates it.
//! * **Protocol.** Newline-delimited requests, line-counted responses —
//!   the grammar lives in [`protocol`]; algebra expressions beyond QUEL's
//!   reach (set operators, division, union-join) come in through the
//!   s-expression surface of [`expr`].
//! * **Observability.** Every request runs under one `nullrel-obs` query
//!   trace (so `NULLREL_SLOW_MS` arms the slow-query log server-side),
//!   connection/session gauges and per-command latency histograms are
//!   registered in the process metrics registry, and the `METRICS`
//!   command renders the whole registry in Prometheus text format.
//!   The always-on flight recorder is served too: `TOP` (workload log),
//!   `SLOW` (flight ring), `TRACE LAST` (chrome JSON of the latest slow
//!   trace), `HEALTH`, and `RESET STATS` — see [`debug`].
//!
//! Connections are dispatched to a small hand-rolled worker pool
//! ([`ServeConfig::threads`] threads); a session occupies its worker until
//! the client disconnects, so the thread count bounds concurrent sessions
//! the way a classical process-per-connection database bounds backends.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod debug;
pub mod expr;
pub mod metrics;
pub mod protocol;
pub mod session;

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use nullrel_exec::OptimizeOptions;
use nullrel_storage::VersionedDatabase;

use protocol::Request;
use session::Session;

/// Default listen address (`NULLREL_SERVE_ADDR` overrides).
pub const DEFAULT_ADDR: &str = "127.0.0.1:7878";

/// Default worker-thread count (`NULLREL_SERVE_THREADS` overrides).
pub const DEFAULT_THREADS: usize = 8;

/// Ceiling on the worker-thread count any configuration can request.
pub const MAX_SERVE_THREADS: usize = 256;

/// Default staleness bound: how many epochs a `PIN`ned session may fall
/// behind before it is re-pinned forward.
pub const DEFAULT_MAX_STALENESS: u64 = 1024;

/// Query-service configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address (`host:port`; port 0 lets the OS pick, and
    /// [`ServerHandle::addr`] reports the bound port).
    pub addr: String,
    /// Worker threads — the bound on concurrent sessions.
    pub threads: usize,
    /// Epochs a pinned session may lag before forced re-pinning.
    pub max_staleness: u64,
    /// Data directory for durability (`NULLREL_DATA_DIR`). `Some` makes
    /// the served database persistent: the binary opens it with
    /// WAL + snapshot recovery, and every wire `INSERT`/`DELETE` commit
    /// is logged before it acknowledges. `None` serves purely in memory.
    pub data_dir: Option<std::path::PathBuf>,
    /// Engine options every session executes with. Defaults to the
    /// environment-driven [`OptimizeOptions::default`]; tests pin them for
    /// deterministic plans.
    pub options: OptimizeOptions,
}

impl ServeConfig {
    /// Reads the configuration from the environment:
    /// `NULLREL_SERVE_ADDR`, `NULLREL_SERVE_THREADS` (parsed like
    /// [`parse_threads`]), `NULLREL_SERVE_MAX_STALENESS` (parsed like
    /// [`parse_max_staleness`]; `0` = re-pin every request),
    /// `NULLREL_DATA_DIR` (empty/unset = in-memory), plus the engine's
    /// own `NULLREL_*` knobs through [`OptimizeOptions::default`].
    pub fn from_env() -> Self {
        ServeConfig {
            addr: std::env::var("NULLREL_SERVE_ADDR")
                .ok()
                .map(|a| a.trim().to_owned())
                .filter(|a| !a.is_empty())
                .unwrap_or_else(|| DEFAULT_ADDR.to_owned()),
            threads: parse_threads(std::env::var("NULLREL_SERVE_THREADS").ok().as_deref()),
            max_staleness: parse_max_staleness(
                std::env::var("NULLREL_SERVE_MAX_STALENESS").ok().as_deref(),
            ),
            data_dir: std::env::var("NULLREL_DATA_DIR")
                .ok()
                .map(|d| d.trim().to_owned())
                .filter(|d| !d.is_empty())
                .map(std::path::PathBuf::from),
            options: OptimizeOptions::default(),
        }
    }

    /// A loopback configuration with fully pinned engine options —
    /// deterministic plans regardless of the `NULLREL_*` environment.
    /// Used by this crate's tests and the golden snapshots.
    pub fn pinned_for_tests() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            threads: 4,
            max_staleness: DEFAULT_MAX_STALENESS,
            data_dir: None,
            options: OptimizeOptions {
                parallelism: nullrel_par::Parallelism::Serial,
                parallel_row_threshold: 0,
                adaptive: None,
                vectorize: true,
                batch_size: nullrel_exec::DEFAULT_BATCH_ROWS,
                ..OptimizeOptions::default()
            },
        }
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig::from_env()
    }
}

/// Parses a `NULLREL_SERVE_THREADS`-style value, mirroring
/// [`nullrel_par::Parallelism::parse`]: whitespace tolerated, garbage or
/// `0` fall back to [`DEFAULT_THREADS`], absurd values clamp to
/// [`MAX_SERVE_THREADS`].
pub fn parse_threads(value: Option<&str>) -> usize {
    match value.and_then(|v| v.trim().parse::<usize>().ok()) {
        Some(n) if n >= 1 => n.min(MAX_SERVE_THREADS),
        _ => DEFAULT_THREADS,
    }
}

/// Parses a `NULLREL_SERVE_MAX_STALENESS` value, hardened like
/// [`parse_threads`]: whitespace is tolerated, garbage/empty/unset falls
/// back to [`DEFAULT_MAX_STALENESS`]. Unlike the thread count, **`0` is a
/// valid setting** — it means a pinned session is re-pinned forward on
/// every request (zero tolerated staleness), not "use the default".
pub fn parse_max_staleness(value: Option<&str>) -> u64 {
    match value.and_then(|v| v.trim().parse::<u64>().ok()) {
        Some(n) => n,
        None => DEFAULT_MAX_STALENESS,
    }
}

struct Shared {
    vdb: Arc<VersionedDatabase>,
    config: ServeConfig,
    queue: Mutex<VecDeque<TcpStream>>,
    available: Condvar,
    shutdown: AtomicBool,
}

/// A running query service: the bound address plus shutdown control.
/// Dropping the handle stops the server and joins its threads.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The actually bound listen address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The served versioned database — how embedding code (tests, the
    /// load bench) commits writes out-of-band or inspects the epoch.
    pub fn database(&self) -> &Arc<VersionedDatabase> {
        &self.shared.vdb
    }

    /// Stops accepting, drains the workers, and joins every thread.
    /// Sessions in progress are allowed to finish their current request;
    /// their connections close on the next read.
    pub fn stop(mut self) {
        self.begin_stop();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }

    fn begin_stop(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.available.notify_all();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.begin_stop();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Starts the query service over `vdb`: binds the listener, spawns the
/// accept loop and [`ServeConfig::threads`] session workers, registers
/// the serve metrics, and returns immediately.
pub fn start(vdb: Arc<VersionedDatabase>, config: ServeConfig) -> std::io::Result<ServerHandle> {
    metrics::register();
    metrics::mark_started();
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let shared = Arc::new(Shared {
        vdb,
        config,
        queue: Mutex::new(VecDeque::new()),
        available: Condvar::new(),
        shutdown: AtomicBool::new(false),
    });

    let mut threads = Vec::with_capacity(shared.config.threads + 1);
    {
        let shared = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name("serve-accept".to_owned())
                .spawn(move || accept_loop(listener, &shared))?,
        );
    }
    for i in 0..shared.config.threads {
        let shared = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name(format!("serve-worker-{i}"))
                .spawn(move || worker_loop(&shared))?,
        );
    }
    Ok(ServerHandle {
        addr,
        shared,
        threads,
    })
}

fn accept_loop(listener: TcpListener, shared: &Shared) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Request/response protocols are latency-bound, not
                // bandwidth-bound: leave Nagle off so responses go out
                // immediately instead of waiting on delayed ACKs.
                let _ = stream.set_nodelay(true);
                metrics::CONNECTIONS.inc();
                let mut queue = shared.queue.lock().expect("queue poisoned");
                queue.push_back(stream);
                drop(queue);
                shared.available.notify_one();
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => break,
        }
    }
    shared.available.notify_all();
}

fn worker_loop(shared: &Shared) {
    loop {
        let stream = {
            let mut queue = shared.queue.lock().expect("queue poisoned");
            loop {
                if let Some(stream) = queue.pop_front() {
                    break stream;
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                queue = shared.available.wait(queue).expect("queue poisoned");
            }
        };
        handle_connection(stream, shared);
    }
}

/// RAII decrement for the active-sessions gauge (panic-safe).
struct SessionGauge;

impl SessionGauge {
    fn open() -> Self {
        metrics::ACTIVE_SESSIONS.add(1);
        SessionGauge
    }
}

impl Drop for SessionGauge {
    fn drop(&mut self) {
        metrics::ACTIVE_SESSIONS.add(-1);
    }
}

fn handle_connection(stream: TcpStream, shared: &Shared) {
    let _gauge = SessionGauge::open();
    let Ok(mut writer) = stream.try_clone() else {
        metrics::DISCONNECTS.inc();
        return;
    };
    let mut reader = BufReader::new(stream);
    let mut session = Session::new(Arc::clone(&shared.vdb), shared.config.clone());
    let mut line = String::new();
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        line.clear();
        match reader.read_line(&mut line) {
            // The client vanished without QUIT (socket closed or reset
            // mid-stream): count the abrupt end. The session gauge and
            // the prepared cache (owned by `session`) release on return.
            Ok(0) => {
                metrics::DISCONNECTS.inc();
                return;
            }
            Ok(_) => {}
            Err(_) => {
                metrics::DISCONNECTS.inc();
                return;
            }
        }
        if line.trim().is_empty() {
            continue;
        }
        metrics::REQUESTS.inc();
        let started = Instant::now();
        let request = Request::parse(&line);
        let command = request.as_ref().map(Request::command_name).unwrap_or("err");
        let outcome = match &request {
            Ok(Request::Quit) => {
                let _ = writer.write_all(b"BYE\n").and_then(|_| writer.flush());
                return;
            }
            Ok(request) => {
                // One query trace per request, labeled with the raw line —
                // this is what the slow-query log records server-side.
                let trace = nullrel_obs::begin_query(line.trim().to_owned());
                let outcome = session.handle(request);
                drop(trace);
                outcome
            }
            Err(e) => Err(e.clone()),
        };
        metrics::command_latency(command).observe(started.elapsed().as_micros() as u64);
        let written = match outcome {
            Ok(lines) => protocol::write_ok(&mut writer, &lines),
            Err(message) => {
                metrics::ERRORS.inc();
                protocol::write_err(&mut writer, &message)
            }
        };
        if written.is_err() {
            metrics::DISCONNECTS.inc();
            return;
        }
    }
}

/// A minimal blocking client for the wire protocol — used by this crate's
/// integration tests and the `e18_concurrent_serve` load bench.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a running server.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        // Latency-bound protocol: don't let Nagle hold the request back.
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sends one request line and reads the full response: `Ok(lines)`
    /// for `OK`, `Err(message)` for `ERR`. `BYE` returns an empty `Ok`.
    pub fn send(&mut self, request: &str) -> std::io::Result<Result<Vec<String>, String>> {
        self.writer.write_all(format!("{request}\n").as_bytes())?;
        self.writer.flush()?;
        let mut header = String::new();
        if self.reader.read_line(&mut header)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        let header = header.trim_end();
        if header == "BYE" {
            return Ok(Ok(Vec::new()));
        }
        if let Some(message) = header.strip_prefix("ERR ") {
            return Ok(Err(message.to_owned()));
        }
        let count: usize = header
            .strip_prefix("OK ")
            .and_then(|n| n.parse().ok())
            .ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("malformed response header {header:?}"),
                )
            })?;
        let mut lines = Vec::with_capacity(count);
        for _ in 0..count {
            let mut line = String::new();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "response truncated",
                ));
            }
            while line.ends_with('\n') || line.ends_with('\r') {
                line.pop();
            }
            lines.push(line);
        }
        Ok(Ok(lines))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_threads_parse_like_parallelism() {
        assert_eq!(parse_threads(None), DEFAULT_THREADS);
        assert_eq!(parse_threads(Some("")), DEFAULT_THREADS);
        assert_eq!(parse_threads(Some("garbage")), DEFAULT_THREADS);
        assert_eq!(parse_threads(Some("0")), DEFAULT_THREADS);
        assert_eq!(parse_threads(Some("1")), 1);
        assert_eq!(parse_threads(Some(" 12 ")), 12);
        assert_eq!(parse_threads(Some("999999")), MAX_SERVE_THREADS);
    }

    /// Garbage falls back to the default, but `0` is a *valid* bound
    /// (re-pin every request) — it must not be coerced to the default the
    /// way `parse_threads` treats zero.
    #[test]
    fn max_staleness_parse_is_hardened_and_zero_is_valid() {
        assert_eq!(parse_max_staleness(None), DEFAULT_MAX_STALENESS);
        assert_eq!(parse_max_staleness(Some("")), DEFAULT_MAX_STALENESS);
        assert_eq!(parse_max_staleness(Some("   ")), DEFAULT_MAX_STALENESS);
        assert_eq!(parse_max_staleness(Some("garbage")), DEFAULT_MAX_STALENESS);
        assert_eq!(parse_max_staleness(Some("-3")), DEFAULT_MAX_STALENESS);
        assert_eq!(parse_max_staleness(Some("12.5")), DEFAULT_MAX_STALENESS);
        assert_eq!(parse_max_staleness(Some("0")), 0);
        assert_eq!(parse_max_staleness(Some(" 77 ")), 77);
    }
}
