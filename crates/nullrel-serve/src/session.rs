//! Per-session state: the pinned snapshot, the prepared-query cache, and
//! the command dispatcher.
//!
//! ## Snapshot semantics
//!
//! A session reads from an epoch-stamped [`Snapshot`] pinned out of the
//! shared [`VersionedDatabase`]:
//!
//! * **Following (default).** Each command re-pins the latest committed
//!   version first — per-statement read-committed. A session's own commits
//!   are therefore immediately visible to it.
//! * **Pinned (`PIN`).** The session freezes on the current version;
//!   every subsequent read runs against that one frozen state no matter
//!   how many commits land, until `UNPIN` — or until the session falls
//!   more than [`crate::ServeConfig::max_staleness`] epochs behind, at
//!   which point it is re-pinned forward (the staleness bound keeps
//!   long-lived sessions from retaining arbitrarily old versions).
//!
//! ## Prepared-query cache
//!
//! `QUEL`/`MAYBE` texts are parsed, resolved, and logically planned once
//! per session ([`nullrel_query::prepare`]) and replayed on every
//! repetition ([`nullrel_query::execute_prepared`]). Entries are
//! invalidated by schema evolution (the snapshot's schema version moves)
//! and evicted FIFO beyond [`PREPARED_CACHE_CAP`] texts.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::Arc;

use nullrel_core::tvl::Truth;
use nullrel_query::{execute_prepared, prepare, Prepared, QueryOutput};
use nullrel_storage::{Snapshot, VersionedDatabase};

use crate::metrics;
use crate::protocol::Request;
use crate::ServeConfig;

/// Prepared statements kept per session before FIFO eviction.
pub const PREPARED_CACHE_CAP: usize = 64;

/// One client session: its pinned snapshot and prepared-query cache.
pub struct Session {
    vdb: Arc<VersionedDatabase>,
    config: ServeConfig,
    snapshot: Arc<Snapshot>,
    explicit_pin: bool,
    prepared: HashMap<String, Prepared>,
    prepared_order: VecDeque<String>,
}

impl Session {
    /// Opens a session over the shared versioned database.
    pub fn new(vdb: Arc<VersionedDatabase>, config: ServeConfig) -> Self {
        let snapshot = vdb.pin();
        Session {
            vdb,
            config,
            snapshot,
            explicit_pin: false,
            prepared: HashMap::new(),
            prepared_order: VecDeque::new(),
        }
    }

    /// The epoch this session currently reads from.
    pub fn pinned_epoch(&self) -> u64 {
        self.snapshot.epoch()
    }

    /// Brings the session's snapshot up to date per the semantics above:
    /// following sessions always re-pin; pinned sessions re-pin only past
    /// the staleness bound.
    fn refresh(&mut self) {
        if !self.explicit_pin {
            self.snapshot = self.vdb.pin();
        } else if self.vdb.epoch().saturating_sub(self.snapshot.epoch()) > self.config.max_staleness
        {
            metrics::STALE_REPINS.inc();
            self.snapshot = self.vdb.pin();
        }
    }

    /// Looks a query up in the prepared cache, preparing (or re-preparing
    /// after schema evolution) on miss.
    fn prepared(&mut self, text: &str) -> Result<Prepared, String> {
        if let Some(hit) = self.prepared.get(text) {
            if hit.valid_for(self.snapshot.db()) {
                metrics::PREPARED_HITS.inc();
                nullrel_obs::recorder::annotate(|r| r.prepared_hit = true);
                return Ok(hit.clone());
            }
            metrics::PREPARED_INVALIDATIONS.inc();
            self.prepared.remove(text);
            self.prepared_order.retain(|t| t != text);
        }
        metrics::PREPARED_MISSES.inc();
        let prepared = prepare(self.snapshot.db(), text).map_err(|e| e.to_string())?;
        if self.prepared.len() >= PREPARED_CACHE_CAP {
            if let Some(oldest) = self.prepared_order.pop_front() {
                self.prepared.remove(&oldest);
            }
        }
        self.prepared.insert(text.to_owned(), prepared.clone());
        self.prepared_order.push_back(text.to_owned());
        Ok(prepared)
    }

    fn run_quel(&mut self, text: &str, band: Truth) -> Result<Vec<String>, String> {
        let prepared = self.prepared(text)?;
        let output = execute_prepared(self.snapshot.db(), &prepared, band, self.config.options)
            .map_err(|e| e.to_string())?;
        Ok(render_output(&output))
    }

    fn run_expr(&mut self, text: &str, band: Truth) -> Result<Vec<String>, String> {
        let db = self.snapshot.db();
        let expr = crate::expr::parse_expr(text, db.universe())?;
        let (rel, _stats) = nullrel_exec::execute_expr_band_with(
            &expr,
            db,
            db.universe(),
            band,
            self.config.options,
        )
        .map_err(|e| e.to_string())?;
        Ok(crate::expr::render_rows(rel.tuples(), db.universe()))
    }

    fn run_insert(&mut self, rest: &str) -> Result<Vec<String>, String> {
        let mut parts = split_quoted(rest)?;
        if parts.is_empty() {
            return Err("INSERT needs a table name".to_owned());
        }
        let table = parts.remove(0);
        let mut cells: Vec<(String, nullrel_core::value::Value)> = Vec::new();
        for part in &parts {
            let (col, raw) = part
                .split_once('=')
                .ok_or_else(|| format!("expected <col>=<value>, got {part}"))?;
            cells.push((col.to_owned(), parse_value(raw)?));
        }
        // Commit as a logical op: with a data directory attached this is
        // the durable hot path (one WAL record), and replay after a crash
        // runs the exact same interpreter.
        let op = nullrel_storage::LogicalOp::Insert { table, cells };
        let (epoch, affected) = self
            .vdb
            .commit_ops(std::slice::from_ref(&op))
            .map_err(|e| e.to_string())?;
        Ok(vec![format!("epoch={epoch} rows={}", affected[0])])
    }

    fn run_delete(&mut self, rest: &str) -> Result<Vec<String>, String> {
        let parts = split_quoted(rest)?;
        let [table, col, op, raw] = parts.as_slice() else {
            return Err("expected DELETE <table> <col> <op> <value>".to_owned());
        };
        let op = match op.as_str() {
            "=" => nullrel_core::CompareOp::Eq,
            "!=" => nullrel_core::CompareOp::Ne,
            "<" => nullrel_core::CompareOp::Lt,
            "<=" => nullrel_core::CompareOp::Le,
            ">" => nullrel_core::CompareOp::Gt,
            ">=" => nullrel_core::CompareOp::Ge,
            other => return Err(format!("unknown comparison {other}")),
        };
        let value = parse_value(raw)?;
        let logical = nullrel_storage::LogicalOp::Delete {
            table: table.clone(),
            column: col.clone(),
            op,
            value,
        };
        let (epoch, affected) = self
            .vdb
            .commit_ops(std::slice::from_ref(&logical))
            .map_err(|e| e.to_string())?;
        Ok(vec![format!("epoch={epoch} rows={}", affected[0])])
    }

    /// Executes one request, returning the `OK` payload lines. `QUIT` is
    /// handled by the connection loop before this point.
    pub fn handle(&mut self, request: &Request) -> Result<Vec<String>, String> {
        self.refresh();
        // Stamp the snapshot epoch onto the request's flight record (the
        // connection loop opened it before dispatching here).
        let epoch = self.snapshot.epoch();
        nullrel_obs::recorder::annotate(|r| r.epoch = Some(epoch));
        match request {
            Request::Quel(text) => self.run_quel(text, Truth::True),
            Request::Maybe(text) => self.run_quel(text, Truth::Ni),
            Request::Expr(text) => self.run_expr(text, Truth::True),
            Request::ExprMaybe(text) => self.run_expr(text, Truth::Ni),
            Request::Explain(text) => {
                nullrel_query::explain_physical_with(self.snapshot.db(), text, self.config.options)
                    .map(|report| vec![report.trim_end().to_owned()])
                    .map_err(|e| e.to_string())
            }
            Request::Analyze(text) => {
                nullrel_query::explain_analyze_with(self.snapshot.db(), text, self.config.options)
                    .map(|report| vec![report.trim_end().to_owned()])
                    .map_err(|e| e.to_string())
            }
            Request::Insert(rest) => self.run_insert(rest),
            Request::Delete(rest) => self.run_delete(rest),
            Request::Pin => {
                self.snapshot = self.vdb.pin();
                self.explicit_pin = true;
                Ok(vec![format!("pinned={}", self.snapshot.epoch())])
            }
            Request::Unpin => {
                self.explicit_pin = false;
                self.snapshot = self.vdb.pin();
                Ok(vec![format!("pinned={}", self.snapshot.epoch())])
            }
            Request::Epoch => Ok(vec![
                format!("epoch={}", self.vdb.epoch()),
                format!("pinned={}", self.snapshot.epoch()),
                format!("schema={}", self.snapshot.db().schema_version()),
                format!("explicit={}", self.explicit_pin),
            ]),
            Request::Metrics => Ok(nullrel_obs::metrics::render_prometheus()
                .lines()
                .map(str::to_owned)
                .collect()),
            Request::Top(n) => Ok(crate::debug::render_top(*n)),
            Request::Slow(n) => Ok(crate::debug::render_slow(*n)),
            Request::TraceLast => crate::debug::render_trace_last(),
            Request::Health => Ok(crate::debug::render_health(
                self.vdb.epoch(),
                self.vdb.durability_status().as_ref(),
            )),
            Request::ResetStats => Ok(crate::debug::reset_stats()),
            Request::Quit => Ok(Vec::new()),
        }
    }
}

/// Renders a [`QueryOutput`] for the wire: `rows=<n>`, the `|`-separated
/// header, then one `|`-separated line per tuple (`-` for `ni` cells) —
/// the same table shape as [`QueryOutput::render`], prefixed with the
/// machine-checkable row count.
fn render_output(output: &QueryOutput) -> Vec<String> {
    let mut lines = Vec::with_capacity(output.rows.len() + 2);
    lines.push(format!("rows={}", output.rows.len()));
    lines.push(output.columns.join(" | "));
    for row in &output.rows {
        let cells: Vec<String> = output
            .column_attrs
            .iter()
            .map(|attr| {
                row.get(*attr)
                    .map(|v| v.to_string())
                    .unwrap_or_else(|| "-".to_owned())
            })
            .collect();
        lines.push(cells.join(" | "));
    }
    lines
}

/// Splits on whitespace, keeping double-quoted segments (which may embed
/// spaces) attached to their token; quotes are preserved so value parsing
/// can tell strings from numbers.
fn split_quoted(text: &str) -> Result<Vec<String>, String> {
    let mut parts = Vec::new();
    let mut current = String::new();
    let mut in_quotes = false;
    for c in text.chars() {
        match c {
            '"' => {
                in_quotes = !in_quotes;
                current.push('"');
            }
            c if c.is_whitespace() && !in_quotes => {
                if !current.is_empty() {
                    parts.push(std::mem::take(&mut current));
                }
            }
            c => current.push(c),
        }
    }
    if in_quotes {
        return Err("unterminated string".to_owned());
    }
    if !current.is_empty() {
        parts.push(current);
    }
    Ok(parts)
}

/// Parses a wire value: `"…"` is a string, otherwise an integer.
fn parse_value(raw: &str) -> Result<nullrel_core::value::Value, String> {
    if let Some(stripped) = raw.strip_prefix('"') {
        let inner = stripped
            .strip_suffix('"')
            .ok_or_else(|| format!("unterminated string {raw}"))?;
        Ok(nullrel_core::value::Value::str(inner))
    } else {
        raw.parse::<i64>()
            .map(nullrel_core::value::Value::int)
            .map_err(|_| format!("expected an integer or \"string\", got {raw}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nullrel_core::value::Value;
    use nullrel_storage::{Database, SchemaBuilder};

    fn vdb() -> Arc<VersionedDatabase> {
        let mut db = Database::new();
        db.create_table(SchemaBuilder::new("PS").column("S#").column("P#"))
            .unwrap();
        let u = db.universe().clone();
        let t = db.table_mut("PS").unwrap();
        for (s, p) in [
            (Some("s1"), Some("p1")),
            (Some("s1"), Some("p2")),
            (Some("s2"), None),
        ] {
            let mut cells = Vec::new();
            if let Some(s) = s {
                cells.push(("S#", Value::str(s)));
            }
            if let Some(p) = p {
                cells.push(("P#", Value::str(p)));
            }
            t.insert_named(&u, &cells).unwrap();
        }
        Arc::new(VersionedDatabase::new(db))
    }

    fn session(vdb: &Arc<VersionedDatabase>) -> Session {
        Session::new(Arc::clone(vdb), ServeConfig::pinned_for_tests())
    }

    const QUERY: &str = "range of x is PS retrieve (x.S#) where x.P# = \"p1\"";

    #[test]
    fn quel_round_trip_and_prepared_cache() {
        let vdb = vdb();
        let mut s = session(&vdb);
        let hits = metrics::PREPARED_HITS.get();
        let misses = metrics::PREPARED_MISSES.get();
        let out = s.handle(&Request::Quel(QUERY.to_owned())).unwrap();
        assert_eq!(out[0], "rows=1");
        assert_eq!(out[1], "x.S#");
        assert_eq!(out[2], "s1");
        let again = s.handle(&Request::Quel(QUERY.to_owned())).unwrap();
        assert_eq!(out, again);
        assert_eq!(metrics::PREPARED_MISSES.get(), misses + 1, "prepared once");
        assert!(metrics::PREPARED_HITS.get() > hits, "replayed from cache");

        // The maybe band sees the ni row.
        let maybe = s.handle(&Request::Maybe(QUERY.to_owned())).unwrap();
        assert_eq!(maybe[0], "rows=1");
        assert_eq!(maybe[2], "s2");
    }

    #[test]
    fn pinned_sessions_freeze_while_following_sessions_see_commits() {
        let vdb = vdb();
        let mut pinned = session(&vdb);
        let mut follower = session(&vdb);
        pinned.handle(&Request::Pin).unwrap();

        let mut writer = session(&vdb);
        let out = writer
            .handle(&Request::Insert("PS S#=\"s9\" P#=\"p1\"".to_owned()))
            .unwrap();
        assert_eq!(out, vec!["epoch=1 rows=1".to_owned()]);

        let frozen = pinned.handle(&Request::Quel(QUERY.to_owned())).unwrap();
        assert_eq!(frozen[0], "rows=1", "pinned session reads epoch 0");
        let fresh = follower.handle(&Request::Quel(QUERY.to_owned())).unwrap();
        assert_eq!(fresh[0], "rows=2", "following session reads epoch 1");

        pinned.handle(&Request::Unpin).unwrap();
        let after = pinned.handle(&Request::Quel(QUERY.to_owned())).unwrap();
        assert_eq!(after[0], "rows=2", "unpinned catches up");
    }

    #[test]
    fn staleness_bound_repins_long_pinned_sessions() {
        let vdb = vdb();
        let mut config = ServeConfig::pinned_for_tests();
        config.max_staleness = 2;
        let mut s = Session::new(Arc::clone(&vdb), config);
        s.handle(&Request::Pin).unwrap();
        let mut writer = session(&vdb);
        for i in 0..3 {
            writer
                .handle(&Request::Insert(format!("PS S#=\"sx{i}\" P#=\"p1\"")))
                .unwrap();
        }
        let out = s.handle(&Request::Quel(QUERY.to_owned())).unwrap();
        assert_eq!(out[0], "rows=4", "re-pinned past the staleness bound");
        assert_eq!(s.pinned_epoch(), 3);
    }

    #[test]
    fn schema_evolution_invalidates_prepared_entries() {
        let vdb = vdb();
        let mut s = session(&vdb);
        s.handle(&Request::Quel(QUERY.to_owned())).unwrap();
        let invalidations = metrics::PREPARED_INVALIDATIONS.get();
        vdb.commit(|db| {
            let (table, universe) = db.table_and_universe_mut("PS")?;
            table.add_column(universe, "QTY", None).map(|_| ())
        })
        .unwrap();
        let out = s.handle(&Request::Quel(QUERY.to_owned())).unwrap();
        assert_eq!(out[0], "rows=1");
        assert_eq!(metrics::PREPARED_INVALIDATIONS.get(), invalidations + 1);
    }

    #[test]
    fn expr_delete_epoch_and_errors() {
        let vdb = vdb();
        let mut s = session(&vdb);
        let out = s
            .handle(&Request::Expr(
                "(project (S#) (select (= P# \"p1\") (scan PS)))".to_owned(),
            ))
            .unwrap();
        assert_eq!(out[0], "rows=1");
        assert_eq!(out[1], "S#=s1");

        let out = s
            .handle(&Request::Delete("PS S# = \"s1\"".to_owned()))
            .unwrap();
        assert_eq!(out, vec!["epoch=1 rows=2".to_owned()]);

        let epoch = s.handle(&Request::Epoch).unwrap();
        assert_eq!(epoch[0], "epoch=1");
        assert_eq!(epoch[1], "pinned=1");
        assert_eq!(epoch[3], "explicit=false");

        assert!(s.handle(&Request::Quel("garbage".to_owned())).is_err());
        assert!(s.handle(&Request::Insert("NOPE S#=1".to_owned())).is_err());
        assert!(s
            .handle(&Request::Delete("PS S# ~ \"s1\"".to_owned()))
            .is_err());
        // Failed commits publish nothing.
        assert_eq!(vdb.epoch(), 1);
    }

    #[test]
    fn explain_and_metrics_render() {
        let vdb = vdb();
        let mut s = session(&vdb);
        let explain = s.handle(&Request::Explain(QUERY.to_owned())).unwrap();
        assert!(explain.iter().any(|l| l.contains("Project")), "{explain:?}");
        let analyze = s.handle(&Request::Analyze(QUERY.to_owned())).unwrap();
        assert!(analyze.iter().any(|l| l.contains("time=")), "{analyze:?}");
        let metrics = s.handle(&Request::Metrics).unwrap();
        assert!(metrics
            .iter()
            .any(|l| l.starts_with("nullrel_queries_executed_total")));
    }
}
