//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so this crate implements the
//! benchmarking surface the workspace's `benches/` use — [`Criterion`],
//! benchmark groups, [`BenchmarkId`], `b.iter(...)`, and the
//! [`criterion_group!`]/[`criterion_main!`] macros — on top of a plain
//! wall-clock measurement loop. Results are printed as
//! `group/name  median  (iters)` lines; there is no statistical analysis,
//! plotting, or baseline comparison.
//!
//! The measurement protocol: warm up for `warm_up_time`, then run batches,
//! doubling the batch size until a batch exceeds `measurement_time /
//! sample_size`, and report the per-iteration median over `sample_size`
//! batches.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box`, which real criterion also offers.
pub use std::hint::black_box;

/// The benchmark harness entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_millis(600),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration per benchmark.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the target measurement duration per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run_one("", &id.render(), f);
    }

    fn run_one<F>(&self, group: &str, name: &str, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher);
        let label = if group.is_empty() {
            name.to_owned()
        } else {
            format!("{group}/{name}")
        };
        match bencher.median() {
            Some((per_iter, iters)) => {
                println!(
                    "bench: {label:<56} {} ({iters} iters/sample)",
                    fmt_duration(per_iter)
                );
            }
            None => println!("bench: {label:<56} (no measurement)"),
        }
    }
}

fn fmt_duration(nanos: f64) -> String {
    if nanos < 1_000.0 {
        format!("{nanos:>9.1} ns")
    } else if nanos < 1_000_000.0 {
        format!("{:>9.2} µs", nanos / 1_000.0)
    } else if nanos < 1_000_000_000.0 {
        format!("{:>9.2} ms", nanos / 1_000_000.0)
    } else {
        format!("{:>9.2} s ", nanos / 1_000_000_000.0)
    }
}

/// A named collection of benchmarks sharing the parent settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.criterion.run_one(&self.name, &id.render(), f);
    }

    /// Runs one benchmark parameterised by an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        self.criterion
            .run_one(&self.name, &id.render(), |b| f(b, input));
    }

    /// Ends the group. (A no-op here; real criterion finalises reports.)
    pub fn finish(self) {}
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with a function name and a parameter rendered via `Display`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id carrying only a function name.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self) -> String {
        match &self.parameter {
            Some(p) if self.function.is_empty() => p.clone(),
            Some(p) => format!("{}/{p}", self.function),
            None => self.function.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            function: name.to_owned(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            function: name,
            parameter: None,
        }
    }
}

/// The timing loop handed to each benchmark closure.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    samples: Vec<(f64, u64)>,
}

impl Bencher {
    /// Times `routine`, storing per-iteration samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: also sizes the batch so one batch is a meaningful slice
        // of the measurement budget.
        let warm_deadline = Instant::now() + self.warm_up_time;
        let mut batch: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if Instant::now() >= warm_deadline {
                break;
            }
            let per_sample = self
                .measurement_time
                .div_f64(self.sample_size.max(1) as f64);
            if elapsed < per_sample {
                batch = batch.saturating_mul(2);
            }
        }
        // Measurement: `sample_size` batches.
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let nanos = start.elapsed().as_nanos() as f64 / batch as f64;
            self.samples.push((nanos, batch));
        }
    }

    fn median(&self) -> Option<(f64, u64)> {
        if self.samples.is_empty() {
            return None;
        }
        let mut times: Vec<f64> = self.samples.iter().map(|(t, _)| *t).collect();
        times.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        Some((times[times.len() / 2], self.samples[0].1))
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut group = c.benchmark_group("shim");
        let mut runs = 0u64;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.bench_with_input(BenchmarkId::new("with_input", 4), &4u64, |b, n| {
            b.iter(|| n * 2)
        });
        group.finish();
        assert!(runs > 0);
    }

    #[test]
    fn id_rendering() {
        assert_eq!(BenchmarkId::new("f", 10).render(), "f/10");
        assert_eq!(BenchmarkId::from("plain").render(), "plain");
        assert_eq!(BenchmarkId::from_parameter(7).render(), "7");
    }
}
