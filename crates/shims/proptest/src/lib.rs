//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this crate implements the
//! small slice of proptest's API the workspace's property tests use:
//! [`Strategy`] with `prop_map`, integer-range strategies,
//! [`collection::vec`], [`option::of`], [`ProptestConfig::with_cases`], and
//! the [`proptest!`]/[`prop_assert!`]/[`prop_assert_eq!`] macros.
//!
//! Shrinking is intentionally not implemented: on failure the offending
//! inputs are reported unshrunk via the panic message. Generation is
//! deterministic per test (seeded from the test name), so failures are
//! reproducible.

#![forbid(unsafe_code)]

use std::fmt::Debug;
use std::ops::Range;

pub mod test_runner {
    //! The deterministic case generator behind [`crate::proptest!`].

    use rand::rngs::StdRng;
    use rand::{RngCore, RngExt, SeedableRng};

    /// The per-test RNG. Seeded from the test name so each property gets an
    /// independent but reproducible stream.
    #[derive(Debug, Clone)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// A generator seeded deterministically from `name`.
        pub fn deterministic(name: &str) -> TestRng {
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x100_0000_01b3);
            }
            TestRng(StdRng::seed_from_u64(seed))
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }

        /// Uniform draw from `[0, n)`.
        pub fn below(&mut self, n: u64) -> u64 {
            self.0.random_range(0..n.max(1))
        }
    }

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }
}

pub use test_runner::Config as ProptestConfig;

/// A generator of values of an associated type, mirroring
/// `proptest::strategy::Strategy` (without shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut test_runner::TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<B, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> B,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, B, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> B,
{
    type Value = B;

    fn sample(&self, rng: &mut test_runner::TestRng) -> B {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut test_runner::TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

int_range_strategy!(i64, i32, u64, u32, usize, u8);

/// Tuples of strategies are strategies over tuples of values, as in real
/// proptest (independent component draws).
macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut test_runner::TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy!((A, B)(A, B, C)(A, B, C, D));

pub mod collection {
    //! Collection strategies, mirroring `proptest::collection`.

    use super::{test_runner::TestRng, Strategy};
    use std::ops::Range;

    /// Sizes accepted by [`vec`]: an exact length or a half-open range.
    pub trait SizeRange {
        /// Draws a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    /// A strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod option {
    //! Option strategies, mirroring `proptest::option`.

    use super::{test_runner::TestRng, Strategy};

    /// A strategy producing `None` about a quarter of the time and `Some` of
    /// the inner strategy otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// The strategy returned by [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }
}

/// Everything the property tests import, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::option;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Fails the current case. The shim reports failures by panicking (there is
/// no shrinking phase to feed a structured error into).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, "property assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Equality form of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*);
    };
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// expands to a `#[test]` that samples the strategies `cases` times and runs
/// the body on each sample.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@expand ($cfg); $($rest)*);
    };
    (@expand ($cfg:expr); $(
        $(#[doc = $doc:expr])*
        #[test]
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[doc = $doc])*
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                for _case in 0..config.cases {
                    $(let $arg = $crate::Strategy::sample(&$strat, &mut rng);)*
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@expand ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_generate_in_bounds(v in 0i64..10) {
            prop_assert!((0..10).contains(&v));
        }

        #[test]
        fn vec_and_option_compose(items in collection::vec(option::of(0i64..4), 0..6)) {
            prop_assert!(items.len() < 6);
            for v in items.into_iter().flatten() {
                prop_assert!((0..4).contains(&v));
            }
        }

        #[test]
        fn prop_map_applies(doubled in (0i64..5).prop_map(|v| v * 2)) {
            prop_assert_eq!(doubled % 2, 0);
        }
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        let strat = crate::collection::vec(0i64..100, 0..10);
        let mut a = crate::test_runner::TestRng::deterministic("x");
        let mut b = crate::test_runner::TestRng::deterministic("x");
        for _ in 0..10 {
            assert_eq!(strat.sample(&mut a), strat.sample(&mut b));
        }
    }
}
