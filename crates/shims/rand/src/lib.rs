//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this workspace vendors
//! the tiny slice of the `rand` API its workload generators actually use: a
//! deterministic, seedable generator ([`rngs::StdRng`], xoshiro256** seeded
//! via splitmix64), the [`SeedableRng`] seeding trait, and the [`RngExt`]
//! sampling trait (`random::<f64>()`, `random_range(0..n)`).
//!
//! Determinism is the only contract the benchmarks rely on: the same seed
//! always yields the same stream, so generated workloads are reproducible.

#![forbid(unsafe_code)]

/// A source of pseudo-random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling conveniences, mirroring the `random`/`random_range` methods of
/// `rand::Rng`.
pub trait RngExt: RngCore {
    /// Samples a value of `T` from the generator's stream.
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// Samples uniformly from `[range.start, range.end)`. Panics on an empty
    /// range, like the real crate.
    fn random_range(&mut self, range: std::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "cannot sample from empty range");
        let span = range.end - range.start;
        // Multiply-shift rejection-free mapping; bias is negligible for the
        // small spans the workload generators use.
        range.start + (((self.next_u64() as u128) * (span as u128)) >> 64) as u64
    }
}

impl<R: RngCore> RngExt for R {}

/// Types samplable from a random bit stream.
pub trait Random {
    /// Draws one value from the generator.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Random for u64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for f64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for bool {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** with splitmix64
    /// seed expansion.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn ranges_are_respected_and_cover() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.random_range(3..13);
            assert!((3..13).contains(&v));
            seen[(v - 3) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of a small range occur");
    }
}
