//! # nullrel
//!
//! Facade crate for the reproduction of Carlo Zaniolo's *Database Relations
//! with Null Values* (PODS 1982 / JCSS 1984). It re-exports the four
//! component crates under short names and hosts the repository-level
//! examples (`examples/`) and cross-crate integration tests (`tests/`).
//!
//! * [`core`] — no-information nulls, x-relations, the lattice, and the
//!   generalized relational algebra (the paper's contribution).
//! * [`codd`] — the baselines: classical total relations, Codd's TRUE/MAYBE
//!   algebra, and the null substitution principle.
//! * [`storage`] — the in-memory database substrate (catalog, tables,
//!   schema evolution, indexes, incremental statistics).
//! * [`stats`] — the truth-band-aware statistics catalog and the
//!   cardinality estimator feeding the cost-based optimizer.
//! * [`exec`] — the pipelined physical execution engine: cost-based
//!   optimizer (join-order enumeration, index selection, hash vs
//!   index-nested-loop joins), catalog access paths, streaming
//!   minimisation.
//! * [`par`] — the morsel-driven parallel runtime: worker-pool scheduler,
//!   partitioned hash/equi/union joins by normalized key hash, and the
//!   partitioned `Minimize` reduction (local antichains + cross-partition
//!   subsumption merge).
//! * [`query`] — the QUEL-subset front-end with `ni` lower-bound evaluation
//!   (run through the engine) and the "unknown"-interpretation baseline
//!   with tautology detection.
//! * [`obs`] — the observability layer: query-lifecycle tracing with
//!   chrome://tracing export, the lock-free engine metrics registry, and
//!   the per-tuple timing behind `EXPLAIN ANALYZE`.
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory and the
//! experiment index, and `EXPERIMENTS.md` for paper-vs-measured results.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use nullrel_codd as codd;
pub use nullrel_core as core;
pub use nullrel_exec as exec;
pub use nullrel_obs as obs;
pub use nullrel_par as par;
pub use nullrel_query as query;
pub use nullrel_stats as stats;
pub use nullrel_storage as storage;

/// The most commonly used items from every layer, for examples and tests.
pub mod prelude {
    pub use nullrel_core::prelude::*;
    pub use nullrel_query::{execute, execute_unknown, parse};
    pub use nullrel_storage::{Database, SchemaBuilder};
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_are_usable() {
        use crate::prelude::*;
        let mut db = Database::new();
        db.create_table(SchemaBuilder::new("T").column("A"))
            .unwrap();
        let a = db.universe().lookup("A").unwrap();
        let rel = XRelation::from_tuples([Tuple::new().with(a, Value::int(1))]);
        assert_eq!(rel.len(), 1);
    }
}
