//! Experiment E2 (Section 2, Tables I and II): adding the `TEL#` column to
//! `EMP` changes the schema but not the information content, and the stored
//! table keeps behaving correctly under constraints, indexes, and queries.

use nullrel::core::prelude::*;
use nullrel::query::execute;
use nullrel::storage::loader::paper;
use nullrel::storage::{Database, SchemaBuilder};

fn table_i_database() -> Database {
    let mut db = Database::new();
    db.create_table(
        SchemaBuilder::new("EMP")
            .required_column("E#")
            .column("NAME")
            .column_with_domain(
                "SEX",
                Domain::Enumerated(vec![Value::str("M"), Value::str("F")]),
            )
            .column("MGR#")
            .key(&["E#"]),
    )
    .unwrap();
    let universe = db.universe().clone();
    let table = db.table_mut("EMP").unwrap();
    for (e, n, s, m) in [
        (1120, "SMITH", "M", 2235),
        (4335, "BROWN", "F", 2235),
        (8799, "GREEN", "M", 1255),
    ] {
        table
            .insert_named(
                &universe,
                &[
                    ("E#", Value::int(e)),
                    ("NAME", Value::str(n)),
                    ("SEX", Value::str(s)),
                    ("MGR#", Value::int(m)),
                ],
            )
            .unwrap();
    }
    db
}

/// The central claim: Table I and Table II are information-wise equivalent,
/// both for the loader's verbatim copies of the paper's tables and for a
/// live table evolved through `ADD COLUMN`.
#[test]
fn adding_a_column_preserves_information_content() {
    // Verbatim tables from the paper.
    let mut universe = Universe::new();
    let table_i = paper::emp_table_i(&mut universe);
    let table_ii = paper::emp_table_ii(&mut universe);
    assert!(table_i.equivalent(&table_ii));
    assert_eq!(
        XRelation::from_relation(&table_i),
        XRelation::from_relation(&table_ii)
    );
    // The scope (Definition 4.7) ignores the always-null TEL# column.
    assert_eq!(table_ii.scope(), table_i.scope());

    // The same through the storage engine.
    let mut db = table_i_database();
    let before = db.table("EMP").unwrap().to_xrelation();
    {
        let (table, universe) = db.table_and_universe_mut("EMP").unwrap();
        table.add_column(universe, "TEL#", None).unwrap();
    }
    let after = db.table("EMP").unwrap().to_xrelation();
    assert_eq!(before, after, "no information was gained or lost");
    assert_eq!(db.table("EMP").unwrap().schema().columns().len(), 5);
}

/// After the evolution the new column participates in constraints, queries,
/// and further updates exactly like an original column.
#[test]
fn evolved_column_is_a_first_class_citizen() {
    let mut db = table_i_database();
    {
        let (table, universe) = db.table_and_universe_mut("EMP").unwrap();
        table.add_column(universe, "TEL#", None).unwrap();
    }
    let universe = db.universe().clone();
    let tel = universe.lookup("TEL#").unwrap();
    let e_no = universe.lookup("E#").unwrap();

    // New rows may supply the new column; key constraints still apply.
    let table = db.table_mut("EMP").unwrap();
    table
        .insert_named(
            &universe,
            &[
                ("E#", Value::int(5555)),
                ("NAME", Value::str("JONES")),
                ("SEX", Value::str("F")),
                ("TEL#", Value::int(2_639_452)),
            ],
        )
        .unwrap();
    assert!(table
        .insert_named(&universe, &[("E#", Value::int(5555))])
        .is_err());

    // Queries over the new column follow the lower-bound semantics: only the
    // row with a recorded TEL# qualifies.
    let out = execute(
        &db,
        "range of e is EMP retrieve (e.NAME) where e.TEL# > 2000000",
    )
    .unwrap();
    assert_eq!(out.len(), 1);
    assert!(out.contains_row(&[Some(Value::str("JONES"))]));

    // Updating an old row to record its TEL# makes it qualify too.
    db.table_mut("EMP")
        .unwrap()
        .update_where(
            &Predicate::attr_const(e_no, CompareOp::Eq, 1120),
            &[(tel, Some(Value::int(2_700_000)))],
        )
        .unwrap();
    let out = execute(
        &db,
        "range of e is EMP retrieve (e.NAME) where e.TEL# > 2000000",
    )
    .unwrap();
    assert_eq!(out.len(), 2);

    // Dropping the column nulls it out everywhere and the query returns
    // nothing again.
    db.table_mut("EMP").unwrap().drop_column(tel).unwrap();
    let err = execute(
        &db,
        "range of e is EMP retrieve (e.NAME) where e.TEL# > 2000000",
    );
    assert!(err.is_err(), "the column no longer exists in the schema");
}
