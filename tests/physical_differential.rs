//! Differential tests for the physical execution engine (experiment E12):
//! the optimized physical pipeline must produce exactly the same minimal
//! x-relation as the seed's tree-walk `Expr::eval(&NoSource)` oracle — on
//! the paper's PS / suppliers–parts fixtures, on null-heavy variants, and
//! on randomly generated plans.

use proptest::prelude::*;

use nullrel::core::algebra::{Expr, NoSource};
use nullrel::core::prelude::*;
use nullrel::exec::{execute_expr, execute_expr_band};
use nullrel::query::{execute, execute_resolved_naive, parse, resolve};
use nullrel::storage::{Database, SchemaBuilder};

/// The PS relation of display (6.6), including the suppliers with unknown
/// parts — the null-heavy rows the minimal representation must handle.
fn ps_database() -> Database {
    let mut db = Database::new();
    db.create_table(SchemaBuilder::new("PS").column("S#").column("P#"))
        .unwrap();
    let u = db.universe().clone();
    let t = db.table_mut("PS").unwrap();
    for (s, p) in [
        (Some("s1"), Some("p1")),
        (Some("s1"), Some("p2")),
        (Some("s1"), None),
        (Some("s2"), Some("p1")),
        (Some("s2"), None),
        (Some("s3"), None),
        (None, Some("p4")),
        (Some("s4"), Some("p4")),
    ] {
        let mut cells: Vec<(&str, Value)> = Vec::new();
        if let Some(s) = s {
            cells.push(("S#", Value::str(s)));
        }
        if let Some(p) = p {
            cells.push(("P#", Value::str(p)));
        }
        t.insert_named(&u, &cells).unwrap();
    }
    db
}

/// Runs one QUEL query through both evaluators and asserts identical
/// results (the engine's rows are the minimal representation either way).
fn differential(db: &Database, text: &str) {
    let engine = execute(db, text).expect("engine evaluates");
    let resolved = resolve(db, &parse(text).unwrap()).unwrap();
    let oracle = execute_resolved_naive(&resolved).expect("oracle evaluates");
    assert_eq!(
        engine.rows,
        oracle.rows,
        "engine and oracle disagree on {text:?}\nphysical plan:\n{}",
        engine.physical_plan()
    );
}

#[test]
fn suppliers_parts_queries_agree_with_the_oracle() {
    let db = ps_database();
    for text in [
        // Single range, constant selections (TRUE, FALSE and ni rows).
        "range of a is PS retrieve (a.S#)",
        "range of a is PS retrieve (a.P#) where a.S# = \"s1\"",
        "range of a is PS retrieve (a.S#) where a.P# = \"p1\"",
        "range of a is PS retrieve (a.S#, a.P#) where a.P# != \"p1\"",
        // Disjunctions cannot be split into conjuncts; they stay above.
        "range of a is PS retrieve (a.S#) where a.P# = \"p1\" or a.P# = \"p2\"",
        // Two-range equi-join (the hash-join path), plus mixed conjuncts.
        "range of a is PS range of b is PS retrieve (a.S#, b.S#) where a.P# = b.P#",
        "range of a is PS range of b is PS retrieve (a.S#) \
         where a.P# = b.P# and b.S# = \"s2\"",
        "range of a is PS range of b is PS retrieve (a.S#, b.P#) \
         where a.S# = b.S# and a.P# != b.P#",
        // A genuine Cartesian product (no equality connects the ranges).
        "range of a is PS range of b is PS retrieve (a.S#, b.P#) where a.S# = \"s1\"",
        // Three ranges: chained equality joins.
        "range of a is PS range of b is PS range of c is PS retrieve (a.S#, c.P#) \
         where a.P# = b.P# and b.S# = c.S#",
    ] {
        differential(&db, text);
    }
}

#[test]
fn indexed_and_unindexed_plans_agree() {
    let mut db = ps_database();
    let s = db.universe().lookup("S#").unwrap();
    let queries = [
        "range of a is PS retrieve (a.P#) where a.S# = \"s2\"",
        "range of a is PS range of b is PS retrieve (a.P#, b.P#) \
         where a.S# = \"s1\" and b.S# = \"s2\" and a.P# = b.P#",
    ];
    let before: Vec<_> = queries.iter().map(|q| execute(&db, q).unwrap()).collect();
    db.table_mut("PS").unwrap().create_index(vec![s]).unwrap();
    for (q, plain) in queries.iter().zip(before) {
        let indexed = execute(&db, q).unwrap();
        assert_eq!(
            indexed.rows, plain.rows,
            "index changed the answer of {q:?}"
        );
        assert!(
            indexed.stats.used_index(),
            "expected an index probe:\n{}",
            indexed.physical_plan()
        );
        differential(&db, q);
    }
}

// ---------------------------------------------------------------------
// Set operators, division, and the union-join: streaming vs the oracle
// ---------------------------------------------------------------------

/// Runs an algebra plan through the engine against the catalog and asserts
/// it produces exactly the tree-walk oracle's x-relation (TRUE band), that
/// the expected dedicated operator executed, and that no tree-walk fallback
/// (`EvalScan`) node exists anywhere in the plan.
fn differential_expr(db: &Database, expr: &Expr, operator: &str) -> XRelation {
    let oracle = expr.eval(db).expect("oracle evaluates");
    let (engine, stats) = execute_expr(expr, db, db.universe()).expect("engine evaluates");
    assert_eq!(
        engine, oracle,
        "engine and oracle disagree on {operator}\nphysical plan:\n{stats}"
    );
    assert!(
        stats.used_op(operator),
        "expected a dedicated {operator} operator:\n{stats}"
    );
    assert!(
        !stats.render().contains("EvalScan"),
        "fallback node:\n{stats}"
    );
    engine
}

/// The paper's Section 6 division (display (6.6)): suppliers who supply
/// every part s2 surely supplies — A₃ = {s1, s2} — plus the Q₄ difference
/// and the set operators, all over the null-heavy PS fixture.
#[test]
fn paper_set_op_and_division_queries_stream_through_the_engine() {
    let db = ps_database();
    let u = db.universe().clone();
    let s = u.lookup("S#").unwrap();
    let p = u.lookup("P#").unwrap();
    let by = |k: &str| {
        Expr::named("PS")
            .select(Predicate::attr_const(s, CompareOp::Eq, k))
            .project(attr_set([p]))
    };

    // Section 6, query Q / answer A₃.
    let a3 = differential_expr(
        &db,
        &Expr::named("PS").divide(attr_set([s]), by("s2")),
        "Divide",
    );
    assert_eq!(a3.len(), 2);
    assert!(a3.x_contains(&Tuple::new().with(s, Value::str("s1"))));
    assert!(a3.x_contains(&Tuple::new().with(s, Value::str("s2"))));

    // Section 6, query Q₄: parts supplied by s1 but not by s2 = {p2}.
    let q4 = differential_expr(&db, &by("s1").difference(by("s2")), "Difference");
    assert_eq!(q4.len(), 1);
    assert!(q4.x_contains(&Tuple::new().with(p, Value::str("p2"))));

    // Union and x-intersection of the same part sets.
    let union = differential_expr(&db, &by("s1").union(by("s2")), "Union");
    assert_eq!(union.len(), 2, "p1 and p2");
    let meet = differential_expr(&db, &by("s1").x_intersect(by("s2")), "XIntersect");
    assert_eq!(meet.len(), 1, "both supply p1 for sure");

    // Self union-join on S#: information-preserving, subsumes the operand.
    let uj = differential_expr(
        &db,
        &Expr::named("PS").union_join(Expr::named("PS"), attr_set([s])),
        "UnionJoin",
    );
    assert!(uj.contains(&db.table("PS").unwrap().to_xrelation()));

    // Division nested under further algebra: project the quotient.
    differential_expr(
        &db,
        &Expr::named("PS")
            .divide(attr_set([s]), by("s2"))
            .project(attr_set([s])),
        "Divide",
    );
}

/// The union-join of Section 5's EMP/DEPT example: the equijoin plus the
/// dangling tuples of both sides, re-minimised by the streaming sink.
#[test]
fn union_join_fixture_keeps_dangling_tuples_through_the_engine() {
    let mut db = Database::new();
    db.create_table(SchemaBuilder::new("EMP").column("E#").column("DEPT"))
        .unwrap();
    db.create_table(SchemaBuilder::new("DEP").column("DEPT").column("BUDGET"))
        .unwrap();
    let u = db.universe().clone();
    let e_no = u.lookup("E#").unwrap();
    let dept = u.lookup("DEPT").unwrap();
    let budget = u.lookup("BUDGET").unwrap();
    let t = db.table_mut("EMP").unwrap();
    t.insert_named(&u, &[("E#", Value::int(1)), ("DEPT", Value::str("D1"))])
        .unwrap();
    t.insert_named(&u, &[("E#", Value::int(2)), ("DEPT", Value::str("D9"))])
        .unwrap();
    t.insert_named(&u, &[("E#", Value::int(3))]).unwrap(); // DEPT is ni
    let t = db.table_mut("DEP").unwrap();
    t.insert_named(
        &u,
        &[("DEPT", Value::str("D1")), ("BUDGET", Value::int(100))],
    )
    .unwrap();
    t.insert_named(
        &u,
        &[("DEPT", Value::str("D2")), ("BUDGET", Value::int(200))],
    )
    .unwrap();

    let expr = Expr::named("EMP").union_join(Expr::named("DEP"), attr_set([dept]));
    let out = differential_expr(&db, &expr, "UnionJoin");
    // Joined D1 pair + dangling E#2, E#3 (ni DEPT), and D2.
    assert_eq!(out.len(), 4);
    assert!(out.x_contains(
        &Tuple::new()
            .with(e_no, Value::int(1))
            .with(dept, Value::str("D1"))
            .with(budget, Value::int(100))
    ));
    assert!(out.x_contains(&Tuple::new().with(e_no, Value::int(3))));
}

/// Satellite regression: a renamed sub-plan (non-`Named` input) stays
/// pipelined and agrees with the oracle.
#[test]
fn renamed_subplans_stay_pipelined() {
    let db = ps_database();
    let mut u = db.universe().clone();
    let s = u.lookup("S#").unwrap();
    let p = u.lookup("P#").unwrap();
    let q = u.intern("Q#");
    let expr = Expr::named("PS")
        .project(attr_set([p]))
        .rename([(p, q)].into_iter().collect())
        .product(Expr::named("PS").project(attr_set([s])));
    let oracle = expr.eval(&db).unwrap();
    let (engine, stats) = execute_expr(&expr, &db, &u).unwrap();
    assert_eq!(engine, oracle, "plan:\n{stats}");
    assert!(stats.used_op("Rename"), "plan:\n{stats}");
    assert!(!stats.render().contains("EvalScan"), "plan:\n{stats}");
}

// ---------------------------------------------------------------------
// MAYBE band: filters below the new operators keep the ni band
// ---------------------------------------------------------------------

/// The ni band of a predicate over a literal's minimal representation —
/// the hand oracle for MAYBE-band pipelines (literal scans stream exactly
/// the minimal representation, so the band is representation-stable).
fn ni_band(rel: &XRelation, predicate: &Predicate) -> Vec<Tuple> {
    rel.tuples()
        .iter()
        .filter(|t| predicate.eval(t).unwrap().is_ni())
        .cloned()
        .collect()
}

#[test]
fn maybe_band_flows_through_set_operators_and_division() {
    let mut u = Universe::new();
    let s = u.intern("S#");
    let p = u.intern("P#");
    let st = |sv: Option<&str>, pv: Option<&str>| {
        Tuple::new()
            .with_opt(s, sv.map(Value::str))
            .with_opt(p, pv.map(Value::str))
    };
    let a = XRelation::from_tuples([
        st(Some("s1"), Some("p1")),
        st(Some("s2"), None),
        st(None, Some("p4")),
    ]);
    let b = XRelation::from_tuples([st(Some("s3"), None), st(Some("s4"), Some("p2"))]);
    let pred = Predicate::attr_const(p, CompareOp::Eq, "p1");

    // Union of two ni-band selections.
    let plan = Expr::literal(a.clone())
        .select(pred.clone())
        .union(Expr::literal(b.clone()).select(pred.clone()));
    let (engine, stats) = execute_expr_band(&plan, &NoSource, &u, Truth::Ni).unwrap();
    let oracle = lattice::union(
        &XRelation::from_tuples(ni_band(&a, &pred)),
        &XRelation::from_tuples(ni_band(&b, &pred)),
    );
    assert_eq!(engine, oracle, "plan:\n{stats}");
    assert_eq!(engine.len(), 2, "the two null-P# rows may supply p1");

    // Difference whose minuend is an ni-band selection.
    let plan = Expr::literal(a.clone())
        .select(pred.clone())
        .difference(Expr::literal(b.clone()));
    let (engine, stats) = execute_expr_band(&plan, &NoSource, &u, Truth::Ni).unwrap();
    let oracle = lattice::difference(&XRelation::from_tuples(ni_band(&a, &pred)), &b);
    assert_eq!(engine, oracle, "plan:\n{stats}");

    // X-intersection of two ni-band selections.
    let plan = Expr::literal(a.clone())
        .select(pred.clone())
        .x_intersect(Expr::literal(a.clone()).select(pred.clone()));
    let (engine, stats) = execute_expr_band(&plan, &NoSource, &u, Truth::Ni).unwrap();
    let band = XRelation::from_tuples(ni_band(&a, &pred));
    assert_eq!(
        engine,
        lattice::x_intersection(&band, &band),
        "plan:\n{stats}"
    );

    // Division whose dividend is an ni-band selection.
    let divisor = XRelation::from_tuples([st(None, Some("p4"))]);
    let plan = Expr::literal(a.clone())
        .select(Predicate::attr_const(s, CompareOp::Eq, "s2"))
        .divide(attr_set([s]), Expr::literal(divisor.clone()));
    let (engine, stats) = execute_expr_band(&plan, &NoSource, &u, Truth::Ni).unwrap();
    let band = XRelation::from_tuples(ni_band(&a, &Predicate::attr_const(s, CompareOp::Eq, "s2")));
    let oracle = nullrel::core::algebra::divide(&band, &attr_set([s]), &divisor).unwrap();
    assert_eq!(engine, oracle, "plan:\n{stats}");

    // Union-join whose left side is an ni-band selection.
    let plan = Expr::literal(a.clone())
        .select(pred.clone())
        .union_join(Expr::literal(b.clone()), attr_set([s]));
    let (engine, stats) = execute_expr_band(&plan, &NoSource, &u, Truth::Ni).unwrap();
    let oracle = nullrel::core::algebra::union_join(
        &XRelation::from_tuples(ni_band(&a, &pred)),
        &b,
        &attr_set([s]),
    )
    .unwrap();
    assert_eq!(engine, oracle, "plan:\n{stats}");
}

// ---------------------------------------------------------------------
// Randomised differential testing over literal plans
// ---------------------------------------------------------------------

/// Strategy: a tuple over the given attribute ids, each cell null with
/// probability ~1/4 (null-heavy by construction) or a tiny integer so that
/// joins, subsumption, and ni comparisons all actually occur.
fn arb_tuple(offset: usize, attrs: usize) -> impl Strategy<Value = Tuple> {
    proptest::collection::vec(proptest::option::of(0i64..3), attrs).prop_map(move |cells| {
        let mut t = Tuple::new();
        for (i, cell) in cells.into_iter().enumerate() {
            if let Some(v) = cell {
                t.set(AttrId::from_index(offset + i), Some(Value::int(v)));
            }
        }
        t
    })
}

fn arb_xrel(offset: usize, attrs: usize) -> impl Strategy<Value = XRelation> {
    proptest::collection::vec(arb_tuple(offset, attrs), 0..8).prop_map(XRelation::from_tuples)
}

fn universe() -> Universe {
    let mut u = Universe::new();
    for i in 0..4 {
        u.intern(&format!("A{i}"));
    }
    u
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Optimized pipelines agree with the oracle on random join plans:
    /// Project(Select(Product(L, R))) with an equi-join conjunct plus a
    /// constant conjunct — the exact shape the optimizer rewrites.
    #[test]
    fn random_join_plans_agree(
        left in arb_xrel(0, 2),
        right in arb_xrel(2, 2),
        k in 0i64..3,
    ) {
        let u = universe();
        let a0 = AttrId::from_index(0);
        let a1 = AttrId::from_index(1);
        let a2 = AttrId::from_index(2);
        let a3 = AttrId::from_index(3);
        let plan = Expr::literal(left)
            .product(Expr::literal(right))
            .select(
                Predicate::attr_attr(a1, CompareOp::Eq, a2)
                    .and(Predicate::attr_const(a0, CompareOp::Ge, k)),
            )
            .project(attr_set([a0, a3]));
        let oracle = plan.eval(&NoSource).unwrap();
        let (engine, _) = execute_expr(&plan, &NoSource, &u).unwrap();
        prop_assert_eq!(engine, oracle);
    }

    /// Disjunctive and negated predicates (which the optimizer must leave
    /// above the product) also agree.
    #[test]
    fn random_disjunction_plans_agree(
        left in arb_xrel(0, 2),
        right in arb_xrel(2, 2),
        k in 0i64..3,
    ) {
        let u = universe();
        let a0 = AttrId::from_index(0);
        let a2 = AttrId::from_index(2);
        let plan = Expr::literal(left)
            .product(Expr::literal(right))
            .select(
                Predicate::attr_const(a0, CompareOp::Eq, k)
                    .or(Predicate::attr_attr(a0, CompareOp::Lt, a2).negate()),
            )
            .project(attr_set([a0, a2]));
        let oracle = plan.eval(&NoSource).unwrap();
        let (engine, _) = execute_expr(&plan, &NoSource, &u).unwrap();
        prop_assert_eq!(engine, oracle);
    }

    /// Pure selection/projection plans over a single null-heavy relation.
    #[test]
    fn random_single_range_plans_agree(rel in arb_xrel(0, 3), k in 0i64..3) {
        let u = universe();
        let a0 = AttrId::from_index(0);
        let a1 = AttrId::from_index(1);
        let plan = Expr::literal(rel)
            .select(Predicate::attr_const(a0, CompareOp::Ne, k))
            .project(attr_set([a0, a1]));
        let oracle = plan.eval(&NoSource).unwrap();
        let (engine, _) = execute_expr(&plan, &NoSource, &u).unwrap();
        prop_assert_eq!(engine, oracle);
    }

    /// Set-operator compositions — `σ((A ∪ B) − (B ∩̂ C))` — exercising the
    /// streaming Union/Difference/XIntersect operators and the
    /// pushdown-through-union/difference optimizer rules.
    #[test]
    fn random_set_op_plans_agree(
        a in arb_xrel(0, 2),
        b in arb_xrel(0, 2),
        c in arb_xrel(0, 2),
        k in 0i64..3,
    ) {
        let u = universe();
        let a0 = AttrId::from_index(0);
        let plan = Expr::literal(a)
            .union(Expr::literal(b.clone()))
            .difference(Expr::literal(b).x_intersect(Expr::literal(c)))
            .select(Predicate::attr_const(a0, CompareOp::Ne, k));
        let oracle = plan.eval(&NoSource).unwrap();
        let (engine, _) = execute_expr(&plan, &NoSource, &u).unwrap();
        prop_assert_eq!(engine, oracle);
    }

    /// Division over null-heavy random dividends (the divisor's scope is
    /// disjoint from the quotient attribute by construction).
    #[test]
    fn random_division_plans_agree(rel in arb_xrel(0, 3), divisor in arb_xrel(1, 2)) {
        let u = universe();
        let a0 = AttrId::from_index(0);
        let plan = Expr::literal(rel).divide(attr_set([a0]), Expr::literal(divisor));
        let oracle = plan.eval(&NoSource).unwrap();
        let (engine, _) = execute_expr(&plan, &NoSource, &u).unwrap();
        prop_assert_eq!(engine, oracle);
    }

    /// Equijoin and union-join on a shared key whose operand scopes overlap
    /// beyond the key — the representation-sensitive case the operators
    /// handle by reducing their inputs to minimal form.
    #[test]
    fn random_union_join_plans_agree(left in arb_xrel(0, 3), right in arb_xrel(1, 3)) {
        let u = universe();
        let on = attr_set([AttrId::from_index(1)]);
        let uj = Expr::literal(left.clone())
            .union_join(Expr::literal(right.clone()), on.clone());
        let oracle = uj.eval(&NoSource).unwrap();
        let (engine, _) = execute_expr(&uj, &NoSource, &u).unwrap();
        prop_assert_eq!(engine, oracle, "union-join");

        let ej = Expr::literal(left).equijoin(Expr::literal(right), on);
        let oracle = ej.eval(&NoSource).unwrap();
        let (engine, _) = execute_expr(&ej, &NoSource, &u).unwrap();
        prop_assert_eq!(engine, oracle, "equijoin");
    }

    /// MAYBE band over a union of selections: the engine's ni-band pipeline
    /// equals the hand-computed ni bands of both branches, unioned.
    #[test]
    fn random_maybe_band_union_plans_agree(
        a in arb_xrel(0, 2),
        b in arb_xrel(0, 2),
        k in 0i64..3,
    ) {
        let u = universe();
        let pred = Predicate::attr_const(AttrId::from_index(1), CompareOp::Eq, k);
        let plan = Expr::literal(a.clone())
            .select(pred.clone())
            .union(Expr::literal(b.clone()).select(pred.clone()));
        let (engine, _) = execute_expr_band(&plan, &NoSource, &u, Truth::Ni).unwrap();
        let ni = |rel: &XRelation| -> XRelation {
            rel.tuples()
                .iter()
                .filter(|t| pred.eval(t).unwrap().is_ni())
                .cloned()
                .collect()
        };
        prop_assert_eq!(engine, lattice::union(&ni(&a), &ni(&b)));
    }
}
