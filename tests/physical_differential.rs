//! Differential tests for the physical execution engine (experiment E12):
//! the optimized physical pipeline must produce exactly the same minimal
//! x-relation as the seed's tree-walk `Expr::eval(&NoSource)` oracle — on
//! the paper's PS / suppliers–parts fixtures, on null-heavy variants, and
//! on randomly generated plans.

use proptest::prelude::*;

use nullrel::core::algebra::{Expr, NoSource};
use nullrel::core::prelude::*;
use nullrel::exec::execute_expr;
use nullrel::query::{execute, execute_resolved_naive, parse, resolve};
use nullrel::storage::{Database, SchemaBuilder};

/// The PS relation of display (6.6), including the suppliers with unknown
/// parts — the null-heavy rows the minimal representation must handle.
fn ps_database() -> Database {
    let mut db = Database::new();
    db.create_table(SchemaBuilder::new("PS").column("S#").column("P#"))
        .unwrap();
    let u = db.universe().clone();
    let t = db.table_mut("PS").unwrap();
    for (s, p) in [
        (Some("s1"), Some("p1")),
        (Some("s1"), Some("p2")),
        (Some("s1"), None),
        (Some("s2"), Some("p1")),
        (Some("s2"), None),
        (Some("s3"), None),
        (None, Some("p4")),
        (Some("s4"), Some("p4")),
    ] {
        let mut cells: Vec<(&str, Value)> = Vec::new();
        if let Some(s) = s {
            cells.push(("S#", Value::str(s)));
        }
        if let Some(p) = p {
            cells.push(("P#", Value::str(p)));
        }
        t.insert_named(&u, &cells).unwrap();
    }
    db
}

/// Runs one QUEL query through both evaluators and asserts identical
/// results (the engine's rows are the minimal representation either way).
fn differential(db: &Database, text: &str) {
    let engine = execute(db, text).expect("engine evaluates");
    let resolved = resolve(db, &parse(text).unwrap()).unwrap();
    let oracle = execute_resolved_naive(&resolved).expect("oracle evaluates");
    assert_eq!(
        engine.rows, oracle.rows,
        "engine and oracle disagree on {text:?}\nphysical plan:\n{}",
        engine.physical_plan()
    );
}

#[test]
fn suppliers_parts_queries_agree_with_the_oracle() {
    let db = ps_database();
    for text in [
        // Single range, constant selections (TRUE, FALSE and ni rows).
        "range of a is PS retrieve (a.S#)",
        "range of a is PS retrieve (a.P#) where a.S# = \"s1\"",
        "range of a is PS retrieve (a.S#) where a.P# = \"p1\"",
        "range of a is PS retrieve (a.S#, a.P#) where a.P# != \"p1\"",
        // Disjunctions cannot be split into conjuncts; they stay above.
        "range of a is PS retrieve (a.S#) where a.P# = \"p1\" or a.P# = \"p2\"",
        // Two-range equi-join (the hash-join path), plus mixed conjuncts.
        "range of a is PS range of b is PS retrieve (a.S#, b.S#) where a.P# = b.P#",
        "range of a is PS range of b is PS retrieve (a.S#) \
         where a.P# = b.P# and b.S# = \"s2\"",
        "range of a is PS range of b is PS retrieve (a.S#, b.P#) \
         where a.S# = b.S# and a.P# != b.P#",
        // A genuine Cartesian product (no equality connects the ranges).
        "range of a is PS range of b is PS retrieve (a.S#, b.P#) where a.S# = \"s1\"",
        // Three ranges: chained equality joins.
        "range of a is PS range of b is PS range of c is PS retrieve (a.S#, c.P#) \
         where a.P# = b.P# and b.S# = c.S#",
    ] {
        differential(&db, text);
    }
}

#[test]
fn indexed_and_unindexed_plans_agree() {
    let mut db = ps_database();
    let s = db.universe().lookup("S#").unwrap();
    let queries = [
        "range of a is PS retrieve (a.P#) where a.S# = \"s2\"",
        "range of a is PS range of b is PS retrieve (a.P#, b.P#) \
         where a.S# = \"s1\" and b.S# = \"s2\" and a.P# = b.P#",
    ];
    let before: Vec<_> = queries.iter().map(|q| execute(&db, q).unwrap()).collect();
    db.table_mut("PS").unwrap().create_index(vec![s]).unwrap();
    for (q, plain) in queries.iter().zip(before) {
        let indexed = execute(&db, q).unwrap();
        assert_eq!(indexed.rows, plain.rows, "index changed the answer of {q:?}");
        assert!(
            indexed.stats.used_index(),
            "expected an index probe:\n{}",
            indexed.physical_plan()
        );
        differential(&db, q);
    }
}

// ---------------------------------------------------------------------
// Randomised differential testing over literal plans
// ---------------------------------------------------------------------

/// Strategy: a tuple over the given attribute ids, each cell null with
/// probability ~1/4 (null-heavy by construction) or a tiny integer so that
/// joins, subsumption, and ni comparisons all actually occur.
fn arb_tuple(offset: usize, attrs: usize) -> impl Strategy<Value = Tuple> {
    proptest::collection::vec(proptest::option::of(0i64..3), attrs).prop_map(move |cells| {
        let mut t = Tuple::new();
        for (i, cell) in cells.into_iter().enumerate() {
            if let Some(v) = cell {
                t.set(AttrId::from_index(offset + i), Some(Value::int(v)));
            }
        }
        t
    })
}

fn arb_xrel(offset: usize, attrs: usize) -> impl Strategy<Value = XRelation> {
    proptest::collection::vec(arb_tuple(offset, attrs), 0..8).prop_map(XRelation::from_tuples)
}

fn universe() -> Universe {
    let mut u = Universe::new();
    for i in 0..4 {
        u.intern(&format!("A{i}"));
    }
    u
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Optimized pipelines agree with the oracle on random join plans:
    /// Project(Select(Product(L, R))) with an equi-join conjunct plus a
    /// constant conjunct — the exact shape the optimizer rewrites.
    #[test]
    fn random_join_plans_agree(
        left in arb_xrel(0, 2),
        right in arb_xrel(2, 2),
        k in 0i64..3,
    ) {
        let u = universe();
        let a0 = AttrId::from_index(0);
        let a1 = AttrId::from_index(1);
        let a2 = AttrId::from_index(2);
        let a3 = AttrId::from_index(3);
        let plan = Expr::literal(left)
            .product(Expr::literal(right))
            .select(
                Predicate::attr_attr(a1, CompareOp::Eq, a2)
                    .and(Predicate::attr_const(a0, CompareOp::Ge, k)),
            )
            .project(attr_set([a0, a3]));
        let oracle = plan.eval(&NoSource).unwrap();
        let (engine, _) = execute_expr(&plan, &NoSource, &u).unwrap();
        prop_assert_eq!(engine, oracle);
    }

    /// Disjunctive and negated predicates (which the optimizer must leave
    /// above the product) also agree.
    #[test]
    fn random_disjunction_plans_agree(
        left in arb_xrel(0, 2),
        right in arb_xrel(2, 2),
        k in 0i64..3,
    ) {
        let u = universe();
        let a0 = AttrId::from_index(0);
        let a2 = AttrId::from_index(2);
        let plan = Expr::literal(left)
            .product(Expr::literal(right))
            .select(
                Predicate::attr_const(a0, CompareOp::Eq, k)
                    .or(Predicate::attr_attr(a0, CompareOp::Lt, a2).negate()),
            )
            .project(attr_set([a0, a2]));
        let oracle = plan.eval(&NoSource).unwrap();
        let (engine, _) = execute_expr(&plan, &NoSource, &u).unwrap();
        prop_assert_eq!(engine, oracle);
    }

    /// Pure selection/projection plans over a single null-heavy relation.
    #[test]
    fn random_single_range_plans_agree(rel in arb_xrel(0, 3), k in 0i64..3) {
        let u = universe();
        let a0 = AttrId::from_index(0);
        let a1 = AttrId::from_index(1);
        let plan = Expr::literal(rel)
            .select(Predicate::attr_const(a0, CompareOp::Ne, k))
            .project(attr_set([a0, a1]));
        let oracle = plan.eval(&NoSource).unwrap();
        let (engine, _) = execute_expr(&plan, &NoSource, &u).unwrap();
        prop_assert_eq!(engine, oracle);
    }
}
