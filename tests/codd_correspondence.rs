//! Experiment E11 (Section 7): the embedding of Codd relations into total
//! x-relations is one-to-one and preserves union, difference, Cartesian
//! product, selection, and projection — so "one can operate on the realm of
//! total x-relations instead of operating upon Codd relations".

use proptest::prelude::*;

use nullrel::codd::TotalRelation;
use nullrel::core::algebra::{product, project, select};
use nullrel::core::prelude::*;

const ATTRS: usize = 3;

/// Strategy: a total relation over attribute ids 0..ATTRS with small integer
/// values (small domains make collisions, and therefore interesting unions
/// and differences, likely).
fn arb_total_relation(offset: usize) -> impl Strategy<Value = TotalRelation> {
    proptest::collection::vec(proptest::collection::vec(0i64..3, ATTRS), 0..8).prop_map(
        move |rows| {
            let attrs: Vec<AttrId> = (0..ATTRS).map(|i| AttrId::from_index(offset + i)).collect();
            let mut rel = TotalRelation::new(attrs);
            for row in rows {
                rel.insert(row.into_iter().map(Value::int).collect())
                    .unwrap();
            }
            rel
        },
    )
}

fn attrs(offset: usize) -> Vec<AttrId> {
    (0..ATTRS).map(|i| AttrId::from_index(offset + i)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Property (1): unions and differences commute with the embedding, and
    /// containment is preserved.
    #[test]
    fn union_difference_and_containment_are_preserved(
        r1 in arb_total_relation(0),
        r2 in arb_total_relation(0),
    ) {
        let x1 = r1.to_xrelation();
        let x2 = r2.to_xrelation();
        prop_assert_eq!(r1.union(&r2).unwrap().to_xrelation(), lattice::union(&x1, &x2));
        prop_assert_eq!(
            r1.difference(&r2).unwrap().to_xrelation(),
            lattice::difference(&x1, &x2)
        );
        prop_assert_eq!(r1.contains_all(&r2).unwrap(), x1.contains(&x2));
    }

    /// Property (2): the Cartesian product commutes with the embedding.
    #[test]
    fn cartesian_product_is_preserved(
        r1 in arb_total_relation(0),
        r2 in arb_total_relation(ATTRS),
    ) {
        let prod = r1.product(&r2).unwrap();
        let x_prod = product(&r1.to_xrelation(), &r2.to_xrelation()).unwrap();
        prop_assert_eq!(prod.to_xrelation(), x_prod);
    }

    /// Properties (3)/(4): selections commute with the embedding.
    #[test]
    fn selection_is_preserved(r in arb_total_relation(0), k in 0i64..3) {
        let a = attrs(0);
        let eq_const = Predicate::attr_const(a[0], CompareOp::Eq, k);
        prop_assert_eq!(
            r.select(&eq_const).unwrap().to_xrelation(),
            select(&r.to_xrelation(), &eq_const).unwrap()
        );
        let attr_cmp = Predicate::attr_attr(a[0], CompareOp::Lt, a[1]);
        prop_assert_eq!(
            r.select(&attr_cmp).unwrap().to_xrelation(),
            select(&r.to_xrelation(), &attr_cmp).unwrap()
        );
    }

    /// Property (5): projections commute with the embedding.
    #[test]
    fn projection_is_preserved(r in arb_total_relation(0)) {
        let a = attrs(0);
        let onto = [a[0], a[2]];
        prop_assert_eq!(
            r.project(&onto).unwrap().to_xrelation(),
            project(&r.to_xrelation(), &onto.iter().copied().collect())
        );
    }

    /// The embedding is injective: distinct Codd relations map to distinct
    /// total x-relations, and the round trip through the x-relation
    /// representation is lossless.
    #[test]
    fn embedding_is_injective_and_lossless(
        r1 in arb_total_relation(0),
        r2 in arb_total_relation(0),
    ) {
        let x1 = r1.to_xrelation();
        prop_assert_eq!(x1 == r2.to_xrelation(), r1 == r2);
        if !r1.is_empty() {
            let back = TotalRelation::from_xrelation(&x1, &attrs(0)).unwrap();
            prop_assert_eq!(back, r1);
        }
    }
}

/// A concrete spot check with named attributes, mirroring the paper's
/// formulation of conditions (1)–(5).
#[test]
fn concrete_correspondence_example() {
    let mut universe = Universe::new();
    let s = universe.intern("S#");
    let p = universe.intern("P#");
    let mut r1 = TotalRelation::new([s, p]);
    r1.insert(vec![Value::str("s1"), Value::str("p1")]).unwrap();
    r1.insert(vec![Value::str("s2"), Value::str("p1")]).unwrap();
    let mut r2 = TotalRelation::new([s, p]);
    r2.insert(vec![Value::str("s1"), Value::str("p1")]).unwrap();

    assert!(r1.contains_all(&r2).unwrap());
    assert!(r1.to_xrelation().contains(&r2.to_xrelation()));
    assert_eq!(
        r1.difference(&r2).unwrap().to_xrelation(),
        lattice::difference(&r1.to_xrelation(), &r2.to_xrelation())
    );
    assert_eq!(
        r1.project(&[s]).unwrap().to_xrelation(),
        project(&r1.to_xrelation(), &attr_set([s]))
    );
}
