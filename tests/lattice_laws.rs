//! Experiment E8: property-based verification of the lattice structure of
//! x-relations (Propositions 4.1, 4.4–4.7, distributivity, absorption) and
//! of the agreement between the naïve and hash-accelerated implementations
//! of the set operations.

use proptest::prelude::*;

use nullrel::core::lattice::{self, hashed, laws, naive};
use nullrel::core::prelude::*;

/// Strategy: a tuple over up to 4 attributes (ids 0..4), each cell either
/// null or a small integer. Small domains maximise the chance of meets,
/// joins, and subsumption actually occurring.
fn arb_tuple() -> impl Strategy<Value = Tuple> {
    proptest::collection::vec(proptest::option::of(0i64..4), 4).prop_map(|cells| {
        let mut tuple = Tuple::new();
        for (i, cell) in cells.into_iter().enumerate() {
            if let Some(v) = cell {
                tuple.set(AttrId::from_index(i), Some(Value::int(v)));
            }
        }
        tuple
    })
}

fn arb_xrelation(max_tuples: usize) -> impl Strategy<Value = XRelation> {
    proptest::collection::vec(arb_tuple(), 0..max_tuples).prop_map(XRelation::from_tuples)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn canonical_minimality(rel in arb_xrelation(8)) {
        prop_assert!(nullrel::core::xrel::is_antichain(rel.tuples()));
    }

    #[test]
    fn union_and_intersection_are_bounds(a in arb_xrelation(8), b in arb_xrelation(8)) {
        prop_assert!(laws::union_is_upper_bound(&a, &b));
        prop_assert!(laws::intersection_is_lower_bound(&a, &b));
        prop_assert!(laws::union_is_least_upper_bound(&lattice::union(&a, &b), &a, &b));
        prop_assert!(laws::intersection_is_greatest_lower_bound(
            &lattice::x_intersection(&a, &b), &a, &b));
    }

    #[test]
    fn semilattice_absorption_distributivity(
        a in arb_xrelation(6),
        b in arb_xrelation(6),
        c in arb_xrelation(6),
    ) {
        prop_assert!(laws::semilattice_laws(&a, &b, &c));
        prop_assert!(laws::absorption(&a, &b));
        prop_assert!(laws::distributive_meet_over_join(&a, &b, &c));
        prop_assert!(laws::distributive_join_over_meet(&a, &b, &c));
    }

    #[test]
    fn containment_is_a_partial_order_and_ops_are_monotone(
        a in arb_xrelation(6),
        b in arb_xrelation(6),
        c in arb_xrelation(6),
    ) {
        prop_assert!(laws::containment_is_partial_order(&a, &b, &c));
        prop_assert!(laws::mutual_containment_is_equality(&a, &b));
        // a ⊑ a ∪ c, so monotonicity applies with a2 = a ∪ c.
        prop_assert!(laws::operations_are_monotone(&a, &lattice::union(&a, &c), &b));
    }

    #[test]
    fn difference_propositions_4_6_and_4_7(a in arb_xrelation(8), b in arb_xrelation(8)) {
        let bigger = lattice::union(&a, &b);
        prop_assert!(laws::difference_restores_under_containment(&bigger, &a));
        prop_assert!(laws::difference_is_smallest_restorer(&b, &bigger, &a));
        // Difference with self is always empty; difference against the
        // bottom is the identity.
        prop_assert!(lattice::difference(&a, &a).is_empty());
        prop_assert_eq!(lattice::difference(&a, &XRelation::empty()), a.clone());
    }

    #[test]
    fn hashed_and_naive_implementations_agree(a in arb_xrelation(10), b in arb_xrelation(10)) {
        prop_assert_eq!(naive::union(&a, &b), hashed::union(&a, &b));
        prop_assert_eq!(naive::x_intersection(&a, &b), hashed::x_intersection(&a, &b));
        prop_assert_eq!(naive::difference(&a, &b), hashed::difference(&a, &b));
        prop_assert_eq!(naive::contains(&a, &b), hashed::contains(&a, &b));
    }

    #[test]
    fn x_membership_is_downward_closed(rel in arb_xrelation(8), t in arb_tuple()) {
        // If a tuple x-belongs, every less informative tuple x-belongs too.
        if rel.x_contains(&t) {
            let weaker = t.project(&attr_set(t.defined_attrs().into_iter().take(1)));
            prop_assert!(rel.x_contains(&weaker));
        }
    }

    #[test]
    fn meet_and_join_of_tuples_are_lattice_operations(a in arb_tuple(), b in arb_tuple()) {
        let meet = a.meet(&b);
        prop_assert!(a.more_informative_than(&meet));
        prop_assert!(b.more_informative_than(&meet));
        if let Some(join) = a.join(&b) {
            prop_assert!(join.more_informative_than(&a));
            prop_assert!(join.more_informative_than(&b));
            prop_assert!(join.more_informative_than(&meet));
        } else {
            // Not joinable: they must disagree on some common attribute.
            prop_assert!(!a.joinable(&b));
        }
    }
}

/// The no-complement counterexample of Section 4 and the pseudo-complement
/// facts of Section 7, on the paper's own two-attribute universe.
#[test]
fn pseudo_complement_facts() {
    let mut universe = Universe::new();
    let a = universe.intern_with_domain("A", Domain::Enumerated(vec![Value::str("a1")]));
    let b = universe.intern_with_domain(
        "B",
        Domain::Enumerated(vec![Value::str("b1"), Value::str("b2")]),
    );
    let attrs = attr_set([a, b]);
    let r = XRelation::from_tuples([Tuple::new()
        .with(a, Value::str("a1"))
        .with(b, Value::str("b1"))]);
    let top = lattice::top(&universe, &attrs, lattice::DEFAULT_TOP_LIMIT).unwrap();
    let star =
        lattice::pseudo_complement(&r, &universe, &attrs, lattice::DEFAULT_TOP_LIMIT).unwrap();
    // R ∪ R* = TOP, and R* is the smallest such (checked against every
    // sub-relation of TOP on this tiny universe).
    assert_eq!(lattice::union(&r, &star), top);
    assert!(star.is_total());
    // The x-intersection with the pseudo-complement is not empty — there is
    // no true complement (Section 4's counterexample).
    assert!(!lattice::x_intersection(&r, &star).is_empty());
}
