//! Experiments E6 and E7 (Section 6): the division comparison on the PS
//! relation of display (6.6) and the difference query Q₄.

use nullrel::codd::maybe::{divide_maybe, divide_true, project_codd, select_true};
use nullrel::core::algebra::{divide, divide_direct, project, select_attr_const};
use nullrel::core::prelude::*;
use nullrel::storage::loader::paper;

fn fixtures() -> (Universe, Relation, XRelation, AttrId, AttrId) {
    let mut universe = Universe::new();
    let ps = paper::ps_66(&mut universe);
    let s = universe.require("S#").unwrap();
    let p = universe.require("P#").unwrap();
    let ps_x = XRelation::from_relation(&ps);
    (universe, ps, ps_x, s, p)
}

fn supplier(s: AttrId, name: &str) -> Tuple {
    Tuple::new().with(s, Value::str(name))
}

/// E6: A₁ = ∅ (Codd TRUE), A₂ = {s1,s2,s3} (Codd MAYBE), A₃ = {s1,s2}
/// (the paper's Y-quotient).
#[test]
fn division_comparison_matches_the_paper() {
    let (_u, ps, ps_x, s, p) = fixtures();

    let codd_p_s2 = project_codd(
        &select_true(&ps, &Predicate::attr_const(s, CompareOp::Eq, "s2")).unwrap(),
        &[p],
    );
    // Display (6.9): P_{s2} = {p1, -} under Codd.
    assert_eq!(codd_p_s2.len(), 2);
    assert!(codd_p_s2.contains(&Tuple::new()));

    let a1 = divide_true(&ps, &attr_set([s]), &codd_p_s2).unwrap();
    assert!(a1.is_empty(), "A1 = ∅");

    let a2 = divide_maybe(&ps, &attr_set([s]), &codd_p_s2).unwrap();
    assert_eq!(a2.len(), 3);
    for name in ["s1", "s2", "s3"] {
        assert!(a2.contains(&supplier(s, name)), "{name} ∈ A2");
    }

    let p_s2 = project(
        &select_attr_const(&ps_x, s, CompareOp::Eq, Value::str("s2")).unwrap(),
        &attr_set([p]),
    );
    assert_eq!(p_s2.len(), 1, "minimal P_s2 = {{p1}}");
    let a3 = divide(&ps_x, &attr_set([s]), &p_s2).unwrap();
    assert_eq!(a3.len(), 2);
    assert!(a3.x_contains(&supplier(s, "s1")));
    assert!(a3.x_contains(&supplier(s, "s2")));
    // Both formulations of the Y-quotient agree.
    assert_eq!(a3, divide_direct(&ps_x, &attr_set([s]), &p_s2).unwrap());
}

/// The paradox the paper calls out: under Codd's TRUE division, "for sure,
/// s2 does not supply all the parts s2 supplies"; the Y-quotient never
/// produces that contradiction, for any supplier.
#[test]
fn the_division_paradox_is_avoided() {
    let (_u, ps, ps_x, s, p) = fixtures();
    for name in ["s1", "s2", "s3", "s4"] {
        // Codd pipeline.
        let codd_parts = project_codd(
            &select_true(&ps, &Predicate::attr_const(s, CompareOp::Eq, name)).unwrap(),
            &[p],
        );
        let codd_answer = divide_true(&ps, &attr_set([s]), &codd_parts).unwrap();
        // Paper pipeline.
        let parts = project(
            &select_attr_const(&ps_x, s, CompareOp::Eq, Value::str(name)).unwrap(),
            &attr_set([p]),
        );
        let answer = divide(&ps_x, &attr_set([s]), &parts).unwrap();
        assert!(
            answer.x_contains(&supplier(s, name)),
            "{name} supplies every part it supplies for sure (paper semantics)"
        );
        if name != "s4" {
            // Suppliers with a null part tuple fall out of Codd's TRUE
            // quotient of their own parts — the paradox.
            assert!(
                !codd_answer.contains(&supplier(s, name)),
                "{name} exhibits the paradox under Codd's TRUE division"
            );
        }
    }
}

/// E7: Q₄ — "find all parts supplied by s1 but not by s2" = {p2}.
#[test]
fn q4_difference_query() {
    let (_u, _ps, ps_x, s, p) = fixtures();
    let by_s1 = project(
        &select_attr_const(&ps_x, s, CompareOp::Eq, Value::str("s1")).unwrap(),
        &attr_set([p]),
    );
    let by_s2 = project(
        &select_attr_const(&ps_x, s, CompareOp::Eq, Value::str("s2")).unwrap(),
        &attr_set([p]),
    );
    let a4 = lattice::difference(&by_s1, &by_s2);
    assert_eq!(a4.len(), 1);
    assert!(a4.x_contains(&Tuple::new().with(p, Value::str("p2"))));
}

/// The division expressed through the composable expression tree, evaluated
/// against a stored database — the full stack in one query.
#[test]
fn division_through_the_expression_tree_and_storage() {
    use nullrel::core::algebra::Expr;
    use nullrel::storage::{Database, SchemaBuilder};

    let mut db = Database::new();
    db.create_table(SchemaBuilder::new("PS").column("S#").column("P#"))
        .unwrap();
    let universe = db.universe().clone();
    {
        let table = db.table_mut("PS").unwrap();
        for (sv, pv) in [
            ("s1", Some("p1")),
            ("s1", Some("p2")),
            ("s2", Some("p1")),
            ("s3", None),
            ("s4", Some("p4")),
        ] {
            let mut cells = vec![("S#", Value::str(sv))];
            if let Some(pv) = pv {
                cells.push(("P#", Value::str(pv)));
            }
            table.insert_named(&universe, &cells).unwrap();
        }
    }
    let s = db.universe().lookup("S#").unwrap();
    let p = db.universe().lookup("P#").unwrap();
    let p_s2 = Expr::named("PS")
        .select(Predicate::attr_const(s, CompareOp::Eq, "s2"))
        .project(attr_set([p]));
    let query = Expr::named("PS").divide(attr_set([s]), p_s2);
    let answer = query.eval(&db).unwrap();
    assert!(answer.x_contains(&supplier(s, "s1")));
    assert!(answer.x_contains(&supplier(s, "s2")));
    assert_eq!(answer.len(), 2);
}
