//! Experiment E1 (Section 1): the PS′/PS″ containment anomalies.
//!
//! Under Codd's null substitution principle the everyday set laws evaluate
//! to MAYBE; under the x-relation semantics they are plain TRUE/FALSE facts.

use nullrel::codd::substitution::{self, SetExpr, SetPredicate};
use nullrel::core::prelude::*;
use nullrel::storage::loader::paper;

const BUDGET: u128 = 100_000;

fn fixtures() -> (Universe, Relation, Relation) {
    let mut universe = Universe::new();
    let ps_prime = paper::ps_prime(&mut universe);
    let ps_double = paper::ps_double_prime(&mut universe);
    let p = universe.require("P#").unwrap();
    let s = universe.require("S#").unwrap();
    universe
        .set_domain(
            p,
            Domain::Enumerated(vec![Value::str("p1"), Value::str("p2"), Value::str("p3")]),
        )
        .unwrap();
    universe
        .set_domain(
            s,
            Domain::Enumerated(vec![Value::str("s1"), Value::str("s2")]),
        )
        .unwrap();
    (universe, ps_prime, ps_double)
}

#[test]
fn codd_laws_collapse_to_maybe() {
    let (universe, ps_prime, ps_double) = fixtures();

    // PS″ ⊇ PS′ — the paper's motivating anomaly.
    let contains = substitution::contains(&ps_double, &ps_prime, &universe, BUDGET).unwrap();
    assert_eq!(contains.truth, Truth::Ni);

    // PS′ ∪ PS″ ⊇ PS′.
    let union_contains = substitution::evaluate(
        &SetPredicate::Contains(
            SetExpr::rel(ps_prime.clone()).union(SetExpr::rel(ps_double.clone())),
            SetExpr::rel(ps_prime.clone()),
        ),
        &universe,
        BUDGET,
    )
    .unwrap();
    assert_eq!(union_contains.truth, Truth::Ni);

    // PS′ ∩ PS″ ⊆ PS′, expressed as PS′ ⊇ (PS′ ∩ PS″).
    let inter_contained = substitution::evaluate(
        &SetPredicate::Contains(
            SetExpr::rel(ps_prime.clone()),
            SetExpr::rel(ps_prime.clone()).intersect(SetExpr::rel(ps_double.clone())),
        ),
        &universe,
        BUDGET,
    )
    .unwrap();
    assert_eq!(inter_contained.truth, Truth::Ni);

    // Even PS′ = PS′ is MAYBE.
    let self_eq = substitution::equals(&ps_prime, &ps_prime, &universe, BUDGET).unwrap();
    assert_eq!(self_eq.truth, Truth::Ni);

    // PS′ = PS″ is certainly not TRUE (the paper reports MAYBE; the literal
    // substitution principle yields FALSE — see EXPERIMENTS.md).
    let cross_eq = substitution::equals(&ps_prime, &ps_double, &universe, BUDGET).unwrap();
    assert_ne!(cross_eq.truth, Truth::True);
}

#[test]
fn x_relation_semantics_restores_the_expected_answers() {
    let (_universe, ps_prime, ps_double) = fixtures();
    let x_prime = XRelation::from_relation(&ps_prime);
    let x_double = XRelation::from_relation(&ps_double);

    // The update intuition: after adding (p2, s2), the new database contains
    // the old one as a matter of fact.
    assert!(x_double.contains(&x_prime));
    assert!(x_double.properly_contains(&x_prime));

    // The set laws hold outright.
    assert!(lattice::union(&x_prime, &x_double).contains(&x_prime));
    assert!(x_prime.contains(&lattice::x_intersection(&x_prime, &x_double)));
    assert_eq!(x_prime, x_prime.clone());
    assert_ne!(x_prime, x_double);
}

#[test]
fn the_two_semantics_agree_on_total_relations() {
    // On relations without nulls the substitution principle degenerates to
    // ordinary two-valued set comparison, matching the x-relation answers —
    // the Section 7 consistency requirement.
    let mut universe = Universe::new();
    let a = universe.intern_with_domain("A", Domain::IntRange(0, 5));
    let r1 = Relation::with_tuples([a], [Tuple::new().with(a, Value::int(1))]).unwrap();
    let r2 = Relation::with_tuples(
        [a],
        [
            Tuple::new().with(a, Value::int(1)),
            Tuple::new().with(a, Value::int(2)),
        ],
    )
    .unwrap();
    let sub = substitution::contains(&r2, &r1, &universe, BUDGET).unwrap();
    assert_eq!(sub.truth, Truth::True);
    assert!(XRelation::from_relation(&r2).contains(&XRelation::from_relation(&r1)));

    let sub = substitution::contains(&r1, &r2, &universe, BUDGET).unwrap();
    assert_eq!(sub.truth, Truth::False);
    assert!(!XRelation::from_relation(&r1).contains(&XRelation::from_relation(&r2)));
}
