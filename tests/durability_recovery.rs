//! Kill-and-replay differential tests for the durability layer (PR 10).
//!
//! Each test drives a mixed logical workload (DDL, inserts with `ni`
//! cells, updates, deletes, schema evolution, index creation) through
//! [`VersionedDatabase::commit_ops`], "kills" the process by dropping the
//! handle, reopens the same data directory, and asserts the recovered
//! database is **identical** to the live one: table schemas, rows, index
//! definitions, statistics (histograms included), the schema version, the
//! epoch — and the query results in both the TRUE and the MAYBE truth
//! band. A torn mid-commit tail (the crash the WAL exists for) must be
//! discarded cleanly: recovery lands on the last fully acknowledged
//! commit and keeps accepting new ones.

use std::path::PathBuf;

use nullrel::core::algebra::select::{select, select_maybe};
use nullrel::core::prelude::*;
use nullrel::storage::{persist, ColumnSpec, Database, FsyncMode, LogicalOp, TableSpec};
use nullrel::storage::{StorageResult, VersionedDatabase};

/// A fresh, empty scratch directory under the system temp dir.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "nullrel-durability-{}-{}",
        name,
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn col(name: &str) -> ColumnSpec {
    ColumnSpec {
        name: name.into(),
        domain: None,
        nullable: true,
    }
}

fn req(name: &str) -> ColumnSpec {
    ColumnSpec {
        name: name.into(),
        domain: None,
        nullable: false,
    }
}

fn insert(table: &str, cells: &[(&str, Value)]) -> LogicalOp {
    LogicalOp::Insert {
        table: table.into(),
        cells: cells
            .iter()
            .map(|(c, v)| (c.to_string(), v.clone()))
            .collect(),
    }
}

/// The mixed workload, split into the commits a live session would issue.
/// It exercises every op kind that matters for replay fidelity: keyed and
/// keyless tables, rows with `ni` cells, multibyte strings, an index, the
/// paper's add-a-column evolution, updates that both set and null cells,
/// and a delete.
fn workload() -> Vec<Vec<LogicalOp>> {
    vec![
        vec![
            LogicalOp::CreateTable(TableSpec {
                name: "EMP".into(),
                columns: vec![req("E#"), col("NAME"), col("SAL")],
                key: vec!["E#".into()],
            }),
            LogicalOp::CreateTable(TableSpec {
                name: "DEPT".into(),
                columns: vec![col("D#"), col("CITY")],
                key: vec![],
            }),
        ],
        vec![
            insert(
                "EMP",
                &[
                    ("E#", Value::int(1)),
                    ("NAME", Value::str("alice")),
                    ("SAL", Value::int(10)),
                ],
            ),
            // SAL absent: reads ni — the MAYBE band of `SAL = 10` must
            // pick this row up identically after recovery.
            insert(
                "EMP",
                &[("E#", Value::int(2)), ("NAME", Value::str("björk"))],
            ),
            insert("EMP", &[("E#", Value::int(3))]),
            insert(
                "DEPT",
                &[("D#", Value::int(1)), ("CITY", Value::str("zürich"))],
            ),
            insert("DEPT", &[("CITY", Value::str("limbo"))]),
        ],
        vec![
            LogicalOp::CreateIndex {
                table: "EMP".into(),
                columns: vec!["E#".into()],
            },
            LogicalOp::AddColumn {
                table: "EMP".into(),
                column: "DEPT#".into(),
                domain: None,
            },
        ],
        vec![
            LogicalOp::Update {
                table: "EMP".into(),
                column: "E#".into(),
                op: CompareOp::Eq,
                value: Value::int(1),
                changes: vec![
                    ("SAL".into(), Some(Value::int(11))),
                    ("DEPT#".into(), Some(Value::int(7))),
                ],
            },
            // Nulling a cell out must also replay: NAME becomes ni.
            LogicalOp::Update {
                table: "EMP".into(),
                column: "E#".into(),
                op: CompareOp::Eq,
                value: Value::int(2),
                changes: vec![("NAME".into(), None)],
            },
            LogicalOp::Delete {
                table: "DEPT".into(),
                column: "D#".into(),
                op: CompareOp::Eq,
                value: Value::int(1),
            },
            insert("EMP", &[("E#", Value::int(4)), ("SAL", Value::int(10))]),
        ],
    ]
}

fn run_workload(vdb: &VersionedDatabase) -> StorageResult<u64> {
    let mut epoch = 0;
    for commit in workload() {
        let (e, _) = vdb.commit_ops(&commit)?;
        epoch = e;
    }
    Ok(epoch)
}

/// The full differential: schemas, rows, indexes, statistics — histograms
/// ride inside [`Table::statistics`] — and the schema version.
fn assert_same_database(live: &Database, recovered: &Database) {
    assert_eq!(live.table_names(), recovered.table_names());
    assert_eq!(
        live.schema_version(),
        recovered.schema_version(),
        "schema version must survive recovery (prepared-plan invalidation)"
    );
    for name in live.table_names() {
        let a = live.table(name).unwrap();
        let b = recovered.table(name).unwrap();
        assert_eq!(a.schema(), b.schema(), "schema of {name}");
        assert_eq!(a.rows_slice(), b.rows_slice(), "rows of {name}");
        let a_idx: Vec<_> = a.indexes().iter().map(|i| i.attrs().to_vec()).collect();
        let b_idx: Vec<_> = b.indexes().iter().map(|i| i.attrs().to_vec()).collect();
        assert_eq!(a_idx, b_idx, "index definitions of {name}");
        assert_eq!(
            a.statistics(),
            b.statistics(),
            "statistics (incl. histograms) of {name}"
        );
    }
}

/// Both truth bands of `column = value` must answer identically on the
/// live and the recovered table.
fn assert_same_bands(
    live: &Database,
    recovered: &Database,
    table: &str,
    column: &str,
    value: Value,
) {
    let attr = live.universe().lookup(column).unwrap();
    assert_eq!(
        recovered.universe().lookup(column),
        Some(attr),
        "recovery must re-intern attributes in the original order"
    );
    let pred = Predicate::attr_const(attr, CompareOp::Eq, value);
    let a = live.table(table).unwrap().to_xrelation();
    let b = recovered.table(table).unwrap().to_xrelation();
    assert_eq!(select(&a, &pred).unwrap(), select(&b, &pred).unwrap());
    assert_eq!(
        select_maybe(&a, &pred).unwrap(),
        select_maybe(&b, &pred).unwrap()
    );
}

/// Kill (drop) after WAL-only commits; the replayed database is the live
/// one, bit for bit, in both truth bands.
#[test]
fn wal_replay_reproduces_the_live_database() {
    let dir = scratch("wal-replay");
    let vdb = VersionedDatabase::open_with(&dir, FsyncMode::Off, u64::MAX).unwrap();
    let epoch = run_workload(&vdb).unwrap();
    let live = vdb.pin();
    drop(vdb);

    let reopened = VersionedDatabase::open_with(&dir, FsyncMode::Off, u64::MAX).unwrap();
    assert_eq!(reopened.epoch(), epoch);
    let recovered = reopened.pin();
    assert_same_database(live.db(), recovered.db());
    assert_same_bands(live.db(), recovered.db(), "EMP", "SAL", Value::int(10));
    assert_same_bands(
        live.db(),
        recovered.db(),
        "DEPT",
        "CITY",
        Value::str("zürich"),
    );

    // Sanity that the differential is not vacuous: the ni-SAL rows make
    // the MAYBE band of `SAL = 10` strictly wider than the TRUE band.
    let sal = recovered.db().universe().lookup("SAL").unwrap();
    let pred = Predicate::attr_const(sal, CompareOp::Eq, Value::int(10));
    let emp = recovered.db().table("EMP").unwrap().to_xrelation();
    let sure = select(&emp, &pred).unwrap();
    let maybe = select_maybe(&emp, &pred).unwrap();
    assert!(maybe.len() > sure.len(), "ni rows must surface in MAYBE");

    let _ = std::fs::remove_dir_all(&dir);
}

/// Kill after a forced snapshot plus further WAL commits: recovery is
/// snapshot + tail replay, and must land on the same state as pure replay
/// would — statistics reservoirs included, which is why the snapshot
/// persists the collector's exact accumulator state.
#[test]
fn recovery_from_snapshot_plus_wal_tail() {
    let dir = scratch("snapshot-plus-tail");
    let vdb = VersionedDatabase::open_with(&dir, FsyncMode::Off, u64::MAX).unwrap();
    let commits = workload();
    let (mid, tail) = commits.split_at(2);
    for commit in mid {
        vdb.commit_ops(commit).unwrap();
    }
    let snapshot_epoch = vdb.snapshot_now().unwrap();
    assert_eq!(snapshot_epoch, mid.len() as u64);
    for commit in tail {
        vdb.commit_ops(commit).unwrap();
    }
    let status = vdb.durability_status().unwrap();
    assert_eq!(status.last_snapshot_epoch, snapshot_epoch);
    assert!(status.wal_bytes > 0, "the tail commits live in the WAL");
    let live = vdb.pin();
    drop(vdb);

    let reopened = VersionedDatabase::open_with(&dir, FsyncMode::Off, u64::MAX).unwrap();
    assert_eq!(reopened.epoch(), live.epoch());
    assert_same_database(live.db(), reopened.pin().db());
    assert_same_bands(live.db(), reopened.pin().db(), "EMP", "SAL", Value::int(10));

    let _ = std::fs::remove_dir_all(&dir);
}

/// A crash in the window between snapshot-rename and WAL-truncate leaves
/// the snapshot's own commits behind in the log. Replay must skip them
/// (their epochs are at or below the snapshot's) instead of applying them
/// twice.
#[test]
fn stale_wal_records_below_the_snapshot_epoch_are_not_replayed_twice() {
    let dir = scratch("stale-records");
    let vdb = VersionedDatabase::open_with(&dir, FsyncMode::Off, u64::MAX).unwrap();
    let epoch = run_workload(&vdb).unwrap();
    let live = vdb.pin();
    drop(vdb);

    // Simulate the torn window: a snapshot at the final epoch lands, but
    // the process dies before the WAL truncates — every record is stale.
    persist::write_snapshot(&dir, epoch, live.db(), FsyncMode::Off).unwrap();

    let reopened = VersionedDatabase::open_with(&dir, FsyncMode::Off, u64::MAX).unwrap();
    assert_eq!(reopened.epoch(), epoch);
    assert_same_database(live.db(), reopened.pin().db());
    // Double-application would have failed outright (key violation on
    // EMP) or doubled DEPT's keyless rows; check the count anyway.
    assert_eq!(reopened.pin().db().table("DEPT").unwrap().len(), 1);

    let _ = std::fs::remove_dir_all(&dir);
}

/// The central crash: the process dies **mid-append**, leaving a torn
/// final record. Recovery must land exactly on the last fully written
/// commit, truncate the torn bytes away, and keep accepting commits that
/// are themselves durable.
#[test]
fn a_torn_mid_commit_tail_is_discarded_and_writes_continue() {
    let dir = scratch("torn-tail");
    let vdb = VersionedDatabase::open_with(&dir, FsyncMode::Off, u64::MAX).unwrap();
    let commits = workload();
    let mut pins = Vec::new();
    for commit in &commits {
        vdb.commit_ops(commit).unwrap();
        pins.push(vdb.pin());
    }
    drop(vdb);

    // Shear 5 bytes off the final record: a torn mid-commit append.
    let wal_path = dir.join(persist::WAL_FILE);
    let bytes = std::fs::metadata(&wal_path).unwrap().len();
    let file = std::fs::OpenOptions::new()
        .write(true)
        .open(&wal_path)
        .unwrap();
    file.set_len(bytes - 5).unwrap();
    drop(file);

    let reopened = VersionedDatabase::open_with(&dir, FsyncMode::Off, u64::MAX).unwrap();
    let expected = &pins[commits.len() - 2]; // state before the torn commit
    assert_eq!(reopened.epoch(), expected.epoch());
    assert_same_database(expected.db(), reopened.pin().db());
    assert_same_bands(
        expected.db(),
        reopened.pin().db(),
        "EMP",
        "SAL",
        Value::int(10),
    );

    // The torn bytes were truncated: fresh commits extend the verified
    // prefix and survive another kill.
    let (epoch, _) = reopened
        .commit_ops(&[insert("DEPT", &[("D#", Value::int(9))])])
        .unwrap();
    drop(reopened);
    let third = VersionedDatabase::open_with(&dir, FsyncMode::Off, u64::MAX).unwrap();
    assert_eq!(third.epoch(), epoch);
    // Two DEPT rows survived (the delete rode the torn commit and was
    // correctly lost), plus the post-recovery insert.
    assert_eq!(third.pin().db().table("DEPT").unwrap().len(), 3);

    let _ = std::fs::remove_dir_all(&dir);
}

/// A checksum-failed tail (bit rot or a partially flushed sector) is
/// treated exactly like a torn one: replay stops at the verified prefix.
#[test]
fn a_corrupt_trailing_record_stops_replay_at_the_verified_prefix() {
    let dir = scratch("corrupt-tail");
    let vdb = VersionedDatabase::open_with(&dir, FsyncMode::Off, u64::MAX).unwrap();
    let commits = workload();
    let mut pins = Vec::new();
    for commit in &commits {
        vdb.commit_ops(commit).unwrap();
        pins.push(vdb.pin());
    }
    drop(vdb);

    // Flip the last payload byte: length still fits, checksum does not.
    let wal_path = dir.join(persist::WAL_FILE);
    let mut bytes = std::fs::read(&wal_path).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xFF;
    std::fs::write(&wal_path, &bytes).unwrap();

    let reopened = VersionedDatabase::open_with(&dir, FsyncMode::Off, u64::MAX).unwrap();
    let expected = &pins[commits.len() - 2];
    assert_eq!(reopened.epoch(), expected.epoch());
    assert_same_database(expected.db(), reopened.pin().db());

    let _ = std::fs::remove_dir_all(&dir);
}

/// Closure commits cannot be logged logically, so they are made durable
/// the heavy way: a full snapshot before publication. Killing right after
/// one must lose nothing.
#[test]
fn closure_commits_are_made_durable_via_full_snapshot() {
    let dir = scratch("closure-commit");
    let vdb = VersionedDatabase::open_with(&dir, FsyncMode::Off, u64::MAX).unwrap();
    vdb.commit_ops(&workload()[0]).unwrap();
    let (epoch, _) = vdb
        .commit(|db| {
            let u = db.universe().clone();
            db.table_mut("DEPT")?
                .insert_named(&u, &[("D#", Value::int(42))])
        })
        .unwrap();
    let status = vdb.durability_status().unwrap();
    assert_eq!(
        status.wal_bytes, 0,
        "the closure commit snapshotted and truncated the WAL"
    );
    assert_eq!(status.last_snapshot_epoch, epoch);
    let live = vdb.pin();
    drop(vdb);

    let reopened = VersionedDatabase::open_with(&dir, FsyncMode::Off, u64::MAX).unwrap();
    assert_eq!(reopened.epoch(), epoch);
    assert_same_database(live.db(), reopened.pin().db());
    assert_eq!(reopened.pin().db().table("DEPT").unwrap().len(), 1);

    let _ = std::fs::remove_dir_all(&dir);
}
