//! Differential tests for adaptive re-optimization (PR 5): staged
//! execution with cardinality feedback must be a pure *performance*
//! feature. Whatever the q-error threshold, however often the remainder is
//! re-planned, the result must be byte-identical to the static plan — on
//! every fixture family the physical/cost-based suites cover, in the TRUE
//! and MAYBE bands, at `threads ∈ {1, 4}`. And with `adaptive = None` the
//! engine must not merely produce the same rows: it must execute the
//! byte-identical static pipeline (asserted on the full `ExecStats`).

use proptest::prelude::*;

use nullrel::core::algebra::{Expr, NoSource};
use nullrel::core::prelude::*;
use nullrel::exec::{
    compile_with, execute_expr_band_with, optimize_with, OptimizeOptions, Parallelism,
};
use nullrel::query::{execute_with, parse, resolve};
use nullrel::storage::{Database, SchemaBuilder};

fn options(adaptive: Option<f64>, threads: usize) -> OptimizeOptions {
    OptimizeOptions {
        adaptive,
        parallelism: if threads <= 1 {
            Parallelism::Serial
        } else {
            Parallelism::Threads(threads)
        },
        ..OptimizeOptions::default()
    }
}

/// Runs one plan under every (band, threads) combination and asserts the
/// adaptive engine (aggressive threshold 1.0 — any estimation error at all
/// triggers a re-plan) matches the static one and the oracle.
fn assert_adaptive_matches_static(plan: &Expr, u: &Universe) {
    let oracle = plan.eval(&NoSource).expect("oracle evaluates");
    for threads in [1usize, 4] {
        for band in [Truth::True, Truth::Ni] {
            let (static_res, _) =
                execute_expr_band_with(plan, &NoSource, u, band, options(None, threads))
                    .expect("static engine runs");
            let (adaptive_res, stats) =
                execute_expr_band_with(plan, &NoSource, u, band, options(Some(1.0), threads))
                    .expect("adaptive engine runs");
            assert_eq!(
                adaptive_res,
                static_res,
                "band {band:?} threads {threads}:\n{}",
                stats.render()
            );
            if band == Truth::True {
                assert_eq!(adaptive_res, oracle, "TRUE band vs oracle");
            } else {
                // The Ni legs pin the routing invariant, not staging
                // behavior: the optimizer's rewrites (and therefore the
                // stager's re-planning) are TRUE-band lower-bound
                // arguments, so non-TRUE bands must run the static
                // engine even with adaptive enabled.
                assert!(
                    !stats.render().contains("@stage"),
                    "non-TRUE bands must never stage:\n{}",
                    stats.render()
                );
            }
        }
    }
}

fn star_plan(dims: &[XRelation; 3], fact: &XRelation, keys: &[AttrId], fks: &[AttrId]) -> Expr {
    Expr::literal(dims[0].clone())
        .product(Expr::literal(dims[1].clone()))
        .product(Expr::literal(dims[2].clone()))
        .product(Expr::literal(fact.clone()))
        .select(
            Predicate::attr_attr(fks[0], CompareOp::Eq, keys[0])
                .and(Predicate::attr_attr(fks[1], CompareOp::Eq, keys[1]))
                .and(Predicate::attr_attr(fks[2], CompareOp::Eq, keys[2])),
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random star joins (the cost-based fixtures' shape, skewed keys and
    /// `ni` foreign keys included): adaptive ≡ static ≡ oracle in both
    /// bands at both thread counts.
    #[test]
    fn adaptive_star_joins_match_static_plans(
        dim_rows in proptest::collection::vec((0i64..4, proptest::option::of(0i64..3)), 3..15),
        fact_rows in proptest::collection::vec((0i64..4, 0i64..4, 0i64..4, 0u8..8), 0..8),
    ) {
        let mut u = Universe::new();
        let keys: Vec<AttrId> = (0..3).map(|i| u.intern(&format!("d{i}.K"))).collect();
        let vals: Vec<AttrId> = (0..3).map(|i| u.intern(&format!("d{i}.V"))).collect();
        let fks: Vec<AttrId> = (0..3).map(|i| u.intern(&format!("f.K{i}"))).collect();
        let dims: [XRelation; 3] = std::array::from_fn(|d| {
            XRelation::from_tuples(dim_rows.iter().map(|(k, v)| {
                Tuple::new()
                    .with(keys[d], Value::int(*k))
                    .with_opt(vals[d], v.map(Value::int))
            }))
        });
        let fact = XRelation::from_tuples(fact_rows.iter().map(|(k0, k1, k2, mask)| {
            let mut t = Tuple::new();
            for (j, (fk, cell)) in fks.iter().zip([k0, k1, k2]).enumerate() {
                if mask & (1 << j) == 0 {
                    t = t.with(*fk, Value::int(*cell));
                }
            }
            t
        }));
        let plan = star_plan(&dims, &fact, &keys, &fks);
        assert_adaptive_matches_static(&plan, &u);
    }

    /// Set operators, division, and the union-join — every materializing
    /// drain the stager can pick — composed over random operands.
    #[test]
    fn adaptive_set_operator_trees_match_static_plans(
        a_rows in proptest::collection::vec((0i64..5, proptest::option::of(0i64..4)), 1..10),
        b_rows in proptest::collection::vec((0i64..5, proptest::option::of(0i64..4)), 1..10),
    ) {
        let mut u = Universe::new();
        let k = u.intern("K");
        let v = u.intern("V");
        let mk = |rows: &Vec<(i64, Option<i64>)>| {
            XRelation::from_tuples(rows.iter().map(|(kv, vv)| {
                Tuple::new()
                    .with(k, Value::int(*kv))
                    .with_opt(v, vv.map(Value::int))
            }))
        };
        let (a, b) = (mk(&a_rows), mk(&b_rows));
        // Union over difference, filtered: two stacked set-op breaks.
        let setops = Expr::literal(a.clone())
            .difference(Expr::literal(b.clone()))
            .union(Expr::literal(b.clone()))
            .select(Predicate::attr_const(k, CompareOp::Ge, 1));
        assert_adaptive_matches_static(&setops, &u);
        // X-intersection under a projection.
        let meet = Expr::literal(a.clone())
            .x_intersect(Expr::literal(b.clone()))
            .project(attr_set([k]));
        assert_adaptive_matches_static(&meet, &u);
        // Division joined against one of its operands (a break above a
        // break), plus a union-join.
        let div = Expr::literal(a.clone())
            .divide(attr_set([k]), Expr::literal(b.clone()).project(attr_set([v])))
            .union_join(Expr::literal(b.clone()), attr_set([k]));
        assert_adaptive_matches_static(&div, &u);
    }
}

/// QUEL level: adaptive and static `QueryOutput`s are byte-identical —
/// columns, attribute ids, and rows — on catalog-backed queries (the shape
/// every satellite assertion in the issue is phrased over).
#[test]
fn adaptive_query_outputs_are_byte_identical() {
    let mut db = Database::new();
    db.create_table(
        SchemaBuilder::new("EMP")
            .required_column("E#")
            .column("NAME")
            .column("SEX")
            .column("MGR#")
            .key(&["E#"]),
    )
    .unwrap();
    let u = db.universe().clone();
    let t = db.table_mut("EMP").unwrap();
    for i in 0..120i64 {
        let mut cells = vec![
            ("E#", Value::int(i)),
            ("NAME", Value::str(format!("E{i}"))),
            ("SEX", Value::str(if i % 2 == 0 { "M" } else { "F" })),
        ];
        if i % 7 != 0 {
            // Skewed managers: most report to 1, the rest spread out.
            cells.push(("MGR#", Value::int(if i % 3 == 0 { 1 } else { i / 2 })));
        }
        t.insert_named(&u, &cells).unwrap();
    }
    for text in [
        "range of e is EMP retrieve (e.NAME) where e.MGR# = 1",
        "range of e is EMP range of m is EMP retrieve (e.NAME) \
         where m.SEX = \"M\" and e.MGR# = m.E#",
        "range of e is EMP range of m is EMP range of b is EMP retrieve (e.NAME) \
         where e.MGR# = m.E# and m.MGR# = b.E# and b.SEX = \"F\"",
    ] {
        for threads in [1usize, 4] {
            let static_out = execute_with(&db, text, options(None, threads)).unwrap();
            let adaptive_out = execute_with(&db, text, options(Some(1.0), threads)).unwrap();
            assert_eq!(adaptive_out.columns, static_out.columns, "{text}");
            assert_eq!(adaptive_out.column_attrs, static_out.column_attrs, "{text}");
            assert_eq!(
                adaptive_out.rows,
                static_out.rows,
                "{text} (threads {threads}):\n{}",
                adaptive_out.physical_plan()
            );
        }
    }
    // Sanity: resolve still works for the corpus (guards against the
    // fixtures silently not exercising the planner).
    let q = parse("range of e is EMP retrieve (e.E#)").unwrap();
    assert!(resolve(&db, &q).is_ok());
}

/// Acceptance criterion: `adaptive = None` does not merely agree on rows —
/// it executes the byte-identical static pipeline, down to every operator
/// counter, estimate annotation, and (absent) re-opt event.
#[test]
fn adaptive_off_is_byte_identical_to_the_static_engine() {
    let mut u = Universe::new();
    let a = u.intern("A");
    let b = u.intern("B");
    let c = u.intern("C");
    let left = XRelation::from_tuples((0..50).map(|i| {
        Tuple::new()
            .with(a, Value::int(i % 7))
            .with(b, Value::int(i))
    }));
    let right = XRelation::from_tuples((0..30).map(|i| Tuple::new().with(c, Value::int(i % 7))));
    let plan = Expr::literal(left)
        .product(Expr::literal(right))
        .select(Predicate::attr_attr(a, CompareOp::Eq, c))
        .project(attr_set([a, b]));
    let opts = options(None, 1);
    let (via_execute, exec_stats) =
        execute_expr_band_with(&plan, &NoSource, &u, Truth::True, opts).unwrap();
    let optimized = optimize_with(&plan, &NoSource, opts);
    let (direct, direct_stats) = compile_with(&optimized.expr, &NoSource, &u, Truth::True, opts)
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(via_execute, direct);
    assert_eq!(
        exec_stats, direct_stats,
        "adaptive-off execution must compile the very same static pipeline"
    );
    assert!(!exec_stats.reoptimized());
    assert!(!exec_stats.render().contains("@stage"));
}
