//! Crash-recovery property test (PR 10): truncating the WAL at an
//! **arbitrary byte offset** and reopening must always recover exactly
//! the longest prefix of whole, checksum-verified records — never a torn
//! or partially applied commit — with identical answers in both the TRUE
//! and the MAYBE truth band.
//!
//! Each case drives a random insert/delete script (one commit per op, so
//! every commit is one WAL record), remembers the database state after
//! every prefix, parses the record boundaries out of the log's length
//! prefixes, cuts the file at a random offset, and checks the recovered
//! state against the prefix state the cut's boundary arithmetic demands.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::prelude::*;

use nullrel::core::algebra::select::{select, select_maybe};
use nullrel::core::prelude::*;
use nullrel::storage::{
    persist, ColumnSpec, Database, FsyncMode, LogicalOp, TableSpec, VersionedDatabase,
};

/// Bytes of framing before each record's payload: u32 length + u64 checksum.
const FRAME_OVERHEAD: u64 = 12;

static CASE: AtomicUsize = AtomicUsize::new(0);

/// A per-case scratch directory (cases run sequentially inside one test).
fn scratch() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "nullrel-wal-prop-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[derive(Debug, Clone, Copy)]
enum Op {
    Insert { key: i64, val: Option<i64> },
    Delete { key: i64 },
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec((0u8..4, 0i64..6, proptest::option::of(0i64..3)), 1..16).prop_map(
        |raw| {
            raw.into_iter()
                .map(|(kind, key, val)| {
                    if kind == 0 {
                        Op::Delete { key }
                    } else {
                        Op::Insert { key, val }
                    }
                })
                .collect()
        },
    )
}

fn logical(op: Op) -> LogicalOp {
    match op {
        Op::Insert { key, val } => {
            let mut cells = vec![("K".to_string(), Value::int(key))];
            if let Some(v) = val {
                cells.push(("V".to_string(), Value::int(v)));
            }
            LogicalOp::Insert {
                table: "T".into(),
                cells,
            }
        }
        Op::Delete { key } => LogicalOp::Delete {
            table: "T".into(),
            column: "K".into(),
            op: CompareOp::Eq,
            value: Value::int(key),
        },
    }
}

/// The byte offset at which each whole record ends, from the length
/// prefixes alone (every record in the file is intact before we cut it).
fn record_ends(bytes: &[u8]) -> Vec<u64> {
    let mut ends = Vec::new();
    let mut offset = 0u64;
    while offset + FRAME_OVERHEAD <= bytes.len() as u64 {
        let at = offset as usize;
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) as u64;
        let end = offset + FRAME_OVERHEAD + len;
        if end > bytes.len() as u64 {
            break;
        }
        ends.push(end);
        offset = end;
    }
    ends
}

fn assert_same_state(expected: &Database, recovered: &Database) {
    let t = expected.table("T").unwrap();
    let r = recovered.table("T").unwrap();
    assert_eq!(t.rows_slice(), r.rows_slice(), "rows must be the prefix's");
    assert_eq!(t.statistics(), r.statistics(), "statistics must match");
    // Both truth bands of `V = 1`: TRUE sees only definite matches, MAYBE
    // additionally the ni-V rows — both must answer identically.
    let v = expected.universe().lookup("V").unwrap();
    assert_eq!(recovered.universe().lookup("V"), Some(v));
    let pred = Predicate::attr_const(v, CompareOp::Eq, Value::int(1));
    let a = t.to_xrelation();
    let b = r.to_xrelation();
    assert_eq!(select(&a, &pred).unwrap(), select(&b, &pred).unwrap());
    assert_eq!(
        select_maybe(&a, &pred).unwrap(),
        select_maybe(&b, &pred).unwrap()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For every random script and every random cut offset: recovery is
    /// the longest verified-record prefix, exactly.
    #[test]
    fn truncated_wal_recovers_the_longest_verified_prefix(
        ops in arb_ops(),
        cut_seed in 0u64..1_000_000,
    ) {
        let dir = scratch();
        let vdb = VersionedDatabase::open_with(&dir, FsyncMode::Off, u64::MAX).unwrap();

        // One commit per op → one WAL record per commit. prefix_states[k]
        // is the database after k records (k = 0 is the empty catalog —
        // even the CreateTable record can be cut away).
        let mut prefix_states: Vec<Database> = vec![vdb.pin().db().clone()];
        vdb.commit_ops(&[LogicalOp::CreateTable(TableSpec {
            name: "T".into(),
            columns: vec![
                ColumnSpec { name: "K".into(), domain: None, nullable: false },
                ColumnSpec { name: "V".into(), domain: None, nullable: true },
            ],
            key: vec![],
        })]).unwrap();
        prefix_states.push(vdb.pin().db().clone());
        for op in &ops {
            vdb.commit_ops(&[logical(*op)]).unwrap();
            prefix_states.push(vdb.pin().db().clone());
        }
        drop(vdb);

        let wal_path = dir.join(persist::WAL_FILE);
        let bytes = std::fs::read(&wal_path).unwrap();
        let ends = record_ends(&bytes);
        prop_assert_eq!(ends.len(), prefix_states.len() - 1);

        // Cut anywhere in [0, len]: at a boundary (clean), inside a frame
        // header, or mid-payload (torn).
        let cut = cut_seed % (bytes.len() as u64 + 1);
        let file = std::fs::OpenOptions::new().write(true).open(&wal_path).unwrap();
        file.set_len(cut).unwrap();
        drop(file);

        let whole_records = ends.iter().filter(|&&end| end <= cut).count();
        let reopened = VersionedDatabase::open_with(&dir, FsyncMode::Off, u64::MAX).unwrap();
        prop_assert_eq!(
            reopened.epoch(),
            whole_records as u64,
            "epoch must resume at the last whole record (cut at {})",
            cut
        );
        let recovered = reopened.pin();
        if whole_records == 0 {
            prop_assert!(recovered.db().table_names().is_empty());
        } else {
            assert_same_state(&prefix_states[whole_records], recovered.db());
        }

        // And the truncated-away tail never resurrects: reopening again
        // (after the torn-tail truncation) recovers the same prefix.
        drop(reopened);
        let again = VersionedDatabase::open_with(&dir, FsyncMode::Off, u64::MAX).unwrap();
        prop_assert_eq!(again.epoch(), whole_records as u64);
        if whole_records > 0 {
            assert_same_state(&prefix_states[whole_records], again.pin().db());
        }

        let _ = std::fs::remove_dir_all(&dir);
    }
}
