//! Differential tests for the morsel-driven parallel runtime (PR 4): at
//! every degree of parallelism the engine must produce exactly the serial
//! engine's (and the tree-walk oracle's) minimal x-relation — in the TRUE
//! band and in the MAYBE band — and the `nullrel-core` antichain merge
//! must equal the serial `Minimize` reduction over *arbitrary*
//! partitionings of its input.

use proptest::prelude::*;

use nullrel::core::algebra::{Expr, NoSource};
use nullrel::core::lattice::hashed::{merge_antichains, minimal};
use nullrel::core::prelude::*;
use nullrel::exec::{execute_expr_band_with, execute_expr_with, OptimizeOptions, Parallelism};
use nullrel::query::plan::plan_access;
use nullrel::query::{execute_resolved_naive, parse, resolve};
use nullrel::storage::{Database, SchemaBuilder};

/// Engine options pinned to `n` worker threads with fan-out forced on
/// (threshold 0), so even the small paper fixtures exercise the
/// partitioned operators.
fn threads(n: usize) -> OptimizeOptions {
    OptimizeOptions {
        parallelism: if n <= 1 {
            Parallelism::Serial
        } else {
            Parallelism::Threads(n)
        },
        parallel_row_threshold: 0,
        ..OptimizeOptions::default()
    }
}

/// The PS relation of display (6.6) — the null-heavy fixture of
/// `tests/physical_differential.rs`.
fn ps_database() -> Database {
    let mut db = Database::new();
    db.create_table(SchemaBuilder::new("PS").column("S#").column("P#"))
        .unwrap();
    let u = db.universe().clone();
    let t = db.table_mut("PS").unwrap();
    for (s, p) in [
        (Some("s1"), Some("p1")),
        (Some("s1"), Some("p2")),
        (Some("s1"), None),
        (Some("s2"), Some("p1")),
        (Some("s2"), None),
        (Some("s3"), None),
        (None, Some("p4")),
        (Some("s4"), Some("p4")),
    ] {
        let mut cells: Vec<(&str, Value)> = Vec::new();
        if let Some(s) = s {
            cells.push(("S#", Value::str(s)));
        }
        if let Some(p) = p {
            cells.push(("P#", Value::str(p)));
        }
        t.insert_named(&u, &cells).unwrap();
    }
    db
}

/// Every QUEL fixture of the physical differential suite, executed at
/// threads ∈ {1, 4}: both runs must equal the tree-walk oracle, and the
/// `threads = 1` run must be byte-identical (results *and* operator
/// counters) to the serial engine.
#[test]
fn quel_fixtures_agree_at_every_degree() {
    let db = ps_database();
    for text in [
        "range of a is PS retrieve (a.S#)",
        "range of a is PS retrieve (a.P#) where a.S# = \"s1\"",
        "range of a is PS retrieve (a.S#) where a.P# = \"p1\"",
        "range of a is PS retrieve (a.S#, a.P#) where a.P# != \"p1\"",
        "range of a is PS retrieve (a.S#) where a.P# = \"p1\" or a.P# = \"p2\"",
        "range of a is PS range of b is PS retrieve (a.S#, b.S#) where a.P# = b.P#",
        "range of a is PS range of b is PS retrieve (a.S#) \
         where a.P# = b.P# and b.S# = \"s2\"",
        "range of a is PS range of b is PS retrieve (a.S#, b.P#) \
         where a.S# = b.S# and a.P# != b.P#",
        "range of a is PS range of b is PS retrieve (a.S#, b.P#) where a.S# = \"s1\"",
        "range of a is PS range of b is PS range of c is PS retrieve (a.S#, c.P#) \
         where a.P# = b.P# and b.S# = c.S#",
    ] {
        let resolved = resolve(&db, &parse(text).unwrap()).unwrap();
        let expr = plan_access(&resolved);
        let oracle = XRelation::from_tuples(execute_resolved_naive(&resolved).unwrap().rows);
        let (serial, serial_stats) =
            execute_expr_with(&expr, &db, &resolved.universe, threads(1)).unwrap();
        assert_eq!(serial, oracle, "serial vs oracle on {text:?}");
        let (one, one_stats) = execute_expr_with(
            &expr,
            &db,
            &resolved.universe,
            OptimizeOptions {
                parallelism: Parallelism::Threads(1),
                ..threads(1)
            },
        )
        .unwrap();
        assert_eq!(one, serial, "threads=1 vs serial on {text:?}");
        assert_eq!(
            one_stats, serial_stats,
            "threads=1 must be byte-identical to serial on {text:?}"
        );
        let (par, par_stats) =
            execute_expr_with(&expr, &db, &resolved.universe, threads(4)).unwrap();
        assert_eq!(
            par,
            oracle,
            "threads=4 vs oracle on {text:?}\nplan:\n{}",
            par_stats.render()
        );
    }
}

/// The algebra fixtures (set operators, division, union-join) at
/// threads ∈ {1, 4}, in both the TRUE and MAYBE bands.
#[test]
fn algebra_fixtures_agree_at_every_degree_in_both_bands() {
    let db = ps_database();
    let u = db.universe().clone();
    let s = u.lookup("S#").unwrap();
    let p = u.lookup("P#").unwrap();
    let by = |k: &str| {
        Expr::named("PS")
            .select(Predicate::attr_const(s, CompareOp::Eq, k))
            .project(attr_set([p]))
    };
    let fixtures = [
        Expr::named("PS").divide(attr_set([s]), by("s2")),
        by("s1").difference(by("s2")),
        by("s1").union(by("s2")),
        by("s1").x_intersect(by("s2")),
        Expr::named("PS").union_join(Expr::named("PS"), attr_set([s])),
        Expr::named("PS").equijoin(Expr::named("PS"), attr_set([s, p])),
        Expr::named("PS")
            .divide(attr_set([s]), by("s2"))
            .project(attr_set([s])),
    ];
    for (i, expr) in fixtures.iter().enumerate() {
        // TRUE band: both degrees equal the tree-walk oracle.
        let oracle = expr.eval(&db).unwrap();
        for n in [1, 4] {
            let (got, stats) = execute_expr_with(expr, &db, &u, threads(n)).unwrap();
            assert_eq!(
                got,
                oracle,
                "fixture {i} TRUE band at threads={n}\nplan:\n{}",
                stats.render()
            );
        }
        // MAYBE band: the parallel pipeline must reproduce the serial one.
        let (serial_ni, _) = execute_expr_band_with(expr, &db, &u, Truth::Ni, threads(1)).unwrap();
        for n in [1, 4] {
            let (got, stats) =
                execute_expr_band_with(expr, &db, &u, Truth::Ni, threads(n)).unwrap();
            assert_eq!(
                got,
                serial_ni,
                "fixture {i} MAYBE band at threads={n}\nplan:\n{}",
                stats.render()
            );
        }
    }
}

/// A larger workload whose cardinalities clear the default fan-out
/// threshold: the partitioned operators really run (visible in the
/// counters) and still match the serial engine in both bands.
#[test]
fn large_self_join_runs_partitioned_and_matches_serial() {
    let mut db = Database::new();
    db.create_table(
        SchemaBuilder::new("EMP")
            .required_column("E#")
            .column("MGR#")
            .key(&["E#"]),
    )
    .unwrap();
    let u = db.universe().clone();
    let t = db.table_mut("EMP").unwrap();
    // 200 rows: comfortably above the default fan-out threshold, while the
    // MAYBE band (every null-MGR# row against every partner) stays small
    // enough for the serial sink's quadratic absorb in a debug build.
    for i in 0..200i64 {
        let mut cells = vec![("E#", Value::int(i))];
        if i % 7 != 0 {
            cells.push(("MGR#", Value::int(i / 3)));
        }
        t.insert_named(&u, &cells).unwrap();
    }
    let text = "range of e is EMP range of m is EMP retrieve (e.E#, m.MGR#) \
                where e.MGR# = m.E#";
    let resolved = resolve(&db, &parse(text).unwrap()).unwrap();
    let expr = plan_access(&resolved);
    let (serial, _) = execute_expr_with(&expr, &db, &resolved.universe, threads(1)).unwrap();
    let par_options = OptimizeOptions {
        parallel_row_threshold: nullrel::exec::DEFAULT_PARALLEL_ROW_THRESHOLD,
        ..threads(4)
    };
    let (par, stats) = execute_expr_with(&expr, &db, &resolved.universe, par_options).unwrap();
    assert_eq!(par, serial);
    assert!(
        stats.used_parallel(),
        "200 rows clear the default threshold:\n{}",
        stats.render()
    );
    assert_eq!(stats.max_parallelism(), 4, "{}", stats.render());
    // The MAYBE band of the same plan, at both degrees.
    let (serial_ni, _) =
        execute_expr_band_with(&expr, &db, &resolved.universe, Truth::Ni, threads(1)).unwrap();
    let (par_ni, _) =
        execute_expr_band_with(&expr, &db, &resolved.universe, Truth::Ni, par_options).unwrap();
    assert_eq!(par_ni, serial_ni);
}

// ---------------------------------------------------------------------
// Property tests
// ---------------------------------------------------------------------

/// Null-heavy random tuples over 3 attributes.
fn arb_tuples(attrs: usize, max: usize) -> impl Strategy<Value = Vec<Tuple>> {
    proptest::collection::vec(
        proptest::collection::vec(proptest::option::of(0i64..3), attrs),
        0..max,
    )
    .prop_map(|rows| {
        rows.into_iter()
            .map(|cells| {
                let mut t = Tuple::new();
                for (i, cell) in cells.into_iter().enumerate() {
                    if let Some(v) = cell {
                        t.set(AttrId::from_index(i), Some(Value::int(v)));
                    }
                }
                t
            })
            .collect()
    })
}

fn universe() -> Universe {
    let mut u = Universe::new();
    for i in 0..4 {
        u.intern(&format!("A{i}"));
    }
    u
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The keystone: antichain `merge` over an **arbitrary** partitioning
    /// (random per-tuple partition assignment, random partition count)
    /// equals the serial global minimisation of the same tuple set.
    #[test]
    fn antichain_merge_equals_serial_minimize_on_any_partitioning(
        tuples in arb_tuples(3, 24),
        assignment in proptest::collection::vec(0usize..6, 24),
        parts in 1usize..6,
    ) {
        let serial = minimal(tuples.clone());
        let mut partitions: Vec<Vec<Tuple>> = vec![Vec::new(); parts];
        for (i, t) in tuples.into_iter().enumerate() {
            partitions[assignment.get(i).copied().unwrap_or(0) % parts].push(t);
        }
        // Local reduction first — the shape parallel workers hand the merge.
        let locals: Vec<Vec<Tuple>> = partitions.into_iter().map(minimal).collect();
        prop_assert_eq!(merge_antichains(locals), serial);
    }

    /// Random join plans at threads ∈ {1, 4} in the TRUE band: both equal
    /// the tree-walk oracle (fan-out forced by a zero threshold).
    #[test]
    fn random_join_plans_agree_at_every_degree(
        left in arb_tuples(2, 8),
        right in arb_tuples(2, 8),
        k in 0i64..3,
    ) {
        let u = universe();
        let a0 = AttrId::from_index(0);
        let a1 = AttrId::from_index(1);
        let a2 = AttrId::from_index(2);
        let a3 = AttrId::from_index(3);
        let right: Vec<Tuple> = right
            .into_iter()
            .map(|t| {
                let mut s = Tuple::new();
                if let Some(v) = t.get(a0) {
                    s.set(a2, Some(v.clone()));
                }
                if let Some(v) = t.get(a1) {
                    s.set(a3, Some(v.clone()));
                }
                s
            })
            .collect();
        let plan = Expr::literal(XRelation::from_tuples(left))
            .product(Expr::literal(XRelation::from_tuples(right)))
            .select(
                Predicate::attr_attr(a1, CompareOp::Eq, a2)
                    .and(Predicate::attr_const(a0, CompareOp::Ge, k)),
            )
            .project(attr_set([a0, a3]));
        let oracle = plan.eval(&NoSource).unwrap();
        for n in [1usize, 4] {
            let (got, _) = execute_expr_with(&plan, &NoSource, &u, threads(n)).unwrap();
            prop_assert_eq!(&got, &oracle, "threads={}", n);
        }
    }

    /// Random MAYBE-band pipelines at threads ∈ {1, 4}: the parallel ni
    /// band equals the serial ni band.
    #[test]
    fn random_maybe_band_plans_agree_at_every_degree(
        rel in arb_tuples(3, 12),
        k in 0i64..3,
    ) {
        let u = universe();
        let a0 = AttrId::from_index(0);
        let a1 = AttrId::from_index(1);
        let plan = Expr::literal(XRelation::from_tuples(rel))
            .select(Predicate::attr_const(a0, CompareOp::Eq, k))
            .project(attr_set([a0, a1]));
        let (serial, _) =
            execute_expr_band_with(&plan, &NoSource, &u, Truth::Ni, threads(1)).unwrap();
        let (par, _) =
            execute_expr_band_with(&plan, &NoSource, &u, Truth::Ni, threads(4)).unwrap();
        prop_assert_eq!(par, serial);
    }

    /// Random shared-key joins (equijoin and union-join) at threads 4
    /// equal the oracle — the partitioned `equijoin_parts` core plus the
    /// partition-local dangling pass.
    #[test]
    fn random_shared_key_joins_agree_at_every_degree(
        left in arb_tuples(3, 8),
        right in arb_tuples(3, 8),
    ) {
        let u = universe();
        let on = attr_set([AttrId::from_index(1)]);
        let right: Vec<Tuple> = right
            .into_iter()
            .map(|t| {
                // Shift right tuples one attribute up so scopes overlap
                // beyond the key (the representation-sensitive case).
                let mut s = Tuple::new();
                for (a, v) in t.cells() {
                    s.set(AttrId::from_index(a.index() + 1), Some(v.clone()));
                }
                s
            })
            .collect();
        let l = XRelation::from_tuples(left);
        let r = XRelation::from_tuples(right);
        for (keep_dangling, label) in [(false, "equijoin"), (true, "union-join")] {
            let expr = if keep_dangling {
                Expr::literal(l.clone()).union_join(Expr::literal(r.clone()), on.clone())
            } else {
                Expr::literal(l.clone()).equijoin(Expr::literal(r.clone()), on.clone())
            };
            let oracle = expr.eval(&NoSource).unwrap();
            for n in [1usize, 4] {
                let (got, _) = execute_expr_with(&expr, &NoSource, &u, threads(n)).unwrap();
                prop_assert_eq!(&got, &oracle, "{} at threads={}", label, n);
            }
        }
    }
}
