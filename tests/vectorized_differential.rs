//! Differential tests for the vectorized batch engine: every fixture of
//! the physical and parallel differential suites must flow through the
//! batch-at-a-time path — at batch sizes 1 and 1024, at threads 1 and 4,
//! in the TRUE band and the MAYBE band — and produce **byte-identical**
//! output to the tuple-at-a-time scalar engine and the tree-walk oracle.
//! At threads = 1 the operator counters must also be identical to the
//! scalar engine's, modulo the `batch=N` annotation alone.

use nullrel::core::algebra::Expr;
use nullrel::core::prelude::*;
use nullrel::exec::{execute_expr_band_with, OptimizeOptions, Parallelism};
use nullrel::query::{execute_resolved_naive, execute_with, parse, resolve};
use nullrel::storage::{Database, SchemaBuilder};

/// Engine options: vectorization pinned on/off explicitly (the defaults
/// read `NULLREL_VECTORIZE` / `NULLREL_BATCH_SIZE`, and this suite must
/// test both paths regardless of the CI leg), fan-out forced on so the
/// small paper fixtures still exercise the parallel operators.
fn engine(vectorize: bool, batch: usize, threads: usize) -> OptimizeOptions {
    OptimizeOptions {
        parallelism: if threads <= 1 {
            Parallelism::Serial
        } else {
            Parallelism::Threads(threads)
        },
        parallel_row_threshold: 0,
        vectorize,
        batch_size: batch,
        ..OptimizeOptions::default()
    }
}

/// Strips the vectorized path's `batch=N` annotations from an explain
/// render, leaving the row counters — which must match the scalar plan's
/// exactly.
fn strip_batch(render: &str) -> String {
    let mut out = String::new();
    let mut rest = render;
    while let Some(pos) = rest.find(" batch=") {
        out.push_str(&rest[..pos]);
        let after = &rest[pos + " batch=".len()..];
        let digits = after
            .find(|c: char| !c.is_ascii_digit())
            .unwrap_or(after.len());
        rest = &after[digits..];
    }
    out.push_str(rest);
    out
}

/// The PS relation of display (6.6) — the null-heavy fixture shared with
/// `tests/physical_differential.rs` and `tests/parallel_differential.rs`.
fn ps_database() -> Database {
    let mut db = Database::new();
    db.create_table(SchemaBuilder::new("PS").column("S#").column("P#"))
        .unwrap();
    let u = db.universe().clone();
    let t = db.table_mut("PS").unwrap();
    for (s, p) in [
        (Some("s1"), Some("p1")),
        (Some("s1"), Some("p2")),
        (Some("s1"), None),
        (Some("s2"), Some("p1")),
        (Some("s2"), None),
        (Some("s3"), None),
        (None, Some("p4")),
        (Some("s4"), Some("p4")),
    ] {
        let mut cells: Vec<(&str, Value)> = Vec::new();
        if let Some(s) = s {
            cells.push(("S#", Value::str(s)));
        }
        if let Some(p) = p {
            cells.push(("P#", Value::str(p)));
        }
        t.insert_named(&u, &cells).unwrap();
    }
    db
}

/// The QUEL fixtures of the physical differential suite.
const QUEL_FIXTURES: &[&str] = &[
    "range of a is PS retrieve (a.S#)",
    "range of a is PS retrieve (a.P#) where a.S# = \"s1\"",
    "range of a is PS retrieve (a.S#) where a.P# = \"p1\"",
    "range of a is PS retrieve (a.S#, a.P#) where a.P# != \"p1\"",
    "range of a is PS retrieve (a.S#) where a.P# = \"p1\" or a.P# = \"p2\"",
    "range of a is PS range of b is PS retrieve (a.S#, b.S#) where a.P# = b.P#",
    "range of a is PS range of b is PS retrieve (a.S#) \
     where a.P# = b.P# and b.S# = \"s2\"",
    "range of a is PS range of b is PS retrieve (a.S#, b.P#) \
     where a.S# = b.S# and a.P# != b.P#",
    "range of a is PS range of b is PS retrieve (a.S#, b.P#) where a.S# = \"s1\"",
    "range of a is PS range of b is PS range of c is PS retrieve (a.S#, c.P#) \
     where a.P# = b.P# and b.S# = c.S#",
];

/// Every QUEL fixture through the vectorized engine at batch ∈ {1, 1024}
/// and threads ∈ {1, 4}: rows byte-identical to the scalar engine and the
/// tree-walk oracle; at threads = 1 the operator counters too (modulo the
/// `batch=N` annotation).
#[test]
fn quel_fixtures_vectorized_match_scalar_and_oracle() {
    let db = ps_database();
    for text in QUEL_FIXTURES {
        let resolved = resolve(&db, &parse(text).unwrap()).unwrap();
        let oracle = XRelation::from_tuples(execute_resolved_naive(&resolved).unwrap().rows);
        let scalar = execute_with(&db, text, engine(false, 1024, 1)).unwrap();
        assert_eq!(
            XRelation::from_tuples(scalar.rows.clone()),
            oracle,
            "scalar vs oracle on {text:?}"
        );
        for batch in [1, 1024] {
            for threads in [1, 4] {
                let vec = execute_with(&db, text, engine(true, batch, threads)).unwrap();
                assert_eq!(
                    vec.rows,
                    scalar.rows,
                    "rows drifted on {text:?} at batch={batch} threads={threads}\nplan:\n{}",
                    vec.stats.render()
                );
                assert_eq!(vec.columns, scalar.columns, "{text:?}");
                if threads == 1 {
                    assert_eq!(
                        strip_batch(&vec.stats.render()),
                        strip_batch(&scalar.stats.render()),
                        "counters drifted on {text:?} at batch={batch}"
                    );
                }
            }
        }
    }
}

/// The algebra fixtures (set operators, division, union-join) through the
/// vectorized engine, in the TRUE and MAYBE bands, at batch ∈ {1, 1024}
/// and threads ∈ {1, 4}.
#[test]
fn algebra_fixtures_vectorized_match_scalar_in_both_bands() {
    let db = ps_database();
    let u = db.universe().clone();
    let s = u.lookup("S#").unwrap();
    let p = u.lookup("P#").unwrap();
    let by = |k: &str| {
        Expr::named("PS")
            .select(Predicate::attr_const(s, CompareOp::Eq, k))
            .project(attr_set([p]))
    };
    let fixtures = [
        Expr::named("PS").divide(attr_set([s]), by("s2")),
        by("s1").difference(by("s2")),
        by("s1").union(by("s2")),
        by("s1").x_intersect(by("s2")),
        Expr::named("PS").union_join(Expr::named("PS"), attr_set([s])),
        Expr::named("PS").equijoin(Expr::named("PS"), attr_set([s, p])),
        Expr::named("PS")
            .divide(attr_set([s]), by("s2"))
            .project(attr_set([s])),
    ];
    for (i, expr) in fixtures.iter().enumerate() {
        let oracle = expr.eval(&db).unwrap();
        for band in [Truth::True, Truth::Ni] {
            let (scalar, _) =
                execute_expr_band_with(expr, &db, &u, band, engine(false, 1024, 1)).unwrap();
            if band == Truth::True {
                assert_eq!(scalar, oracle, "fixture {i} scalar vs oracle");
            }
            for batch in [1, 1024] {
                for threads in [1, 4] {
                    let (vec, stats) =
                        execute_expr_band_with(expr, &db, &u, band, engine(true, batch, threads))
                            .unwrap();
                    assert_eq!(
                        vec,
                        scalar,
                        "fixture {i} {band:?} band at batch={batch} threads={threads}\nplan:\n{}",
                        stats.render()
                    );
                }
            }
        }
    }
}

/// A scan-heavy workload big enough to split into many batches: the
/// vectorized rows and counters still match the scalar engine exactly,
/// and under 4 threads the batch tasks really fan out on the pool.
#[test]
fn large_scan_splits_into_batches_and_matches_scalar() {
    let mut db = Database::new();
    db.create_table(
        SchemaBuilder::new("EMP")
            .required_column("E#")
            .column("MGR#")
            .key(&["E#"]),
    )
    .unwrap();
    let u = db.universe().clone();
    let t = db.table_mut("EMP").unwrap();
    for i in 0..500i64 {
        let mut cells = vec![("E#", Value::int(i))];
        if i % 7 != 0 {
            cells.push(("MGR#", Value::int(i / 3)));
        }
        t.insert_named(&u, &cells).unwrap();
    }
    let text = "range of e is EMP retrieve (e.E#) where e.MGR# > 30";
    let scalar = execute_with(&db, text, engine(false, 64, 1)).unwrap();
    for threads in [1, 4] {
        let vec = execute_with(&db, text, engine(true, 64, threads)).unwrap();
        assert_eq!(vec.rows, scalar.rows, "threads={threads}");
        if threads == 1 {
            assert_eq!(
                strip_batch(&vec.stats.render()),
                strip_batch(&scalar.stats.render())
            );
        } else {
            assert_eq!(
                vec.stats.max_parallelism(),
                4,
                "batch tasks fan out:\n{}",
                vec.stats.render()
            );
        }
    }
}
