//! Differential tests for the cost-based planner (PR 3): whatever join
//! order the enumerator picks, the engine must produce exactly the same
//! minimal x-relation as the declaration-order left-deep plan and the
//! tree-walk oracle — in the TRUE band through the full optimizer, and in
//! the MAYBE band for raw join-order permutations (the optimizer's rewrite
//! rules are TRUE-band arguments, but product commutativity is not).

use proptest::prelude::*;

use nullrel::core::algebra::{Expr, NoSource};
use nullrel::core::prelude::*;
use nullrel::exec::{compile_band, execute_expr, execute_expr_with, JoinOrdering, OptimizeOptions};
use nullrel::storage::{Database, SchemaBuilder};

fn declaration() -> OptimizeOptions {
    OptimizeOptions {
        join_ordering: JoinOrdering::Declaration,
        ..OptimizeOptions::default()
    }
}

fn universe() -> (Universe, Vec<AttrId>, Vec<AttrId>, Vec<AttrId>) {
    let mut u = Universe::new();
    let dim_keys: Vec<AttrId> = (0..3).map(|i| u.intern(&format!("d{i}.K"))).collect();
    let dim_vals: Vec<AttrId> = (0..3).map(|i| u.intern(&format!("d{i}.V"))).collect();
    let fact_keys: Vec<AttrId> = (0..3).map(|i| u.intern(&format!("f.K{i}"))).collect();
    (u, dim_keys, dim_vals, fact_keys)
}

/// A dimension relation: total keys, sometimes-null payload.
fn arb_dim(key: AttrId, val: AttrId) -> impl Strategy<Value = XRelation> {
    proptest::collection::vec((0i64..4, proptest::option::of(0i64..3)), 1..5).prop_map(
        move |rows| {
            XRelation::from_tuples(rows.into_iter().map(|(k, v)| {
                Tuple::new()
                    .with(key, Value::int(k))
                    .with_opt(val, v.map(Value::int))
            }))
        },
    )
}

/// A fact relation: every foreign key may be `ni` (the null mask drops
/// cells), so join keys exercise the maybe band.
fn arb_fact(keys: [AttrId; 3]) -> impl Strategy<Value = XRelation> {
    proptest::collection::vec((0i64..4, 0i64..4, 0i64..4, 0u8..8), 0..6).prop_map(move |rows| {
        XRelation::from_tuples(rows.into_iter().map(|(k0, k1, k2, mask)| {
            let mut t = Tuple::new();
            for (j, (key, cell)) in keys.iter().zip([k0, k1, k2]).enumerate() {
                if mask & (1 << j) == 0 {
                    t = t.with(*key, Value::int(cell));
                }
            }
            t
        }))
    })
}

/// The pessimal declaration order: the three (mutually unconnected)
/// dimensions first, the fact table last — the left-deep tree pays two
/// Cartesian products before any join predicate applies.
fn star_plan(
    dims: &[XRelation],
    fact: &XRelation,
    dim_keys: &[AttrId],
    dim_vals: &[AttrId],
    fact_keys: &[AttrId],
) -> Expr {
    let plan = Expr::literal(dims[0].clone())
        .product(Expr::literal(dims[1].clone()))
        .product(Expr::literal(dims[2].clone()))
        .product(Expr::literal(fact.clone()));
    let predicate = Predicate::attr_attr(fact_keys[0], CompareOp::Eq, dim_keys[0])
        .and(Predicate::attr_attr(
            fact_keys[1],
            CompareOp::Eq,
            dim_keys[1],
        ))
        .and(Predicate::attr_attr(
            fact_keys[2],
            CompareOp::Eq,
            dim_keys[2],
        ));
    plan.select(predicate)
        .project(attr_set([dim_vals[0], fact_keys[1]]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// TRUE band: the cost-based plan, the declaration-order left-deep
    /// plan, and the tree-walk oracle agree on every random star instance.
    #[test]
    fn cost_based_and_declaration_plans_agree_in_true_band(
        d0 in arb_dim(AttrId::from_index(0), AttrId::from_index(3)),
        d1 in arb_dim(AttrId::from_index(1), AttrId::from_index(4)),
        d2 in arb_dim(AttrId::from_index(2), AttrId::from_index(5)),
        fact in arb_fact([
            AttrId::from_index(6),
            AttrId::from_index(7),
            AttrId::from_index(8),
        ]),
    ) {
        let (u, dim_keys, dim_vals, fact_keys) = universe();
        let dims = [d0, d1, d2];
        let plan = star_plan(&dims, &fact, &dim_keys, &dim_vals, &fact_keys);
        let oracle = plan.eval(&NoSource).unwrap();
        let (cost_based, stats) = execute_expr(&plan, &NoSource, &u).unwrap();
        let (declaration, _) =
            execute_expr_with(&plan, &NoSource, &u, declaration()).unwrap();
        prop_assert_eq!(&cost_based, &oracle, "cost-based vs oracle:\n{}", stats.render());
        prop_assert_eq!(&declaration, &oracle, "declaration-order vs oracle");
    }

    /// MAYBE band: pure join-order permutations (product commutativity /
    /// associativity) never change the ni band either. The full optimizer
    /// is out of scope here — its rewrites are TRUE-band lower-bound
    /// arguments — so the permuted trees are compiled as written.
    #[test]
    fn join_order_permutations_preserve_the_maybe_band(
        d0 in arb_dim(AttrId::from_index(0), AttrId::from_index(3)),
        d1 in arb_dim(AttrId::from_index(1), AttrId::from_index(4)),
        d2 in arb_dim(AttrId::from_index(2), AttrId::from_index(5)),
        fact in arb_fact([
            AttrId::from_index(6),
            AttrId::from_index(7),
            AttrId::from_index(8),
        ]),
    ) {
        let (u, dim_keys, _dim_vals, fact_keys) = universe();
        let predicate = Predicate::attr_attr(fact_keys[0], CompareOp::Eq, dim_keys[0])
            .and(Predicate::attr_attr(fact_keys[1], CompareOp::Eq, dim_keys[1]))
            .and(Predicate::attr_attr(fact_keys[2], CompareOp::Eq, dim_keys[2]));
        // Declaration order: dims first. Alternative order: fact first.
        let decl = Expr::literal(d0.clone())
            .product(Expr::literal(d1.clone()))
            .product(Expr::literal(d2.clone()))
            .product(Expr::literal(fact.clone()))
            .select(predicate.clone());
        let fact_first = Expr::literal(fact)
            .product(Expr::literal(d2))
            .product(Expr::literal(d1))
            .product(Expr::literal(d0))
            .select(predicate);
        let (a, _) = compile_band(&decl, &NoSource, &u, Truth::Ni)
            .unwrap()
            .run()
            .unwrap();
        let (b, _) = compile_band(&fact_first, &NoSource, &u, Truth::Ni)
            .unwrap()
            .run()
            .unwrap();
        prop_assert_eq!(a, b);
    }
}

/// The catalog path: with an index on the big table the star query runs
/// index-nested-loop probes; with declaration ordering it pays products —
/// both produce the oracle's rows.
#[test]
fn catalog_star_join_runs_cost_based_and_agrees() {
    let mut db = Database::new();
    for d in 0..3 {
        db.create_table(
            SchemaBuilder::new(format!("DIM{d}"))
                .required_column(format!("K{d}"))
                .column(format!("V{d}"))
                .key(&[&format!("K{d}")]),
        )
        .unwrap();
    }
    db.create_table(
        SchemaBuilder::new("FACT")
            .required_column("F#")
            .column("FK0")
            .column("FK1")
            .column("FK2")
            .key(&["F#"]),
    )
    .unwrap();
    let u = db.universe().clone();
    // Small sizes: the tree-walk oracle pays the full 4-way product, which
    // must stay cheap in a unit test.
    for d in 0..3usize {
        let t = db.table_mut(&format!("DIM{d}")).unwrap();
        for i in 0..6i64 {
            t.insert_named(
                &u,
                &[
                    (&format!("K{d}") as &str, Value::int(i)),
                    (&format!("V{d}") as &str, Value::int(i * 10)),
                ],
            )
            .unwrap();
        }
    }
    let t = db.table_mut("FACT").unwrap();
    for i in 0..8i64 {
        t.insert_named(
            &u,
            &[
                ("F#", Value::int(i)),
                ("FK0", Value::int(i % 6)),
                ("FK1", Value::int((i + 1) % 6)),
                ("FK2", Value::int((i + 2) % 6)),
            ],
        )
        .unwrap();
    }
    let keys: Vec<AttrId> = (0..3)
        .map(|d| u.lookup(&format!("K{d}")).unwrap())
        .collect();
    let fks: Vec<AttrId> = (0..3)
        .map(|d| u.lookup(&format!("FK{d}")).unwrap())
        .collect();
    let plan = Expr::named("DIM0")
        .product(Expr::named("DIM1"))
        .product(Expr::named("DIM2"))
        .product(Expr::named("FACT"))
        .select(
            Predicate::attr_attr(fks[0], CompareOp::Eq, keys[0])
                .and(Predicate::attr_attr(fks[1], CompareOp::Eq, keys[1]))
                .and(Predicate::attr_attr(fks[2], CompareOp::Eq, keys[2])),
        );
    let oracle = plan.eval(&db).unwrap();
    let (cost_based, stats) = execute_expr(&plan, &db, &u).unwrap();
    assert_eq!(cost_based, oracle, "plan:\n{}", stats.render());
    assert!(
        !stats.used_op("Product"),
        "the enumerator must avoid products:\n{}",
        stats.render()
    );
    let (declaration, decl_stats) = execute_expr_with(&plan, &db, &u, declaration()).unwrap();
    assert_eq!(declaration, oracle, "plan:\n{}", decl_stats.render());
    assert!(
        decl_stats.used_op("Product"),
        "declaration order pays the dimension products:\n{}",
        decl_stats.render()
    );
}

/// Index-nested-loop and hash joins agree; the INL plan examines only the
/// probed rows.
#[test]
fn index_nested_loop_join_agrees_with_hash_join() {
    let build = |with_index: bool| {
        let mut db = Database::new();
        db.create_table(
            SchemaBuilder::new("BIG")
                .required_column("K")
                .column("V")
                .key(&["K"]),
        )
        .unwrap();
        let u = db.universe().clone();
        let t = db.table_mut("BIG").unwrap();
        for i in 0..200i64 {
            t.insert_named(&u, &[("K", Value::int(i)), ("V", Value::int(i * 3))])
                .unwrap();
        }
        if with_index {
            let k = u.lookup("K").unwrap();
            t.create_index(vec![k]).unwrap();
        }
        db
    };
    let db = build(true);
    let db_plain = build(false);
    let u = db.universe().clone();
    let k = u.lookup("K").unwrap();
    let mut u2 = u.clone();
    let a = u2.intern("A");
    let outer = XRelation::from_tuples((0..4).map(|i| Tuple::new().with(a, Value::int(i * 50))));
    let join = Expr::ThetaJoin {
        left: Box::new(Expr::literal(outer)),
        left_attr: a,
        op: CompareOp::Eq,
        right_attr: k,
        right: Box::new(Expr::named("BIG")),
    };
    let (inl, inl_stats) = execute_expr(&join, &db, &u2).unwrap();
    let (hash, hash_stats) = execute_expr(&join, &db_plain, &u2).unwrap();
    assert_eq!(inl, hash);
    assert!(
        inl_stats.used_index_nested_loop_join(),
        "plan:\n{}",
        inl_stats.render()
    );
    assert!(
        hash_stats.used_hash_join(),
        "plan:\n{}",
        hash_stats.render()
    );
    assert!(
        inl_stats.rows_examined() < hash_stats.rows_examined(),
        "INL examines {} rows, hash join {}",
        inl_stats.rows_examined(),
        hash_stats.rows_examined()
    );
}
