//! Property tests for the equi-depth histogram's **provable** error story
//! (PR 5 satellite): for arbitrary data and arbitrary range predicates,
//! the histogram-based selectivity estimate stays within
//! [`EquiDepthHistogram::error_bound`] of the exact TRUE-band selectivity
//! — a correctness bound the min/max interpolator demonstrably violates on
//! skewed data — and the MAYBE band (the `ni` fraction) is tracked
//! exactly.

use proptest::prelude::*;

use nullrel::core::algebra::Expr;
use nullrel::core::prelude::*;
use nullrel::stats::estimate::selectivity;
use nullrel::stats::{Estimator, StripHistograms};

fn op_from(code: u8) -> CompareOp {
    match code % 4 {
        0 => CompareOp::Lt,
        1 => CompareOp::Le,
        2 => CompareOp::Gt,
        _ => CompareOp::Ge,
    }
}

/// Exact TRUE-band fraction of `value <op> probe` over the relation's
/// tuples (rows whose X cell is `ni` can never satisfy it with certainty).
fn exact_true_fraction(rel: &XRelation, x: AttrId, op: CompareOp, probe: i64) -> f64 {
    let rows = rel.len();
    if rows == 0 {
        return 0.0;
    }
    let hits = rel
        .tuples()
        .iter()
        .filter(|t| match t.get(x) {
            Some(Value::Int(v)) => match op {
                CompareOp::Lt => *v < probe,
                CompareOp::Le => *v <= probe,
                CompareOp::Gt => *v > probe,
                CompareOp::Ge => *v >= probe,
                _ => unreachable!(),
            },
            _ => false,
        })
        .count();
    hits as f64 / rows as f64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// TRUE band: the histogram estimate of an arbitrary range predicate
    /// over arbitrary (duplicate-heavy, null-bearing) data is within the
    /// histogram's own provable bucket-error bound of the exact
    /// selectivity. MAYBE band: the `ni` fraction — exactly the rows the
    /// MAYBE band of the predicate contains — is exact, not estimated.
    #[test]
    fn range_selectivity_is_within_the_bucket_error_bound(
        cells in proptest::collection::vec(proptest::option::of(-40i64..40), 1..150),
        probe in -50i64..50,
        op_code in 0u8..4,
    ) {
        let x = AttrId::from_index(0);
        let id = AttrId::from_index(1);
        // A unique ID column keeps duplicate X values distinct tuples in
        // the minimal form, so skew (the interesting case) survives.
        let rel = XRelation::from_tuples(cells.iter().enumerate().map(|(i, v)| {
            Tuple::new()
                .with(id, Value::int(i as i64))
                .with_opt(x, v.map(Value::int))
        }));
        let op = op_from(op_code);
        let plan = Expr::literal(rel.clone());
        let est = Estimator::new(&nullrel::core::algebra::NoSource).estimate(&plan);
        let sel = selectivity(&Predicate::attr_const(x, op, probe), &est);
        prop_assert!((0.0..=1.0).contains(&sel), "{sel}");

        let exact = exact_true_fraction(&rel, x, op, probe);
        let column = est.columns.get(&x).unwrap();
        match &column.histogram {
            Some(h) => {
                let bound = h.error_bound() + 1e-9;
                prop_assert!(
                    (sel - exact).abs() <= bound,
                    "op {op:?} probe {probe}: est {sel} vs exact {exact} exceeds bound {bound}"
                );
            }
            // All-ni column: nothing to summarise, and the TRUE band is
            // provably empty.
            None => prop_assert!(exact == 0.0 && sel == 0.0, "{sel} vs {exact}"),
        }
        // MAYBE band: the ni fraction is exact.
        let ni_rows = rel.tuples().iter().filter(|t| t.get(x).is_none()).count();
        let exact_ni = ni_rows as f64 / rel.len().max(1) as f64;
        prop_assert!((column.ni_fraction - exact_ni).abs() < 1e-12);
    }

    /// The histogram estimate is never worse than the bucket-error bound —
    /// on the same skewed generators where the min/max interpolator's
    /// error is provably larger. (The generator plants an outlier so the
    /// uniform assumption over `[min, max]` collapses.)
    #[test]
    fn histograms_beat_min_max_interpolation_on_skew(
        body in proptest::collection::vec(0i64..8, 32..120),
        probe in 1i64..10,
    ) {
        let x = AttrId::from_index(0);
        let id = AttrId::from_index(1);
        // A guaranteed head of 40 zeros, arbitrary body values in [0, 8),
        // and one outlier at 100 000: min/max interpolation claims ~0% of
        // the rows lie below any small probe, while in truth a large
        // fraction (at least the head) does — an error provably past the
        // bucket bound, which the head's own degenerate bucket keeps small.
        let rel = XRelation::from_tuples(
            std::iter::repeat_n(&0i64, 40)
                .chain(body.iter())
                .chain(std::iter::once(&100_000i64))
                .enumerate()
                .map(|(i, v)| {
                    Tuple::new()
                        .with(id, Value::int(i as i64))
                        .with(x, Value::int(*v))
                }),
        );
        let mut map = std::collections::HashMap::new();
        map.insert("Z".to_owned(), rel.clone());
        let plan = Expr::named("Z");
        let with_hist = Estimator::new(&map).estimate(&plan);
        let stripped = StripHistograms(&map);
        let without = Estimator::new(&stripped).estimate(&plan);
        let pred = Predicate::attr_const(x, CompareOp::Le, probe);
        let exact = exact_true_fraction(&rel, x, CompareOp::Le, probe);

        let hist_sel = selectivity(&pred, &with_hist);
        let h = with_hist.columns.get(&x).unwrap().histogram.as_ref().unwrap();
        let bound = h.error_bound() + 1e-9;
        prop_assert!(
            (hist_sel - exact).abs() <= bound,
            "probe {probe}: hist {hist_sel} vs exact {exact} (bound {bound})"
        );
        let interp_sel = selectivity(&pred, &without);
        prop_assert!(
            (interp_sel - exact).abs() > bound,
            "probe {probe}: the interpolator ({interp_sel} vs exact {exact}) should \
             violate the bound ({bound}) on this generator"
        );
    }
}

/// The two estimators differenced on a deterministic Zipf-ish column: the
/// histogram's mean q-error over a battery of range and equality
/// predicates is several times smaller than the min/max interpolator's —
/// the unit-sized preview of the `e15_skewed_estimation` bench assertion.
#[test]
fn zipf_mean_q_error_improves_with_histograms() {
    let mut u = Universe::new();
    let x = u.intern("X");
    let id = u.intern("ID");
    // Zipf-ish: value r appears ~120/r times, plus one outlier at 50 000.
    let mut values = Vec::new();
    for r in 1i64..=30 {
        for _ in 0..(120 / r).max(1) {
            values.push(r);
        }
    }
    values.push(50_000);
    let rel = XRelation::from_tuples(values.iter().enumerate().map(|(i, v)| {
        Tuple::new()
            .with(id, Value::int(i as i64))
            .with(x, Value::int(*v))
    }));
    let rows = rel.len() as f64;
    let mut map = std::collections::HashMap::new();
    map.insert("Z".to_owned(), rel.clone());
    let plan = Expr::named("Z");
    let with_hist = Estimator::new(&map).estimate(&plan);
    let stripped = StripHistograms(&map);
    let without = Estimator::new(&stripped).estimate(&plan);

    let preds: Vec<Predicate> = (1..=8)
        .flat_map(|c| {
            [
                Predicate::attr_const(x, CompareOp::Le, c),
                Predicate::attr_const(x, CompareOp::Gt, c),
                Predicate::attr_const(x, CompareOp::Eq, c),
            ]
        })
        .collect();
    let q = |sel: f64, exact: f64| -> f64 {
        let est = (sel * rows).max(1.0);
        let act = (exact * rows).max(1.0);
        est.max(act) / est.min(act)
    };
    let mean = |est: &nullrel::stats::Estimate| -> f64 {
        preds
            .iter()
            .map(|p| {
                let exact = p
                    .comparisons()
                    .first()
                    .map(|_| {
                        rel.tuples()
                            .iter()
                            .filter(|t| p.eval(t).map(|t| t.is_true()).unwrap_or(false))
                            .count() as f64
                            / rows
                    })
                    .unwrap();
                q(selectivity(p, est), exact)
            })
            .sum::<f64>()
            / preds.len() as f64
    };
    let hist_q = mean(&with_hist);
    let interp_q = mean(&without);
    assert!(
        interp_q >= 3.0 * hist_q,
        "histograms must cut mean q-error ≥ 3×: hist {hist_q:.2} vs interp {interp_q:.2}"
    );
}
