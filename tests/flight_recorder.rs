//! Differential check of the flight recorder's workload log: run a
//! scripted mix of queries through the public entry points, tally what
//! happened naively on the side, and assert the recorder's aggregates
//! (execution counts, cumulative rows, latency-bucket populations, ring
//! ordering) match the replay exactly.
//!
//! One `#[test]` only: the recorder is process-wide, and a second test
//! running queries in parallel would fold records into the same log.

use std::collections::HashMap;

use nullrel::core::prelude::*;
use nullrel::obs::recorder;
use nullrel::storage::{Database, SchemaBuilder};

fn emp_db() -> Database {
    let mut db = Database::new();
    db.create_table(
        SchemaBuilder::new("EMP")
            .required_column("E#")
            .column("NAME")
            .column("MGR#")
            .key(&["E#"]),
    )
    .unwrap();
    let u = db.universe().clone();
    let t = db.table_mut("EMP").unwrap();
    for i in 0..24 {
        let mut cells = vec![
            ("E#", Value::int(i)),
            ("NAME", Value::str(format!("EMP{i}"))),
        ];
        if i % 7 != 0 {
            cells.push(("MGR#", Value::int(i / 3)));
        }
        t.insert_named(&u, &cells).unwrap();
    }
    db
}

#[test]
fn workload_log_matches_a_naive_replay() {
    let db = emp_db();
    recorder::set_recording(true);
    recorder::reset();

    // The scripted workload: (query text, band, times to run). Texts are
    // distinct shapes; the first runs with varied whitespace so the
    // normalizing fingerprint has to merge the copies.
    let script: &[(&str, bool, usize)] = &[
        (
            "range of e is EMP retrieve (e.NAME) where e.MGR# = 3",
            false,
            5,
        ),
        (
            "range of e is EMP retrieve (e.E#) where e.E# < 10",
            false,
            3,
        ),
        (
            "range of e is EMP range of m is EMP retrieve (e.NAME) \
             where e.MGR# = m.E# and m.E# > 2",
            false,
            2,
        ),
        (
            "range of e is EMP retrieve (e.NAME) where e.MGR# = 3",
            true,
            4,
        ),
    ];

    // The naive side: tally per *label* (the recorder fingerprints the
    // begin_query label, which execute_maybe prefixes with "MAYBE").
    let mut expected: HashMap<u64, (u64, u64)> = HashMap::new(); // fp -> (count, rows)
    let mut run_order: Vec<u64> = Vec::new();
    for (text, maybe, times) in script {
        for i in 0..*times {
            // Vary the whitespace on every other run: same fingerprint.
            let variant = if i % 2 == 0 {
                text.to_string()
            } else {
                text.replace(' ', "  ")
            };
            let (rows, label) = if *maybe {
                let out = nullrel::query::execute_maybe(&db, &variant).unwrap();
                (out.rows.len() as u64, format!("MAYBE {variant}"))
            } else {
                let out = nullrel::query::execute(&db, &variant).unwrap();
                (out.rows.len() as u64, variant)
            };
            let (fp, _) = recorder::fingerprint(&label);
            let entry = expected.entry(fp).or_insert((0, 0));
            entry.0 += 1;
            entry.1 += rows;
            run_order.push(fp);
        }
    }

    // Counts, cumulative rows, and bucket populations per shape.
    assert_eq!(recorder::stats().fingerprints, expected.len());
    for (fp, (count, rows)) in &expected {
        let entry = recorder::workload_entry(*fp)
            .unwrap_or_else(|| panic!("fingerprint {fp:x} missing from the workload log"));
        assert_eq!(entry.count, *count, "execution count for {}", entry.text);
        assert_eq!(entry.rows_out, *rows, "cumulative rows for {}", entry.text);
        assert_eq!(
            entry.buckets.iter().sum::<u64>(),
            *count,
            "every execution lands in exactly one latency bucket"
        );
        assert!(entry.max_us <= entry.total_us);
        assert!(entry.p50_us() <= entry.p95_us());
        assert!(entry.p95_us() <= entry.p99_us());
        assert!(!entry.last_plan.is_empty(), "plan recorded");
    }

    // The flight ring replays the exact execution order (newest first).
    let ring = recorder::recent(run_order.len() + 10);
    assert_eq!(ring.len(), run_order.len(), "one record per execution");
    for (record, fp) in ring.iter().zip(run_order.iter().rev()) {
        assert_eq!(record.fingerprint, *fp);
    }

    // TOP ranks by cumulative time and is consistent with the entries.
    let top = recorder::workload_top(expected.len());
    assert_eq!(top.len(), expected.len());
    assert!(top.windows(2).all(|w| w[0].total_us >= w[1].total_us));
    let ring_total: u64 = ring.iter().map(|r| r.total_us).sum();
    let top_total: u64 = top.iter().map(|e| e.total_us).sum();
    assert_eq!(ring_total, top_total, "ring and workload saw the same time");

    // MAYBE executions carry the band annotation.
    let maybe_records: Vec<_> = ring.iter().filter(|r| r.band == "MAYBE").collect();
    assert_eq!(maybe_records.len(), 4);
    assert!(maybe_records.iter().all(|r| r.text.starts_with("MAYBE ")));

    recorder::reset();
}
