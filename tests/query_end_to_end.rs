//! Experiments E4 and E5: the paper's QUEL queries (Figures 1 and 2) run
//! end-to-end through parser → analyzer → planner → evaluator, under both
//! the `ni` lower-bound discipline and the "unknown" baseline.

use nullrel::core::prelude::*;
use nullrel::query::{execute, execute_unknown, parse, FIGURE_1_QUERY, FIGURE_2_QUERY};
use nullrel::storage::{Database, SchemaBuilder};

fn emp_db() -> Database {
    let mut db = Database::new();
    db.create_table(
        SchemaBuilder::new("EMP")
            .required_column("E#")
            .column("NAME")
            .column("SEX")
            .column("MGR#")
            .column("TEL#")
            .key(&["E#"]),
    )
    .unwrap();
    let universe = db.universe().clone();
    let table = db.table_mut("EMP").unwrap();
    for (e, n, s, m) in [
        (1120, "SMITH", "M", Some(2235)),
        (4335, "BROWN", "F", Some(2235)),
        (8799, "GREEN", "M", Some(1255)),
        (2235, "JONES", "M", Some(1255)),
        (1255, "ADAMS", "F", Some(2235)),
    ] {
        let mut cells = vec![
            ("E#", Value::int(e)),
            ("NAME", Value::str(n)),
            ("SEX", Value::str(s)),
        ];
        if let Some(m) = m {
            cells.push(("MGR#", Value::int(m)));
        }
        table.insert_named(&universe, &cells).unwrap();
    }
    db
}

/// E4: Figure 1 on a database where every TEL# is null — the ni lower bound
/// is empty, while the "unknown" interpretation puts BROWN in the maybe band
/// (and in the sure band only for the gap-free variant of the clause).
#[test]
fn figure1_ni_versus_unknown() {
    let db = emp_db();
    let ni = execute(&db, FIGURE_1_QUERY).unwrap();
    assert!(ni.is_empty());

    let unknown = execute_unknown(&db, FIGURE_1_QUERY, &[], 10_000).unwrap();
    assert!(unknown.sure.is_empty());
    assert!(unknown.maybe_contains(&[Some(Value::str("BROWN")), Some(Value::int(4335))]));
    assert!(unknown.stats.tautology_checks >= 5);
}

/// E4 continued: once the information arrives, the ni lower bound contains
/// exactly the qualifying employee — the "dynamic behaviour" the paper's
/// Section 1 argues a database must respect.
#[test]
fn figure1_after_update() {
    let mut db = emp_db();
    let e_no = db.universe().lookup("E#").unwrap();
    let tel = db.universe().lookup("TEL#").unwrap();
    db.table_mut("EMP")
        .unwrap()
        .update_where(
            &Predicate::attr_const(e_no, CompareOp::Eq, 4335),
            &[(tel, Some(Value::int(2_639_452)))],
        )
        .unwrap();
    let out = execute(&db, FIGURE_1_QUERY).unwrap();
    assert_eq!(out.len(), 1);
    assert!(out.contains_row(&[Some(Value::str("BROWN")), Some(Value::int(4335))]));
}

/// E5: Figure 2 under the ni semantics on total data, and the role of the
/// schema constraints for the "unknown" baseline when MGR# values are null.
#[test]
fn figure2_constraints_and_ni() {
    let db = emp_db();
    let ni = execute(&db, FIGURE_2_QUERY).unwrap();
    let names = ni.column_values("e.NAME");
    assert!(names.contains(&Value::str("SMITH")));
    assert!(names.contains(&Value::str("BROWN")));
    assert!(
        !names.contains(&Value::str("GREEN")),
        "GREEN's manager is female"
    );
    assert!(
        !names.contains(&Value::str("ADAMS")),
        "ADAMS manages her manager"
    );
    // JONES has an unknown manager, but that does not matter for e = JONES
    // (the join is on e.MGR#); JONES can still appear as the m variable.
    assert!(!names.contains(&Value::str("JONES")));

    // Unknown baseline: make JONES' manager unknown. Without constraints
    // SMITH is then only a maybe answer (e.E# != m.MGR# cannot be
    // certified); with the schema constraints assumed it becomes sure.
    let mut db_unknown = emp_db();
    let e_no = db_unknown.universe().lookup("E#").unwrap();
    let mgr = db_unknown.universe().lookup("MGR#").unwrap();
    db_unknown
        .table_mut("EMP")
        .unwrap()
        .update_where(
            &Predicate::attr_const(e_no, CompareOp::Eq, 2235),
            &[(mgr, None)],
        )
        .unwrap();
    let constraint = |text: &str| {
        parse(&format!(
            "range of e is EMP range of m is EMP retrieve (e.NAME) where {text}"
        ))
        .unwrap()
        .where_clause
        .unwrap()
    };
    let without = execute_unknown(&db_unknown, FIGURE_2_QUERY, &[], 100_000).unwrap();
    assert!(without.maybe_contains(&[Some(Value::str("SMITH"))]));
    assert!(!without.sure_contains(&[Some(Value::str("SMITH"))]));
    let with = execute_unknown(
        &db_unknown,
        FIGURE_2_QUERY,
        &[constraint("e.MGR# != e.E#"), constraint("e.E# != m.MGR#")],
        100_000,
    )
    .unwrap();
    assert!(with.sure_contains(&[Some(Value::str("SMITH"))]));
    assert!(with.sure_contains(&[Some(Value::str("BROWN"))]));
    // The ni evaluation on the same database simply drops the uncertain
    // tuples — no constraint reasoning needed.
    let ni_unknown_db = execute(&db_unknown, FIGURE_2_QUERY).unwrap();
    assert!(!ni_unknown_db
        .column_values("e.NAME")
        .contains(&Value::str("SMITH")));
}

/// On fully defined data the two disciplines give the same answers — the
/// Section 7 consistency requirement seen from the query layer.
#[test]
fn total_data_agreement() {
    let db = emp_db();
    let q = "range of e is EMP retrieve (e.NAME, e.SEX) where e.SEX = \"M\" and e.E# > 2000";
    let ni = execute(&db, q).unwrap();
    let unknown = execute_unknown(&db, q, &[], 10_000).unwrap();
    assert_eq!(ni.len(), unknown.sure.len());
    assert!(unknown.maybe.is_empty());
    for name in ["GREEN", "JONES"] {
        assert!(ni.contains_row(&[Some(Value::str(name)), Some(Value::str("M"))]));
        assert!(unknown.sure_contains(&[Some(Value::str(name)), Some(Value::str("M"))]));
    }
}

/// Error paths across the stack surface as structured errors, not panics.
#[test]
fn error_paths() {
    let db = emp_db();
    assert!(execute(&db, "range of e is MISSING retrieve (e.X)").is_err());
    assert!(execute(&db, "range of e is EMP retrieve (e.NOPE)").is_err());
    assert!(execute(&db, "garbage !!").is_err());
    assert!(
        execute_unknown(&db, FIGURE_2_QUERY, &[], 3).is_err(),
        "budget enforced"
    );
}
