//! Snapshot-isolation property tests for the versioned storage layer
//! (PR 8): readers pinned to an epoch must see **exactly** the state a
//! serial replay of the commit prefix produces — byte-identical results,
//! in the TRUE and MAYBE bands, at engine threads ∈ {1, 4} — while a
//! writer thread races commits underneath them. Pinned snapshots must
//! also be *stable*: re-reading the same pin mid-churn returns the same
//! bytes.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use proptest::prelude::*;

use nullrel::core::prelude::*;
use nullrel::exec::{OptimizeOptions, Parallelism};
use nullrel::query::{execute_prepared, prepare, Prepared};
use nullrel::storage::{Database, SchemaBuilder, VersionedDatabase};

/// A query whose TRUE band (V = 1) and MAYBE band (ni V) both move as
/// the write script inserts and deletes rows.
const QUERY: &str = "range of t is T retrieve (t.E#, t.V) where t.V = 1";

/// One committed write: an insert (with a possibly-ni V) or a delete of
/// every row with the given key.
#[derive(Debug, Clone, Copy)]
enum Op {
    Insert { key: i64, val: Option<i64> },
    Delete { key: i64 },
}

fn arb_ops(max: usize) -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec((0u8..4, 0i64..6, proptest::option::of(0i64..3)), 0..max).prop_map(
        |raw| {
            raw.into_iter()
                .map(|(kind, key, val)| {
                    // Deletes a quarter of the time: the table keeps growing,
                    // so most epochs differ from their neighbours.
                    if kind == 0 {
                        Op::Delete { key }
                    } else {
                        Op::Insert { key, val }
                    }
                })
                .collect()
        },
    )
}

fn initial_db(rows: &[(i64, Option<i64>)]) -> Database {
    let mut db = Database::new();
    db.create_table(SchemaBuilder::new("T").required_column("E#").column("V"))
        .unwrap();
    let u = db.universe().clone();
    let t = db.table_mut("T").unwrap();
    for (key, val) in rows {
        let mut cells = vec![("E#", Value::int(*key))];
        if let Some(v) = val {
            cells.push(("V", Value::int(*v)));
        }
        t.insert_named(&u, &cells).unwrap();
    }
    db
}

fn apply(db: &mut Database, op: &Op) -> Result<(), nullrel::storage::StorageError> {
    let u = db.universe().clone();
    match op {
        Op::Insert { key, val } => {
            let mut cells = vec![("E#", Value::int(*key))];
            if let Some(v) = val {
                cells.push(("V", Value::int(*v)));
            }
            db.table_mut("T")?.insert_named(&u, &cells)
        }
        Op::Delete { key } => {
            let e = u.lookup("E#").expect("E# interned by the schema");
            db.table_mut("T")?
                .delete_where(&Predicate::attr_const(e, CompareOp::Eq, *key))
                .map(|_| ())
        }
    }
}

fn options(threads: usize) -> OptimizeOptions {
    OptimizeOptions {
        parallelism: if threads <= 1 {
            Parallelism::Serial
        } else {
            Parallelism::Threads(threads)
        },
        parallel_row_threshold: 0,
        adaptive: None,
        ..OptimizeOptions::default()
    }
}

/// Runs the prepared query on one database state and returns the result
/// as a minimal x-relation (the representation the equality is defined
/// over).
fn run(db: &Database, prepared: &Prepared, band: Truth, threads: usize) -> XRelation {
    let out = execute_prepared(db, prepared, band, options(threads)).expect("query runs");
    XRelation::from_tuples(out.rows)
}

/// The serial oracle: the expected result of every epoch, computed by
/// replaying the commit prefix on a fresh database — `expected[e]` is the
/// state after `ops[..e]`, per band.
fn replay_expected(
    initial: &[(i64, Option<i64>)],
    ops: &[Op],
    prepared: &Prepared,
) -> Vec<[XRelation; 2]> {
    let mut db = initial_db(initial);
    let mut expected = Vec::with_capacity(ops.len() + 1);
    expected.push([
        run(&db, prepared, Truth::True, 1),
        run(&db, prepared, Truth::Ni, 1),
    ]);
    for op in ops {
        apply(&mut db, op).unwrap();
        expected.push([
            run(&db, prepared, Truth::True, 1),
            run(&db, prepared, Truth::Ni, 1),
        ]);
    }
    expected
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The keystone: while a writer commits a random script, concurrently
    /// pinned readers always observe exactly the serial replay of the
    /// epoch they pinned — both truth bands, both engine degrees — and a
    /// pin re-read under churn is byte-stable.
    #[test]
    fn pinned_readers_equal_serial_replay_under_concurrent_commits(
        initial in proptest::collection::vec((0i64..6, proptest::option::of(0i64..3)), 0..8),
        ops in arb_ops(12),
    ) {
        let prepared = Arc::new(prepare(&initial_db(&initial), QUERY).unwrap());
        let expected = Arc::new(replay_expected(&initial, &ops, &prepared));
        let vdb = Arc::new(VersionedDatabase::new(initial_db(&initial)));

        let done = Arc::new(AtomicBool::new(false));
        let writer = {
            let vdb = Arc::clone(&vdb);
            let done = Arc::clone(&done);
            let ops = ops.clone();
            std::thread::spawn(move || {
                for op in &ops {
                    vdb.commit(|db| apply(db, op)).unwrap();
                }
                done.store(true, Ordering::Release);
            })
        };

        let readers: Vec<_> = (0..2)
            .map(|_| {
                let vdb = Arc::clone(&vdb);
                let done = Arc::clone(&done);
                let expected = Arc::clone(&expected);
                let prepared = Arc::clone(&prepared);
                std::thread::spawn(move || {
                    let mut checked = 0usize;
                    loop {
                        let finished = done.load(Ordering::Acquire);
                        let snapshot = vdb.pin();
                        let epoch = snapshot.epoch() as usize;
                        for (b, band) in [Truth::True, Truth::Ni].into_iter().enumerate() {
                            for threads in [1usize, 4] {
                                let got = run(snapshot.db(), &prepared, band, threads);
                                assert_eq!(
                                    got, expected[epoch][b],
                                    "epoch {epoch} band {band:?} threads {threads}"
                                );
                            }
                        }
                        // Stability: the same pin re-reads identically even
                        // though newer epochs may have been published since.
                        let again = run(snapshot.db(), &prepared, Truth::True, 1);
                        assert_eq!(again, expected[epoch][0], "pin must be frozen");
                        checked += 1;
                        if finished {
                            return checked;
                        }
                    }
                })
            })
            .collect();

        writer.join().unwrap();
        for reader in readers {
            prop_assert!(reader.join().unwrap() > 0, "reader made progress");
        }
        prop_assert_eq!(vdb.epoch(), ops.len() as u64);
        // The final published state equals the full serial replay.
        let last = vdb.pin();
        prop_assert_eq!(
            run(last.db(), &prepared, Truth::True, 1),
            expected[ops.len()][0].clone()
        );
        prop_assert_eq!(
            run(last.db(), &prepared, Truth::Ni, 1),
            expected[ops.len()][1].clone()
        );
    }
}

/// Deterministic companion: two racing writers insert into disjoint key
/// ranges (commuting commits), so every reader-visible epoch count is
/// exact and the final state is order-independent. Readers pin across the
/// churn and assert monotone epochs plus torn-read-free row counts.
#[test]
fn commuting_writers_and_pinned_readers_never_tear() {
    let vdb = Arc::new(VersionedDatabase::new(initial_db(&[])));
    let prepared = Arc::new(prepare(vdb.pin().db(), "range of t is T retrieve (t.E#)").unwrap());
    const PER_WRITER: i64 = 25;

    let writers: Vec<_> = (0..2i64)
        .map(|w| {
            let vdb = Arc::clone(&vdb);
            std::thread::spawn(move || {
                for i in 0..PER_WRITER {
                    let key = w * 1000 + i;
                    vdb.commit(|db| apply(db, &Op::Insert { key, val: Some(1) }))
                        .unwrap();
                }
            })
        })
        .collect();

    let stop = Arc::new(AtomicBool::new(false));
    let reader = {
        let vdb = Arc::clone(&vdb);
        let stop = Arc::clone(&stop);
        let prepared = Arc::clone(&prepared);
        std::thread::spawn(move || {
            let mut last_epoch = 0u64;
            while !stop.load(Ordering::Acquire) {
                let snapshot = vdb.pin();
                assert!(snapshot.epoch() >= last_epoch, "epochs are monotone");
                last_epoch = snapshot.epoch();
                // Every commit inserts exactly one row: a consistent
                // snapshot has exactly `epoch` rows — anything else is a
                // torn read.
                let rows = run(snapshot.db(), &prepared, Truth::True, 1).len() as u64;
                assert_eq!(rows, snapshot.epoch(), "rows must equal commits");
            }
        })
    };

    for writer in writers {
        writer.join().unwrap();
    }
    stop.store(true, Ordering::Release);
    reader.join().unwrap();
    assert_eq!(vdb.epoch(), 2 * PER_WRITER as u64);
    assert_eq!(
        run(vdb.pin().db(), &prepared, Truth::True, 1).len(),
        2 * PER_WRITER as usize
    );
}
